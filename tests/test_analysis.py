"""Tests for the analysis helpers (CDFs, statistics, reporting)."""

import numpy as np
import pytest

from repro.analysis import (
    banner,
    cdf_points,
    confidence_interval,
    empirical_cdf,
    format_comparison,
    format_series,
    format_table,
    geometric_mean,
    improvement_percent,
    normalized,
    pearson,
    relative_errors,
    rmse,
    spearman,
    summary,
)
from repro.core.errors import ClouDiAError


class TestCDF:
    def test_basic_properties(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(10.0) == 1.0
        assert cdf.quantile(0.5) == pytest.approx(2.5)

    def test_spread(self):
        cdf = empirical_cdf(np.linspace(1.0, 2.0, 100))
        assert cdf.spread(0.1, 0.9) == pytest.approx(2.0 / 1.1, rel=0.05)

    def test_quantile_bounds(self):
        cdf = empirical_cdf([1.0, 2.0])
        with pytest.raises(ClouDiAError):
            cdf.quantile(1.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ClouDiAError):
            empirical_cdf([])

    def test_cdf_points_downsampling(self):
        xs, qs = cdf_points(np.random.default_rng(0).uniform(0, 1, 500), num_points=11)
        assert len(xs) == len(qs) == 11
        assert qs[0] == 0.0 and qs[-1] == 1.0
        assert all(xs[i] <= xs[i + 1] for i in range(len(xs) - 1))


class TestStats:
    def test_rmse(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ClouDiAError):
            rmse([1.0], [1.0, 2.0])

    def test_normalized(self):
        assert np.linalg.norm(normalized([3.0, 4.0])) == pytest.approx(1.0)
        assert list(normalized([0.0, 0.0])) == [0.0, 0.0]

    def test_relative_errors(self):
        errors = relative_errors([1.1, 2.0], [1.0, 2.0])
        assert errors[0] == pytest.approx(0.1)
        assert errors[1] == 0.0

    def test_correlations(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0, 4.0, 6.0, 8.0]
        assert pearson(x, y) == pytest.approx(1.0)
        assert spearman(x, y) == pytest.approx(1.0)
        assert pearson(x, [-v for v in y]) == pytest.approx(-1.0)

    def test_summary_keys(self):
        stats = summary([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert set(stats) >= {"p50", "p90", "p99", "std"}

    def test_improvement_percent(self):
        assert improvement_percent(2.0, 1.0) == pytest.approx(50.0)
        assert improvement_percent(0.0, 1.0) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ClouDiAError):
            geometric_mean([1.0, 0.0])

    def test_confidence_interval_contains_mean(self):
        data = np.random.default_rng(0).normal(5.0, 1.0, size=200)
        low, high = confidence_interval(data)
        assert low < float(np.mean(data)) < high
        with pytest.raises(ClouDiAError):
            confidence_interval([1.0])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.0), ("long-name", 2.5)],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("curve", [1, 2], [0.1, 0.2], x_label="t", y_label="v")
        assert "curve" in text
        assert "0.1" in text and "0.2" in text

    def test_format_comparison_reduction(self):
        text = format_comparison("cmp", [("case-a", 2.0, 1.0)])
        assert "50.0%" in text

    def test_banner(self):
        text = banner("section", width=40)
        assert "section" in text
        assert len(text) >= 40 - 1
