"""Tests for the IP-distance and hop-count network distance proxies."""

import numpy as np
import pytest

from repro.netmeasure import (
    group_overlap_fraction,
    hop_count_matrix,
    ip_distance_matrix,
    links_grouped_by_proxy,
    proxy_quality,
)


@pytest.fixture
def proxies(small_cloud):
    ids = [inst.instance_id for inst in small_cloud.allocate(16)]
    latency = small_cloud.true_cost_matrix(ids)
    return small_cloud, ids, latency


class TestProxyMatrices:
    def test_ip_distance_matrix_values(self, proxies):
        cloud, ids, _ = proxies
        matrix = ip_distance_matrix(cloud, ids)
        values = matrix.link_costs()
        assert values.min() >= 1
        assert values.max() <= 4

    def test_hop_count_matrix_values(self, proxies):
        cloud, ids, _ = proxies
        matrix = hop_count_matrix(cloud, ids)
        values = set(matrix.link_costs())
        assert values <= {0.0, 1.0, 3.0, 5.0}

    def test_hop_count_matrix_symmetric(self, proxies):
        cloud, ids, _ = proxies
        matrix = hop_count_matrix(cloud, ids)
        array = matrix.as_array()
        assert np.allclose(array, array.T)


class TestProxyQuality:
    def test_ip_distance_is_a_poor_predictor(self, proxies):
        """Appendix 2: IP distance does not effectively predict latency."""
        cloud, ids, latency = proxies
        quality = proxy_quality(ip_distance_matrix(cloud, ids), latency)
        assert abs(quality.spearman) < 0.6
        assert quality.ordering_violations > 0.1

    def test_hop_count_correlates_weakly(self, proxies):
        """Hop count carries some signal but leaves many inversions."""
        cloud, ids, latency = proxies
        quality = proxy_quality(hop_count_matrix(cloud, ids), latency)
        assert quality.ordering_violations > 0.05

    def test_latency_is_perfect_predictor_of_itself(self, proxies):
        _, _, latency = proxies
        quality = proxy_quality(latency, latency)
        assert quality.spearman == pytest.approx(1.0)
        assert quality.ordering_violations == 0.0


class TestGrouping:
    def test_groups_partition_all_links(self, proxies):
        cloud, ids, latency = proxies
        groups = links_grouped_by_proxy(hop_count_matrix(cloud, ids), latency)
        total = sum(len(latencies) for latencies in groups.values())
        assert total == len(ids) * (len(ids) - 1)
        for latencies in groups.values():
            assert latencies == sorted(latencies)

    def test_adjacent_groups_overlap(self, proxies):
        """The latency ranges of different hop-count groups overlap (Fig. 17)."""
        cloud, ids, latency = proxies
        groups = links_grouped_by_proxy(hop_count_matrix(cloud, ids), latency)
        if len(groups) >= 2:
            assert group_overlap_fraction(groups) > 0.0

    def test_overlap_fraction_zero_for_separated_groups(self):
        groups = {1.0: [0.1, 0.2], 2.0: [0.5, 0.9]}
        assert group_overlap_fraction(groups) == 0.0

    def test_overlap_fraction_single_group(self):
        assert group_overlap_fraction({1.0: [0.3, 0.4]}) == 0.0
