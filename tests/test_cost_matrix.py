"""Tests for cost matrices and latency metrics."""

import numpy as np
import pytest

from repro.core import CostMatrix, InvalidCostMatrixError, LatencyMetric
from repro.testing import deterministic_cost_matrix


class TestLatencyMetric:
    def test_mean(self):
        assert LatencyMetric.MEAN.summarise([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_plus_std(self):
        value = LatencyMetric.MEAN_PLUS_STD.summarise([1.0, 3.0])
        assert value == pytest.approx(2.0 + 1.0)

    def test_p99(self):
        samples = list(range(1, 101))
        assert LatencyMetric.P99.summarise(samples) == pytest.approx(99.01)

    def test_empty_samples_rejected(self):
        with pytest.raises(InvalidCostMatrixError):
            LatencyMetric.MEAN.summarise([])

    def test_metric_ordering_on_skewed_samples(self):
        # A link with spikes has p99 and mean+std well above the mean.
        samples = [0.5] * 90 + [10.0] * 10
        mean = LatencyMetric.MEAN.summarise(samples)
        mean_std = LatencyMetric.MEAN_PLUS_STD.summarise(samples)
        p99 = LatencyMetric.P99.summarise(samples)
        assert mean < mean_std < p99


class TestConstruction:
    def test_diagonal_forced_to_zero(self):
        matrix = np.ones((3, 3))
        costs = CostMatrix([0, 1, 2], matrix)
        assert costs.cost(1, 1) == 0.0
        assert costs.cost(0, 1) == 1.0

    def test_rejects_non_square(self):
        with pytest.raises(InvalidCostMatrixError):
            CostMatrix([0, 1], np.ones((2, 3)))

    def test_rejects_size_mismatch(self):
        with pytest.raises(InvalidCostMatrixError):
            CostMatrix([0, 1, 2], np.ones((2, 2)))

    def test_rejects_negative_costs(self):
        matrix = np.ones((2, 2))
        matrix[0, 1] = -0.5
        with pytest.raises(InvalidCostMatrixError):
            CostMatrix([0, 1], matrix)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(InvalidCostMatrixError):
            CostMatrix([0, 0], np.ones((2, 2)))

    def test_from_function(self):
        costs = CostMatrix.from_function([10, 20], lambda a, b: a + b)
        assert costs.cost(10, 20) == 30
        assert costs.cost(20, 10) == 30
        assert costs.cost(10, 10) == 0.0

    def test_from_samples_with_metric(self):
        samples = {(0, 1): [1.0, 3.0], (1, 0): [2.0, 2.0]}
        costs = CostMatrix.from_samples(samples, metric=LatencyMetric.MEAN)
        assert costs.cost(0, 1) == pytest.approx(2.0)
        assert costs.cost(1, 0) == pytest.approx(2.0)

    def test_from_samples_symmetric_fallback(self):
        samples = {(0, 1): [1.0]}
        costs = CostMatrix.from_samples(samples, instance_ids=[0, 1])
        assert costs.cost(1, 0) == pytest.approx(1.0)

    def test_from_samples_missing_link_raises(self):
        samples = {(0, 1): [1.0]}
        with pytest.raises(InvalidCostMatrixError):
            CostMatrix.from_samples(samples, instance_ids=[0, 1, 2])

    def test_from_samples_fill_missing(self):
        samples = {(0, 1): [1.0]}
        costs = CostMatrix.from_samples(samples, instance_ids=[0, 1, 2],
                                        fill_missing=9.0)
        assert costs.cost(0, 2) == 9.0

    def test_symmetric_from_upper(self):
        costs = CostMatrix.symmetric_from_upper([0, 1, 2], {(0, 1): 1.0, (0, 2): 2.0,
                                                            (1, 2): 3.0})
        assert costs.cost(1, 0) == 1.0
        assert costs.cost(2, 1) == 3.0


class TestQueries:
    def test_link_costs_excludes_diagonal(self):
        costs = deterministic_cost_matrix(4, seed=1)
        values = costs.link_costs()
        assert len(values) == 12
        assert (values > 0).all()

    def test_min_max_mean(self):
        costs = deterministic_cost_matrix(5, seed=2)
        values = costs.link_costs()
        assert costs.min_cost() == pytest.approx(values.min())
        assert costs.max_cost() == pytest.approx(values.max())
        assert costs.mean_cost() == pytest.approx(values.mean())

    def test_links_sorted_by_cost(self):
        costs = deterministic_cost_matrix(4, seed=3)
        ordered = costs.links_sorted_by_cost()
        assert len(ordered) == 12
        assert all(ordered[k][1] <= ordered[k + 1][1] for k in range(len(ordered) - 1))

    def test_unknown_instance_raises(self):
        costs = deterministic_cost_matrix(3)
        with pytest.raises(InvalidCostMatrixError):
            costs.cost(0, 99)

    def test_distinct_costs_with_rounding(self):
        matrix = np.array([[0.0, 0.101, 0.102], [0.101, 0.0, 0.2], [0.102, 0.2, 0.0]])
        costs = CostMatrix([0, 1, 2], matrix)
        assert len(costs.distinct_costs(round_to=0.01)) == 2
        assert len(costs.distinct_costs()) == 3


class TestTransformations:
    def test_submatrix_preserves_costs(self):
        costs = deterministic_cost_matrix(6, seed=4)
        sub = costs.submatrix([1, 3, 5])
        assert sub.num_instances == 3
        assert sub.cost(1, 3) == pytest.approx(costs.cost(1, 3))

    def test_normalized_has_unit_norm(self):
        costs = deterministic_cost_matrix(5, seed=5)
        normalized = costs.normalized()
        assert np.linalg.norm(normalized.link_costs()) == pytest.approx(1.0)

    def test_clustered_reduces_distinct_values(self):
        costs = deterministic_cost_matrix(8, seed=6)
        clustered = costs.clustered(k=4, round_to=None)
        assert len(clustered.distinct_costs()) <= 4
        # Clustering preserves the overall scale.
        assert clustered.mean_cost() == pytest.approx(costs.mean_cost(), rel=0.05)

    def test_clustered_none_is_identity(self):
        costs = deterministic_cost_matrix(4, seed=7)
        same = costs.clustered(None, round_to=None)
        assert np.allclose(same.as_array(), costs.as_array())

    def test_symmetrized_uses_max(self):
        matrix = np.array([[0.0, 1.0], [3.0, 0.0]])
        costs = CostMatrix([0, 1], matrix).symmetrized()
        assert costs.cost(0, 1) == 3.0
        assert costs.cost(1, 0) == 3.0

    def test_relabeled(self):
        costs = deterministic_cost_matrix(3, seed=8)
        relabeled = costs.relabeled({0: 100, 1: 101, 2: 102})
        assert relabeled.cost(100, 101) == pytest.approx(costs.cost(0, 1))
