"""Property-style coverage for the parallel / incremental evaluation paths.

Three contracts are pinned here:

* :class:`~repro.core.evaluation.ParallelEvaluator` returns bit-identical
  costs to the serial ``evaluate_batch`` / ``evaluate_plans`` for every
  worker count, objective, and constrained instance — parallelism changes
  wall-clock only, never results;
* the incremental longest-path delta inside
  :class:`~repro.core.evaluation.DeltaEvaluator` stays exactly consistent
  with a from-scratch priming across long mixed swap/relocate walks, and is
  invalidated by ``cost_epoch`` like every other cost-derived cache;
* the ``workers`` knob on :class:`~repro.solvers.base.SearchBudget` (and the
  ``eval_workers`` session default) round-trips through JSON, validates
  eagerly, and leaves seeded solver results unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AdvisorSession, SolveRequest
from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    Objective,
    ParallelEvaluator,
    PlacementConstraints,
    SolverError,
    available_workers,
    compile_problem,
    resolve_workers,
)
from repro.solvers import (
    RandomSearch,
    SearchBudget,
    SimulatedAnnealing,
    SwapLocalSearch,
    default_limits,
    scoring_engine,
)


def _random_instance(seed, n_lo=4, n_hi=10, extra=3, dag=False):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_lo, n_hi + 1))
    m = n + int(rng.integers(1, extra + 1))
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(m)), matrix)
    if dag:
        graph = CommunicationGraph.random_dag(n, 0.4, seed=seed)
    else:
        graph = CommunicationGraph.random_graph(n, 0.4, seed=seed)
    return graph, costs


# --------------------------------------------------------------------------- #
# ParallelEvaluator: bit-identical chunked evaluation
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 5000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]),
       workers=st.integers(1, 4),
       rows=st.integers(1, 33))
@settings(max_examples=60, deadline=None)
def test_parallel_batch_bit_identical_any_worker_count(seed, objective,
                                                       workers, rows):
    graph, costs = _random_instance(seed, dag=objective is Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    assignments = problem.random_assignments(rows, seed)
    parallel = ParallelEvaluator(problem, workers=workers, min_cells=1)
    assert np.array_equal(problem.evaluate_batch(assignments, objective),
                          parallel.evaluate_batch(assignments, objective))


@given(seed=st.integers(0, 2000), workers=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_parallel_batch_bit_identical_on_constrained_instances(seed, workers):
    graph, costs = _random_instance(seed, n_lo=5, n_hi=9, extra=4)
    rng = np.random.default_rng(seed)
    nodes = list(graph.nodes)
    pinned = {nodes[0]: int(rng.integers(costs.num_instances))}
    forbidden = {nodes[1]: {int(rng.integers(costs.num_instances))}
                 - set(pinned.values())}
    problem = DeploymentProblem(
        graph, costs,
        constraints=PlacementConstraints(pinned=pinned, forbidden=forbidden))
    view = problem.compiled_constraints()
    engine = problem.compiled()
    assignments = view.random_assignments(23, rng)
    parallel = ParallelEvaluator(engine, workers=workers, min_cells=1)
    assert np.array_equal(
        engine.evaluate_batch(assignments, problem.objective),
        parallel.evaluate_batch(assignments, problem.objective))


def test_parallel_evaluate_plans_matches_serial():
    graph, costs = _random_instance(7)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(7)
    plans = [problem.plan_from_assignment(a)
             for a in problem.random_assignments(9, rng)]
    parallel = ParallelEvaluator(problem, workers=3, min_cells=1)
    assert list(problem.evaluate_plans(plans, Objective.LONGEST_LINK)) == \
        list(parallel.evaluate_plans(plans, Objective.LONGEST_LINK))


def test_parallel_evaluator_serial_fallback_below_cutoff():
    graph, costs = _random_instance(3)
    problem = compile_problem(graph, costs)
    parallel = ParallelEvaluator(problem, workers=4)  # default min_cells
    small = problem.random_assignments(4, 3)
    parallel.evaluate_batch(small, Objective.LONGEST_LINK)
    assert parallel.serial_calls == 1
    assert parallel.parallel_calls == 0
    forced = ParallelEvaluator(problem, workers=4, min_cells=1)
    forced.evaluate_batch(small, Objective.LONGEST_LINK)
    assert forced.parallel_calls == 1


def test_parallel_evaluator_single_worker_stays_serial():
    graph, costs = _random_instance(5)
    problem = compile_problem(graph, costs)
    parallel = ParallelEvaluator(problem, workers=1, min_cells=1)
    parallel.evaluate_batch(problem.random_assignments(8, 5),
                            Objective.LONGEST_LINK)
    assert parallel.parallel_calls == 0
    assert parallel.serial_calls == 1


def test_resolve_workers_validation():
    assert resolve_workers(None) == available_workers()
    assert resolve_workers("auto") == available_workers()
    assert resolve_workers(3) == 3
    assert available_workers() >= 1
    for bad in (0, -2, "three", 1.5):
        with pytest.raises(ValueError):
            resolve_workers(bad)


def test_scoring_engine_passthrough_and_wrap():
    graph, costs = _random_instance(11)
    problem = compile_problem(graph, costs)
    assert scoring_engine(problem, None) is problem
    wrapped = scoring_engine(problem, 2)
    assert isinstance(wrapped, ParallelEvaluator)
    assert wrapped.workers == 2


# --------------------------------------------------------------------------- #
# Incremental longest-path delta: state consistency and epoch invalidation
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 3000))
@settings(max_examples=30, deadline=None)
def test_incremental_lp_state_equals_fresh_prime_after_walk(seed):
    """After a long applied walk, internal LP state matches a fresh prime."""
    graph, costs = _random_instance(seed, n_lo=5, n_hi=10, dag=True)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(seed)
    assignment = problem.random_assignments(1, rng)[0]
    evaluator = problem.delta_evaluator(assignment, Objective.LONGEST_PATH)
    n = problem.num_nodes
    for _ in range(60):
        free = evaluator.free_instance_indices()
        if rng.random() < 0.4 and free.size:
            evaluator.apply_relocate(int(rng.integers(n)),
                                     int(free[rng.integers(free.size)]))
        elif n >= 2:
            a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
            evaluator.apply_swap(a, b)
    fresh = problem.delta_evaluator(evaluator.indexed_plan().assignment,
                                    Objective.LONGEST_PATH)
    assert evaluator.current_cost == fresh.current_cost
    assert evaluator._lp_finish == fresh._lp_finish
    assert evaluator._lp_argmax == fresh._lp_argmax
    assert evaluator._lp_ec == fresh._lp_ec
    # Peeks from the walked evaluator keep agreeing with the fresh one.
    if n >= 2:
        a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
        assert evaluator.swap_cost(a, b) == fresh.swap_cost(a, b)


def test_incremental_lp_stale_after_cost_refresh():
    graph, costs = _random_instance(21, dag=True)
    problem = DeploymentProblem(graph, costs,
                                objective=Objective.LONGEST_PATH)
    engine = problem.compiled()
    assignment = engine.random_assignments(1, 21)[0]
    evaluator = engine.delta_evaluator(assignment, Objective.LONGEST_PATH)
    _ = evaluator.current_cost

    rng = np.random.default_rng(22)
    matrix = costs.as_array()
    off = ~np.eye(costs.num_instances, dtype=bool)
    matrix[off] *= rng.lognormal(0.0, 0.05, size=matrix.shape)[off]
    engine.refresh_costs(CostMatrix(list(costs.instance_ids), matrix))

    with pytest.raises(SolverError):
        _ = evaluator.current_cost
    with pytest.raises(SolverError):
        evaluator.apply_swap(0, 1)

    evaluator.reprime()
    expected = engine.evaluate(assignment, Objective.LONGEST_PATH)
    assert evaluator.current_cost == expected
    # And the re-primed incremental walk still agrees with full evaluation.
    n = engine.num_nodes
    a, b = 0, n - 1
    candidate = assignment.copy()
    candidate[[a, b]] = candidate[[b, a]]
    assert evaluator.apply_swap(a, b) == \
        engine.evaluate(candidate, Objective.LONGEST_PATH)


# --------------------------------------------------------------------------- #
# Window-local peeked longest-path deltas
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 4000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]))
@settings(max_examples=40, deadline=None)
def test_peeked_deltas_agree_with_full_eval_and_commits(seed, objective):
    """Peeked move costs == full evaluation == post-commit state, any walk.

    Drives a mostly-rejected proposal loop (the local-search/annealing
    shape the window-local peek optimises): every peek is checked against
    a from-scratch ``evaluate`` of the candidate, and occasional commits
    must leave the evaluator agreeing with a fresh prime.
    """
    graph, costs = _random_instance(
        seed, n_lo=5, n_hi=10, dag=objective is Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(seed)
    assignment = problem.random_assignments(1, rng)[0]
    evaluator = problem.delta_evaluator(assignment, objective)
    n = problem.num_nodes
    for _ in range(30):
        free = evaluator.free_instance_indices()
        if rng.random() < 0.35 and free.size:
            move = ("relocate", int(rng.integers(n)),
                    int(free[rng.integers(free.size)]))
            peek = evaluator.relocate_cost(move[1], move[2])
            candidate = evaluator.indexed_plan().assignment
            candidate[move[1]] = move[2]
        elif n >= 2:
            a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
            move = ("swap", a, b)
            peek = evaluator.swap_cost(a, b)
            candidate = evaluator.indexed_plan().assignment
            candidate[[a, b]] = candidate[[b, a]]
        else:
            continue
        assert peek == problem.evaluate(candidate, objective)
        if rng.random() < 0.3:  # commit the peeked move
            if move[0] == "swap":
                committed = evaluator.apply_swap(move[1], move[2])
            else:
                committed = evaluator.apply_relocate(move[1], move[2])
            assert committed == peek
    fresh = problem.delta_evaluator(evaluator.indexed_plan().assignment,
                                    objective)
    assert evaluator.current_cost == fresh.current_cost
    if objective is Objective.LONGEST_PATH:
        assert evaluator._lp_finish == fresh._lp_finish
        assert evaluator._lp_level_max == fresh._lp_level_max


@given(seed=st.integers(0, 2000))
@settings(max_examples=20, deadline=None)
def test_peeked_lp_deltas_agree_on_constrained_instances(seed):
    graph, costs = _random_instance(seed, n_lo=5, n_hi=9, extra=4, dag=True)
    rng = np.random.default_rng(seed)
    nodes = list(graph.nodes)
    pinned = {nodes[0]: int(rng.integers(costs.num_instances))}
    problem = DeploymentProblem(
        graph, costs, objective=Objective.LONGEST_PATH,
        constraints=PlacementConstraints(pinned=pinned))
    view = problem.compiled_constraints()
    engine = problem.compiled()
    assignment = view.random_assignments(1, rng)[0]
    evaluator = engine.delta_evaluator(assignment, Objective.LONGEST_PATH,
                                       allowed_mask=view.allowed_mask)
    n = engine.num_nodes
    checked = 0
    for _ in range(40):
        a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
        if not evaluator.swap_allowed(a, b):
            continue
        peek = evaluator.swap_cost(a, b)
        candidate = evaluator.indexed_plan().assignment
        candidate[[a, b]] = candidate[[b, a]]
        assert peek == engine.evaluate(candidate, Objective.LONGEST_PATH)
        checked += 1
        if rng.random() < 0.25:
            evaluator.apply_swap(a, b)
    if checked:
        fresh = engine.delta_evaluator(evaluator.indexed_plan().assignment,
                                       Objective.LONGEST_PATH)
        assert evaluator.current_cost == fresh.current_cost


def test_peek_window_state_invalidated_and_rebuilt_after_refresh():
    """The per-level prefix/suffix maxima die with the cost epoch."""
    graph, costs = _random_instance(41, n_lo=8, n_hi=10, dag=True)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(41)
    assignment = problem.random_assignments(1, rng)[0]
    evaluator = problem.delta_evaluator(assignment, Objective.LONGEST_PATH)
    n = problem.num_nodes
    # Peeks extend the lazy prefix/suffix maxima over the level range.
    for _ in range(10):
        a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
        evaluator.swap_cost(a, b)
    struct = evaluator._lp_struct
    assert (evaluator._lp_prefix_len > 0
            or evaluator._lp_suffix_start < struct.num_levels)

    matrix = costs.as_array()
    off = ~np.eye(costs.num_instances, dtype=bool)
    matrix[off] *= rng.lognormal(0.0, 0.2, size=matrix.shape)[off]
    problem.refresh_costs(CostMatrix(list(costs.instance_ids), matrix))

    with pytest.raises(SolverError):
        evaluator.swap_cost(0, 1)
    evaluator.reprime()
    # All window state was rebuilt against the new costs: lazy bounds are
    # reset, the level maxima match a fresh prime, and peeks agree with
    # full evaluation again.
    assert evaluator._lp_prefix_len == 0
    assert evaluator._lp_suffix_start == struct.num_levels
    fresh = problem.delta_evaluator(assignment, Objective.LONGEST_PATH)
    assert evaluator._lp_level_max == fresh._lp_level_max
    for _ in range(10):
        a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
        peek = evaluator.swap_cost(a, b)
        candidate = evaluator.indexed_plan().assignment
        candidate[[a, b]] = candidate[[b, a]]
        assert peek == problem.evaluate(candidate, Objective.LONGEST_PATH)


# --------------------------------------------------------------------------- #
# SearchBudget.workers / session plumbing
# --------------------------------------------------------------------------- #

def test_budget_workers_round_trips_through_json():
    for workers in (None, "auto", 2):
        budget = SearchBudget(time_limit_s=1.5, max_iterations=10,
                              workers=workers)
        assert SearchBudget.from_dict(budget.to_dict()) == budget
    # Pre-workers payloads (older serialized budgets) stay loadable.
    legacy = SearchBudget.from_dict({"time_limit_s": 2.0})
    assert legacy.workers is None


def test_budget_workers_validated_eagerly():
    for bad in (0, -1, "many"):
        with pytest.raises(ValueError):
            SearchBudget(workers=bad)


def test_default_limits_keeps_workers_and_default_caps():
    default = SearchBudget.seconds(2.0)
    assert default_limits(None, default) is default
    folded = default_limits(SearchBudget(workers=3), default)
    assert folded.time_limit_s == 2.0 and folded.workers == 3
    explicit = SearchBudget(max_iterations=50, workers=2)
    assert default_limits(explicit, default) is explicit
    unlimited = SearchBudget.unlimited()
    assert default_limits(unlimited, default) is unlimited
    assert not unlimited.has_limits()
    assert explicit.has_limits()


@pytest.mark.parametrize("workers", ["auto", 1, 3])
def test_solvers_seed_identical_with_and_without_workers(workers):
    graph, costs = _random_instance(31, n_lo=6, n_hi=6)
    problem = DeploymentProblem(graph, costs)
    budget = SearchBudget(max_iterations=400)
    with_workers = SearchBudget(max_iterations=400, workers=workers)
    for solver_factory in (
        lambda: RandomSearch(num_samples=300, seed=9),
        lambda: SwapLocalSearch(restarts=2, seed=9),
        lambda: SimulatedAnnealing(seed=9),
    ):
        serial = solver_factory().solve(problem, budget=budget)
        parallel = solver_factory().solve(problem, budget=with_workers)
        assert serial.cost == parallel.cost
        assert serial.plan.as_dict() == parallel.plan.as_dict()
        assert serial.iterations == parallel.iterations


def test_session_eval_workers_default_applies_and_validates():
    graph, costs = _random_instance(37, n_lo=6, n_hi=6)
    problem = DeploymentProblem(graph, costs)
    request = SolveRequest(problem=problem, solver="random",
                           config={"num_samples": 150, "seed": 4})
    baseline = AdvisorSession().solve(request)
    threaded = AdvisorSession(eval_workers=2).solve(request)
    assert baseline.status == threaded.status == "ok"
    assert baseline.result.cost == threaded.result.cost
    assert baseline.result.plan.as_dict() == threaded.result.plan.as_dict()
    with pytest.raises(ValueError):
        AdvisorSession(eval_workers="lots")
    with pytest.raises(ValueError):
        AdvisorSession(eval_workers=0)


def test_session_effective_budget_precedence():
    session = AdvisorSession(eval_workers=2)
    assert session._effective_budget(None) == SearchBudget(workers=2)
    pinned = SearchBudget(time_limit_s=1.0, workers=4)
    assert session._effective_budget(pinned) is pinned
    folded = session._effective_budget(SearchBudget(time_limit_s=1.0))
    assert folded.workers == 2 and folded.time_limit_s == 1.0
    plain = AdvisorSession()
    untouched = SearchBudget(time_limit_s=1.0)
    assert plain._effective_budget(untouched) is untouched
