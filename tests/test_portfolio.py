"""Tests for the solver portfolio."""

import pytest

from repro.core import Objective
from repro.core.objectives import deployment_cost
from repro.solvers import (
    GreedyG1,
    GreedyG2,
    PortfolioSolver,
    RandomSearch,
    SearchBudget,
)

from conftest import deterministic_cost_matrix


class TestPortfolioSolver:
    def test_default_portfolio_longest_link(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=21)
        result = PortfolioSolver(seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(3)
        )
        assert result.plan.covers(mesh_graph)
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, mesh_graph, costs, Objective.LONGEST_LINK)
        )

    def test_default_portfolio_longest_path(self, tree_graph):
        costs = deterministic_cost_matrix(9, seed=22)
        result = PortfolioSolver(seed=0).solve(
            tree_graph, costs, objective=Objective.LONGEST_PATH,
            budget=SearchBudget.seconds(3),
        )
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, tree_graph, costs, Objective.LONGEST_PATH)
        )

    def test_never_worse_than_members_alone(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=23)
        members = [GreedyG1(), GreedyG2(), RandomSearch(num_samples=100, seed=0)]
        portfolio = PortfolioSolver(solvers=members, seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(2)
        )
        individual_costs = [
            member.solve(mesh_graph, costs).cost
            for member in [GreedyG1(), GreedyG2(), RandomSearch(num_samples=100, seed=0)]
        ]
        assert portfolio.cost <= min(individual_costs) + 1e-9

    def test_merged_trace_monotone(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=24)
        result = PortfolioSolver(seed=1).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(2)
        )
        trace_costs = [cost for _, cost in result.trace]
        assert trace_costs == sorted(trace_costs, reverse=True)

    def test_invalid_exact_fraction(self):
        with pytest.raises(ValueError):
            PortfolioSolver(exact_fraction=1.5)

    def test_custom_members_used(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=25)
        members = [RandomSearch(num_samples=10, seed=0)]
        result = PortfolioSolver(solvers=members, seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(1)
        )
        assert result.plan.covers(mesh_graph)
        assert result.iterations >= 10
