"""Property-style JSON round-trip tests for the serializable core types.

Every ``from_dict(to_dict(x))`` must reconstruct an equal object *through
an actual JSON wire format* (``json.dumps`` / ``json.loads``), and plan
costs evaluated on a round-tripped problem must be bit-identical to the
original — floats survive JSON because ``repr`` emits the shortest string
that parses back to the same float64.
"""

import json

import numpy as np
import pytest

from repro.api import SolveRequest, SolverResponse, SolveTelemetry
from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentPlan,
    DeploymentProblem,
    Objective,
    PlacementConstraints,
)
from repro.core.errors import ClouDiAError
from repro.solvers import RandomSearch, SearchBudget

from conftest import deterministic_cost_matrix


def wire(payload):
    """Push a payload through an actual JSON encode/decode cycle."""
    return json.loads(json.dumps(payload))


#: Graph templates the round-trip properties are checked over; exercises
#: every constructor family (meshes, trees, bipartite, rings, hypercubes,
#: stars, complete and random graphs).
TEMPLATES = [
    ("mesh", lambda: CommunicationGraph.mesh_2d(3, 4)),
    ("mesh3d", lambda: CommunicationGraph.mesh_3d(2, 2, 2)),
    ("torus", lambda: CommunicationGraph.mesh_2d(3, 3, wrap=True)),
    ("tree", lambda: CommunicationGraph.aggregation_tree(2, 2)),
    ("bipartite", lambda: CommunicationGraph.bipartite(2, 4)),
    ("ring", lambda: CommunicationGraph.ring(7)),
    ("hypercube", lambda: CommunicationGraph.hypercube(3)),
    ("star", lambda: CommunicationGraph.star(5)),
    ("complete", lambda: CommunicationGraph.complete(5)),
    ("random", lambda: CommunicationGraph.random_graph(8, 0.4, seed=1)),
    ("random-dag", lambda: CommunicationGraph.random_dag(8, 0.5, seed=2)),
]


@pytest.mark.parametrize("name,factory", TEMPLATES, ids=[t[0] for t in TEMPLATES])
class TestGraphRoundTrip:
    def test_graph_round_trips(self, name, factory):
        graph = factory()
        restored = CommunicationGraph.from_dict(wire(graph.to_dict()))
        assert restored == graph
        # Order matters for the evaluation engine: preserve it exactly.
        assert restored.nodes == graph.nodes
        assert restored.edges == graph.edges

    def test_plan_round_trips(self, name, factory):
        graph = factory()
        costs = deterministic_cost_matrix(graph.num_nodes + 3, seed=7)
        plan = DeploymentPlan.random(graph.nodes, costs.instance_ids,
                                     rng=np.random.default_rng(5))
        restored = DeploymentPlan.from_dict(wire(plan.to_dict()))
        assert restored == plan
        assert restored.nodes == plan.nodes

    def test_plan_costs_bit_identical_after_round_trip(self, name, factory):
        graph = factory()
        costs = deterministic_cost_matrix(graph.num_nodes + 2, seed=11)
        objective = (Objective.LONGEST_PATH if graph.is_dag()
                     else Objective.LONGEST_LINK)
        problem = DeploymentProblem(graph, costs, objective=objective)
        restored = DeploymentProblem.from_dict(wire(problem.to_dict()))
        plans = [
            problem.default_plan(),
            DeploymentPlan.random(graph.nodes, costs.instance_ids,
                                  rng=np.random.default_rng(3)),
        ]
        for plan in plans:
            assert restored.evaluate(plan) == problem.evaluate(plan)


class TestCostMatrixRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matrix_bits_survive(self, seed):
        costs = deterministic_cost_matrix(9, seed=seed)
        restored = CostMatrix.from_dict(wire(costs.to_dict()))
        assert restored.instance_ids == costs.instance_ids
        assert np.array_equal(restored.as_array(), costs.as_array())

    def test_non_contiguous_instance_ids(self):
        base = deterministic_cost_matrix(8, seed=1)
        relabeled = base.relabeled({i: 100 + 3 * i for i in range(8)})
        restored = CostMatrix.from_dict(wire(relabeled.to_dict()))
        assert restored.instance_ids == relabeled.instance_ids
        assert np.array_equal(restored.as_array(), relabeled.as_array())

    def test_malformed_payload_rejected(self):
        with pytest.raises(ClouDiAError):
            CostMatrix.from_dict({"matrix": [[0.0]]})


class TestProblemRoundTrip:
    def test_full_problem_with_constraints_and_metadata(self, mesh_graph):
        problem = DeploymentProblem(
            mesh_graph, deterministic_cost_matrix(12, seed=2),
            constraints=PlacementConstraints(pinned={0: 3},
                                             forbidden={1: {4, 5}}),
            metadata={"tenant": "acme", "template": "mesh"},
        )
        restored = DeploymentProblem.from_dict(wire(problem.to_dict()))
        assert restored == problem
        assert restored.constraints == problem.constraints
        assert dict(restored.metadata) == dict(problem.metadata)
        assert restored.fingerprint() == problem.fingerprint()

    def test_unsupported_version_rejected(self, mesh_graph):
        payload = DeploymentProblem(
            mesh_graph, deterministic_cost_matrix(10)).to_dict()
        payload["version"] = 999
        with pytest.raises(ClouDiAError, match="version"):
            DeploymentProblem.from_dict(payload)

    def test_missing_keys_rejected(self):
        with pytest.raises(ClouDiAError, match="misses"):
            DeploymentProblem.from_dict({"objective": "longest_link"})


class TestRequestResponseRoundTrip:
    def test_request_round_trips(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=9)
        problem = DeploymentProblem(mesh_graph, costs)
        request = SolveRequest(
            problem=problem, solver="cp", config={"seed": 5},
            budget=SearchBudget(time_limit_s=2.5, max_iterations=100),
            initial_plan=problem.default_plan(),
            request_id="req-x",
        )
        restored = SolveRequest.from_dict(wire(request.to_dict()))
        assert restored.problem == problem
        assert restored.solver == "cp"
        assert dict(restored.config) == {"seed": 5}
        assert restored.budget == request.budget
        assert restored.initial_plan == request.initial_plan
        assert restored.request_id == "req-x"

    def test_solver_response_round_trips_bit_identical(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=4)
        problem = DeploymentProblem(mesh_graph, costs)
        result = RandomSearch(num_samples=100, seed=0).solve(problem)
        response_payload = wire({
            "version": 1,
            "request_id": "r", "solver": "random", "status": "ok",
            "result": result.to_dict(),
            "telemetry": SolveTelemetry(compile_cache_hit=True,
                                        total_time_s=0.5).to_dict(),
        })
        restored = SolverResponse.from_dict(response_payload)
        assert restored.result.plan == result.plan
        assert restored.result.cost == result.cost  # bit-identical float
        assert restored.result.trace == result.trace
        assert restored.telemetry.compile_cache_hit is True
        # The restored plan re-evaluates to the same bits on the problem.
        assert problem.evaluate(restored.result.plan) == result.cost

    def test_budget_round_trips(self):
        budget = SearchBudget(time_limit_s=1.25, max_iterations=7,
                              target_cost=3.5)
        assert SearchBudget.from_dict(wire(budget.to_dict())) == budget
