"""Tests for the simulated cloud provider and allocation policies."""

import numpy as np
import pytest

from repro.cloud import (
    ContiguousAllocation,
    DatacenterTopology,
    ScatteredAllocation,
    SimulatedCloud,
    UniformRandomAllocation,
    ip_distance,
)
from repro.cloud.traces import collect_latency_trace, representative_links
from repro.core import LatencyMetric
from repro.core.errors import AllocationError


class TestAllocationPolicies:
    @pytest.fixture
    def topology(self):
        return DatacenterTopology(num_pods=2, racks_per_pod=4, hosts_per_rack=4, seed=0)

    def test_scattered_spreads_over_racks(self, topology):
        rng = np.random.default_rng(0)
        free = [h.host_id for h in topology.hosts()]
        hosts = ScatteredAllocation().choose_hosts(topology, free, 8, rng)
        racks = {topology.host(h).rack_id for h in hosts}
        assert len(hosts) == len(set(hosts)) == 8
        assert len(racks) >= 3

    def test_contiguous_fills_racks_in_order(self, topology):
        rng = np.random.default_rng(0)
        free = [h.host_id for h in topology.hosts()]
        hosts = ContiguousAllocation().choose_hosts(topology, free, 6, rng)
        racks = [topology.host(h).rack_id for h in hosts]
        assert racks == sorted(racks)
        assert len(set(racks)) <= 2

    def test_uniform_random_allocates_requested_count(self, topology):
        rng = np.random.default_rng(0)
        free = [h.host_id for h in topology.hosts()]
        hosts = UniformRandomAllocation().choose_hosts(topology, free, 10, rng)
        assert len(hosts) == len(set(hosts)) == 10

    def test_over_capacity_rejected(self, topology):
        rng = np.random.default_rng(0)
        free = [h.host_id for h in topology.hosts()]
        with pytest.raises(AllocationError):
            ScatteredAllocation().choose_hosts(topology, free, len(free) + 1, rng)

    def test_nonpositive_count_rejected(self, topology):
        rng = np.random.default_rng(0)
        free = [h.host_id for h in topology.hosts()]
        with pytest.raises(AllocationError):
            UniformRandomAllocation().choose_hosts(topology, free, 0, rng)

    def test_invalid_bias_rejected(self):
        with pytest.raises(AllocationError):
            ScatteredAllocation(same_rack_bias=2.0)


class TestSimulatedCloud:
    def test_allocation_and_termination(self, small_cloud):
        instances = small_cloud.allocate(6)
        assert len(instances) == 6
        assert len(small_cloud.active_instances()) == 6
        small_cloud.terminate([instances[0].instance_id, instances[1].instance_id])
        assert len(small_cloud.active_instances()) == 4
        # Terminating again is idempotent.
        small_cloud.terminate([instances[0].instance_id])
        assert len(small_cloud.active_instances()) == 4

    def test_instances_land_on_distinct_hosts(self, small_cloud):
        instances = small_cloud.allocate(10)
        hosts = [inst.host_id for inst in instances]
        assert len(set(hosts)) == 10

    def test_unknown_instance_rejected(self, small_cloud):
        with pytest.raises(AllocationError):
            small_cloud.mean_latency(0, 999)

    def test_mean_latency_positive_and_stable(self, small_cloud, allocated_ids):
        a, b = allocated_ids[0], allocated_ids[1]
        first = small_cloud.mean_latency(a, b)
        second = small_cloud.mean_latency(a, b)
        assert first == second > 0

    def test_sample_rtt_scatters_around_mean(self, small_cloud, allocated_ids):
        a, b = allocated_ids[0], allocated_ids[2]
        rng = np.random.default_rng(0)
        samples = [small_cloud.sample_rtt(a, b, rng=rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(small_cloud.mean_latency(a, b),
                                                 rel=0.2)

    def test_true_cost_matrix_mean_is_exact(self, small_cloud, allocated_ids):
        costs = small_cloud.true_cost_matrix(allocated_ids)
        a, b = allocated_ids[3], allocated_ids[5]
        assert costs.cost(a, b) == pytest.approx(small_cloud.mean_latency(a, b))

    def test_true_cost_matrix_jitter_metrics(self, small_cloud, allocated_ids):
        subset = allocated_ids[:5]
        mean_matrix = small_cloud.true_cost_matrix(subset, metric=LatencyMetric.MEAN)
        p99_matrix = small_cloud.true_cost_matrix(subset, metric=LatencyMetric.P99,
                                                  num_samples=64)
        # The 99th percentile is never below the mean for any link.
        for a in subset:
            for b in subset:
                if a != b:
                    assert p99_matrix.cost(a, b) >= mean_matrix.cost(a, b) * 0.8

    def test_latency_heterogeneity_present(self, small_cloud):
        """Best and worst links differ substantially (the premise of the paper)."""
        ids = [inst.instance_id for inst in small_cloud.allocate(14)]
        costs = small_cloud.true_cost_matrix(ids)
        assert costs.max_cost() / costs.min_cost() > 1.5

    def test_hop_count_and_ip(self, small_cloud, allocated_ids):
        a, b = allocated_ids[0], allocated_ids[1]
        assert small_cloud.hop_count(a, b) in (0, 1, 3, 5)
        ip = small_cloud.private_ip(a)
        assert ip.startswith("10.")

    def test_clock_advance(self, small_cloud):
        small_cloud.advance_time(5.0)
        assert small_cloud.clock_hours == 5.0
        with pytest.raises(AllocationError):
            small_cloud.advance_time(-1.0)

    def test_determinism_across_clouds(self):
        a = SimulatedCloud(seed=42)
        b = SimulatedCloud(seed=42)
        ids_a = [inst.instance_id for inst in a.allocate(8)]
        ids_b = [inst.instance_id for inst in b.allocate(8)]
        assert ids_a == ids_b
        assert a.mean_latency(ids_a[0], ids_a[5]) == b.mean_latency(ids_b[0], ids_b[5])

    def test_pairwise_mean_latencies_complete(self, small_cloud, allocated_ids):
        pairs = small_cloud.pairwise_mean_latencies(allocated_ids[:4])
        assert len(pairs) == 4 * 3


class TestIpDistance:
    def test_identical_addresses(self):
        assert ip_distance("10.1.2.3", "10.1.2.3") == 0

    def test_octet_distances(self):
        assert ip_distance("10.1.2.3", "10.1.2.9") == 1
        assert ip_distance("10.1.2.3", "10.1.9.3") == 2
        assert ip_distance("10.1.2.3", "10.9.2.3") == 3
        assert ip_distance("10.1.2.3", "11.1.2.3") == 4

    def test_group_bits_granularity(self):
        assert ip_distance("10.1.2.3", "10.1.2.9", group_bits=4) >= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ip_distance("10.1.2", "10.1.2.3")
        with pytest.raises(ValueError):
            ip_distance("10.1.2.3", "10.1.2.999")
        with pytest.raises(ValueError):
            ip_distance("10.1.2.3", "10.1.2.4", group_bits=0)


class TestTraces:
    def test_trace_shape_and_stability(self, small_cloud):
        ids = [inst.instance_id for inst in small_cloud.allocate(6)]
        links = representative_links(small_cloud, count=3, instance_ids=ids)
        assert len(links) == 3
        trace = collect_latency_trace(small_cloud, links, duration_hours=20,
                                      window_hours=5, samples_per_window=100, seed=0)
        assert trace.means_ms.shape == (3, 4)
        # Mean latencies are stable: coefficient of variation below 15 %.
        for link in links:
            assert trace.stability(link) < 0.15

    def test_representative_links_span_latency_range(self, small_cloud):
        ids = [inst.instance_id for inst in small_cloud.allocate(10)]
        links = representative_links(small_cloud, count=4, instance_ids=ids)
        latencies = [small_cloud.mean_latency(a, b) for a, b in links]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]
