"""The durable SQLite result + history store: pragmas, the ResultCache
protocol, eviction sweeps, crash recovery, cross-process concurrency, the
persisted watch history, and the JSON-cache migration path."""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api import AdvisorSession, ResultCache, WatchPolicy
from repro.core import (
    CommunicationGraph,
    DeploymentProblem,
    Objective,
)
from repro.core.errors import StoreError
from repro.solvers import SearchBudget, SolverResult
from repro.store import (
    SCHEMA_VERSION,
    SQLiteResultCache,
    connect,
    migrate_json_cache,
    schema_version,
    sweep,
)
from repro.store.connection import pragma_value
from repro.testing import deterministic_cost_matrix

SRC_PATH = str(Path(repro.__file__).parents[1])


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_PATH] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return env


@pytest.fixture
def problem():
    costs = deterministic_cost_matrix(9, seed=31, symmetric=False)
    graph = CommunicationGraph.ring(6)
    return DeploymentProblem(graph, costs)


def make_result(problem, cost=1.25):
    return SolverResult(
        plan=problem.default_plan(), cost=cost,
        objective=Objective.LONGEST_LINK, solver_name="G2",
        solve_time_s=0.1, iterations=3, optimal=False,
    )


def fast_policy(**overrides) -> WatchPolicy:
    base = dict(solver="local-search", config={"seed": 3},
                budget=SearchBudget(max_iterations=300),
                drift_threshold=0.05, degradation_threshold=0.02)
    base.update(overrides)
    return WatchPolicy(**base)


def drifted(costs, seed, sigma):
    import numpy as np
    rng = np.random.default_rng(seed)
    matrix = costs.as_array()
    m = matrix.shape[0]
    off_diagonal = ~np.eye(m, dtype=bool)
    matrix[off_diagonal] *= rng.lognormal(0.0, sigma,
                                          size=(m, m))[off_diagonal]
    from repro.core import CostMatrix
    return CostMatrix(list(costs.instance_ids), matrix)


class TestConnectionDiscipline:
    def test_pragmas_applied(self, tmp_path):
        store = SQLiteResultCache(tmp_path / "store.db")
        conn = store._conn
        assert pragma_value(conn, "journal_mode") == "wal"
        assert pragma_value(conn, "foreign_keys") == 1
        assert pragma_value(conn, "synchronous") == 1  # NORMAL
        assert pragma_value(conn, "busy_timeout") == 30_000
        store.close()

    def test_parent_directories_created(self, tmp_path):
        store = SQLiteResultCache(tmp_path / "deep" / "nested" / "s.db")
        assert store.path.exists()
        store.close()

    def test_schema_version_stamped(self, tmp_path):
        store = SQLiteResultCache(tmp_path / "store.db")
        assert schema_version(store._conn) == SCHEMA_VERSION
        store.close()

    def test_reopen_does_not_remigrate(self, tmp_path, problem):
        path = tmp_path / "store.db"
        with SQLiteResultCache(path) as store:
            store.put(problem.fingerprint(), "greedy", make_result(problem))
        with SQLiteResultCache(path) as store:
            assert len(store) == 1

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "store.db"
        SQLiteResultCache(path).close()
        conn = connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            SQLiteResultCache(path)


class TestResultCacheProtocol:
    """The same surface the JSON ResultCache exposes, same semantics."""

    def test_put_get_round_trip(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        result = make_result(problem)
        fingerprint = problem.fingerprint()
        assert store.get(fingerprint, "greedy") is None
        store.put(fingerprint, "greedy", result)
        restored = store.get(fingerprint, "greedy")
        assert restored.cost == result.cost
        assert restored.plan.as_dict() == result.plan.as_dict()
        assert len(store) == 1
        stats = store.stats
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)

    def test_solver_keys_are_isolated(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        store.put(problem.fingerprint(), "greedy", make_result(problem))
        assert store.get(problem.fingerprint(), "cp") is None

    def test_put_upserts(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "greedy", make_result(problem, cost=2.0))
        store.put(fingerprint, "greedy", make_result(problem, cost=1.0))
        assert len(store) == 1
        assert store.get(fingerprint, "greedy").cost == 1.0

    def test_corrupt_rows_degrade_to_misses(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "greedy", make_result(problem))
        store._conn.execute("UPDATE results SET payload = '{not json'")
        assert store.get(fingerprint, "greedy") is None

    def test_malformed_payload_degrades_to_miss(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "greedy", make_result(problem))
        store._conn.execute(
            "UPDATE results SET payload = '{\"cost\": 1.0}'")
        assert store.get(fingerprint, "greedy") is None

    def test_version_mismatch_degrades_to_miss(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "greedy", make_result(problem))
        store._conn.execute("UPDATE results SET version = 999")
        assert store.get(fingerprint, "greedy") is None

    def test_clear_removes_entries_but_keeps_history(self, tmp_path,
                                                     problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        store.put(problem.fingerprint(), "greedy", make_result(problem))
        session = AdvisorSession(result_cache=store)
        session.watch(problem, [], fast_policy())
        assert store.clear() >= 1
        assert len(store) == 0
        assert len(store.history.runs()) == 1

    def test_non_finite_result_fields_fail_loudly(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        bad = make_result(problem, cost=float("inf"))
        with pytest.raises(ValueError):
            store.put(problem.fingerprint(), "greedy", bad)
        assert len(store) == 0  # the transaction rolled back


class TestEviction:
    def _populate(self, store, problem, count):
        base = problem
        fingerprints = []
        for index in range(count):
            revised = base.revise(costs=drifted(problem.costs,
                                                seed=100 + index, sigma=0.2))
            store.put(revised.fingerprint(), "greedy", make_result(revised))
            fingerprints.append(revised.fingerprint())
        return fingerprints

    def test_size_sweep_evicts_exactly_the_lru_rows(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprints = self._populate(store, problem, 5)
        # Deterministic recency order: row i last used at t=i.
        for index, fingerprint in enumerate(fingerprints):
            store._conn.execute(
                "UPDATE results SET last_used_at = ? WHERE fingerprint = ?",
                (float(index), fingerprint))
        store.max_results = 3
        stats = store.sweep()
        assert stats.results_by_size == 2
        survivors = {row[0] for row in store._conn.execute(
            "SELECT fingerprint FROM results")}
        assert survivors == set(fingerprints[2:])  # the two oldest evicted

    def test_age_sweep_evicts_exactly_the_over_age_rows(self, tmp_path,
                                                        problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprints = self._populate(store, problem, 4)
        now = time.time()
        for fingerprint in fingerprints[:2]:
            store._conn.execute(
                "UPDATE results SET last_used_at = ? WHERE fingerprint = ?",
                (now - 1000.0, fingerprint))
        store.max_age_s = 500.0
        stats = store.sweep(now=now)
        assert stats.results_by_age == 2
        survivors = {row[0] for row in store._conn.execute(
            "SELECT fingerprint FROM results")}
        assert survivors == set(fingerprints[2:])

    def test_orphan_problems_pruned(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        self._populate(store, problem, 2)
        store.max_results = 1
        store.sweep()
        anchored = {row[0] for row in store._conn.execute(
            "SELECT fingerprint FROM problems")}
        remaining = {row[0] for row in store._conn.execute(
            "SELECT fingerprint FROM results")}
        assert anchored == remaining  # evicted results took their anchor

    def test_hits_refresh_lru_position(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprints = self._populate(store, problem, 3)
        for index, fingerprint in enumerate(fingerprints):
            store._conn.execute(
                "UPDATE results SET last_used_at = ? WHERE fingerprint = ?",
                (float(index), fingerprint))
        assert store.get(fingerprints[0], "greedy") is not None  # touch
        store.max_results = 2
        store.sweep()
        survivors = {row[0] for row in store._conn.execute(
            "SELECT fingerprint FROM results")}
        assert fingerprints[0] in survivors  # the touched row survived

    def test_auto_sweep_after_sweep_every_puts(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db", max_results=2,
                                  sweep_every=3)
        self._populate(store, problem, 3)  # third put triggers the sweep
        assert len(store) == 2

    def test_history_run_retention(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        session = AdvisorSession(result_cache=store)
        for _ in range(3):
            session.watch(problem, [], fast_policy())
        stats = sweep(store._conn, max_runs=1)
        assert stats.runs_by_size == 2
        assert len(store.history.runs()) == 1
        # Events of the evicted runs cascaded away with their run rows.
        events = store._conn.execute(
            "SELECT COUNT(*) FROM watch_events").fetchone()[0]
        assert events == 1


class TestCrashRecovery:
    def test_killed_uncommitted_writer_leaves_store_consistent(
            self, tmp_path, problem):
        path = tmp_path / "store.db"
        with SQLiteResultCache(path) as store:
            store.put(problem.fingerprint(), "greedy", make_result(problem))
        script = f"""
import os
from repro.store import connect
conn = connect({str(path)!r})
conn.execute("BEGIN IMMEDIATE")
conn.execute(
    "INSERT INTO problems (fingerprint, objective, created_at) "
    "VALUES ('uncommitted', 'longest_link', 0)")
print("mid-write", flush=True)
os._exit(1)  # die with the transaction open
"""
        proc = subprocess.run([sys.executable, "-c", script],
                              env=subprocess_env(), capture_output=True,
                              text=True, timeout=60)
        assert "mid-write" in proc.stdout
        with SQLiteResultCache(path) as store:
            assert store._conn.execute(
                "PRAGMA integrity_check").fetchone()[0] == "ok"
            # The committed entry survived; the torn write did not.
            assert store.get(problem.fingerprint(), "greedy") is not None
            rows = store._conn.execute(
                "SELECT COUNT(*) FROM problems "
                "WHERE fingerprint = 'uncommitted'").fetchone()[0]
            assert rows == 0

    def test_killed_after_commit_leaves_recoverable_wal(self, tmp_path,
                                                        problem):
        path = tmp_path / "store.db"
        SQLiteResultCache(path).close()
        # Commit through the WAL, then die without closing or
        # checkpointing: the row lives only in the -wal file.
        script = f"""
import os
from repro.store import connect, transaction
conn = connect({str(path)!r})
with transaction(conn):
    conn.execute(
        "INSERT INTO problems (fingerprint, objective, created_at) "
        "VALUES ('committed', 'longest_link', 0)")
print("committed", flush=True)
os._exit(1)
"""
        proc = subprocess.run([sys.executable, "-c", script],
                              env=subprocess_env(), capture_output=True,
                              text=True, timeout=60)
        assert "committed" in proc.stdout
        with SQLiteResultCache(path) as store:
            rows = store._conn.execute(
                "SELECT COUNT(*) FROM problems "
                "WHERE fingerprint = 'committed'").fetchone()[0]
            assert rows == 1

    def test_failed_put_rolls_back_cleanly(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        with pytest.raises(ValueError):
            store.put(problem.fingerprint(), "greedy",
                      make_result(problem, cost=float("nan")))
        # The store stays fully usable after the aborted transaction.
        store.put(problem.fingerprint(), "greedy", make_result(problem))
        assert len(store) == 1


class TestConcurrency:
    def test_concurrent_readers_while_writing(self, tmp_path, problem):
        """Sibling processes read throughout a write burst, all hits."""
        path = tmp_path / "store.db"
        store = SQLiteResultCache(path)
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "greedy", make_result(problem))
        reader_script = f"""
from repro.store import SQLiteResultCache
store = SQLiteResultCache({str(path)!r})
hits = sum(1 for _ in range(60)
           if store.get({fingerprint!r}, "greedy") is not None)
print("hits", hits, flush=True)
"""
        readers = [subprocess.Popen([sys.executable, "-c", reader_script],
                                    env=subprocess_env(),
                                    stdout=subprocess.PIPE, text=True)
                   for _ in range(3)]
        # Write new entries while the readers hammer the shared database.
        for index in range(40):
            revised = problem.revise(costs=drifted(problem.costs,
                                                   seed=index, sigma=0.2))
            store.put(revised.fingerprint(), f"w{index}",
                      make_result(revised))
        for reader in readers:
            stdout, _ = reader.communicate(timeout=120)
            assert reader.returncode == 0
            # Every single lookup was served — no "database is locked"
            # miss within the busy timeout.
            assert stdout.strip() == "hits 60"

    def test_writer_waits_out_a_short_lock(self, tmp_path, problem):
        path = tmp_path / "store.db"
        store = SQLiteResultCache(path)
        blocker = connect(path)
        blocker.execute("BEGIN IMMEDIATE")

        def release():
            time.sleep(0.3)
            blocker.execute("COMMIT")

        thread = threading.Thread(target=release)
        thread.start()
        # With a 30 s busy timeout the put queues behind the lock instead
        # of raising "database is locked".
        store.put(problem.fingerprint(), "greedy", make_result(problem))
        thread.join()
        assert len(store) == 1

    def test_writer_times_out_loudly(self, tmp_path, problem):
        path = tmp_path / "store.db"
        store = SQLiteResultCache(path, busy_timeout_ms=100)
        blocker = connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            with pytest.raises(StoreError):
                store.put(problem.fingerprint(), "greedy",
                          make_result(problem))
            # Reads degrade to a miss instead of raising.
            assert store.get(problem.fingerprint(), "greedy") is None
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()


class TestWatchHistory:
    def test_record_and_query_round_trip(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        session = AdvisorSession(result_cache=store)
        revisions = [drifted(problem.costs, seed=1, sigma=0.001),
                     drifted(problem.costs, seed=2, sigma=0.4)]
        report = session.watch(problem, revisions, fast_policy())

        runs = store.history.runs()
        assert len(runs) == 1
        run = runs[0]
        assert run.root_fingerprint == problem.fingerprint()
        assert run.solver == "local-search"
        assert run.resolves == report.resolves
        assert run.num_events == len(report.events)

        events = store.history.events(run.run_id)
        assert [e.to_dict() for e in events] == [
            e.to_dict() for e in report.events]
        # Non-finite floats survive the NULL round trip as inf.
        assert events[0].incumbent_cost == float("inf")

    def test_redeployments_since_revision(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        session = AdvisorSession(result_cache=store)
        revisions = [drifted(problem.costs, seed=3, sigma=0.4),
                     drifted(problem.costs, seed=4, sigma=0.4)]
        report = session.watch(problem, revisions, fast_policy())
        fingerprint = problem.fingerprint()
        everything = store.history.redeployments(fingerprint)
        assert len(everything) == report.redeployments
        later = store.history.redeployments(fingerprint, since_revision=1)
        assert all(event.revision > 1 for event in later)
        assert len(later) == sum(1 for event in report.events
                                 if event.redeployed and event.revision > 1)
        assert store.history.redeployments("no-such-fingerprint") == []

    def test_revision_lineage(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        session = AdvisorSession(result_cache=store)
        revisions = [drifted(problem.costs, seed=5, sigma=0.4)]
        report = session.watch(problem, revisions, fast_policy())
        lineage = store.history.revision_lineage(problem.fingerprint())
        assert len(lineage) == 1
        child, revision, max_drift = lineage[0]
        assert child == report.events[1].fingerprint
        assert revision == 1
        assert max_drift == pytest.approx(report.events[1].drift)

    def test_sibling_process_reads_history(self, tmp_path, problem):
        path = tmp_path / "store.db"
        session = AdvisorSession(result_cache=SQLiteResultCache(path))
        session.watch(problem, [drifted(problem.costs, seed=6, sigma=0.4)],
                      fast_policy())
        script = f"""
from repro.store import SQLiteResultCache
store = SQLiteResultCache({str(path)!r})
runs = store.history.runs()
print("runs", len(runs), "events", runs[0].num_events, flush=True)
"""
        proc = subprocess.run([sys.executable, "-c", script],
                              env=subprocess_env(), capture_output=True,
                              text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "runs 1 events 2"

    def test_telemetry_rows_recorded(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        session = AdvisorSession(result_cache=store)
        report = session.watch(
            problem, [drifted(problem.costs, seed=7, sigma=0.4)],
            fast_policy())
        rows = store._conn.execute(
            "SELECT status, solver FROM telemetry").fetchall()
        assert len(rows) == report.resolves
        assert all(status == "ok" and solver == "local-search"
                   for status, solver in rows)

    def test_problems_enriched_with_instance_metadata(self, tmp_path,
                                                      problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        session = AdvisorSession(result_cache=store)
        session.watch(problem, [], fast_policy())
        row = store._conn.execute(
            "SELECT instance_key, num_nodes, num_instances FROM problems "
            "WHERE fingerprint = ?", (problem.fingerprint(),)).fetchone()
        assert row == (problem.instance_key(), problem.graph.num_nodes,
                       len(problem.costs.instance_ids))


class TestSessionIntegration:
    def test_replay_is_fully_store_served(self, tmp_path, problem):
        path = tmp_path / "store.db"
        revisions = [drifted(problem.costs, seed=8, sigma=0.4)]
        first = AdvisorSession(result_cache=SQLiteResultCache(path))
        report = first.watch(problem, revisions, fast_policy())
        assert report.resolves == 2 and report.cache_hits == 0

        second = AdvisorSession(result_cache=SQLiteResultCache(path))
        replay = second.watch(problem, revisions, fast_policy())
        assert replay.resolves == 0
        assert replay.cache_hits == 2
        assert replay.cost == report.cost
        assert replay.plan.as_dict() == report.plan.as_dict()
        assert second.stats.result_cache_hits == 2

    def test_different_policies_do_not_share_entries(self, tmp_path,
                                                     problem):
        path = tmp_path / "store.db"
        AdvisorSession(result_cache=SQLiteResultCache(path)).watch(
            problem, [], fast_policy())
        report = AdvisorSession(result_cache=SQLiteResultCache(path)).watch(
            problem, [], fast_policy(config={"seed": 99}))
        assert report.cache_hits == 0 and report.resolves == 1

    def test_json_and_sqlite_replays_agree(self, tmp_path, problem):
        """Same watch, either cache backend: identical recommendation."""
        revisions = [drifted(problem.costs, seed=9, sigma=0.4)]
        json_session = AdvisorSession(result_cache=tmp_path / "json-cache")
        sqlite_session = AdvisorSession(
            result_cache=SQLiteResultCache(tmp_path / "store.db"))
        json_report = json_session.watch(problem, revisions, fast_policy())
        sqlite_report = sqlite_session.watch(problem, revisions,
                                             fast_policy())
        assert json_report.cost == sqlite_report.cost
        assert (json_report.plan.as_dict()
                == sqlite_report.plan.as_dict())


class TestJsonCacheMigration:
    def test_migrates_entries_and_sweeps_litter(self, tmp_path, problem):
        directory = tmp_path / "json-cache"
        cache = ResultCache(directory)
        fingerprint = problem.fingerprint()
        cache.put(fingerprint, "greedy.abc123", make_result(problem))
        cache.put(fingerprint, "cp", make_result(problem, cost=2.0))
        # Crashed-writer litter (old) plus a corrupt entry to skip.
        litter = directory / ".write-stale.json"
        litter.write_text("{", encoding="utf-8")
        os.utime(litter, (1, 1))
        (directory / f"{fingerprint}.broken.json").write_text(
            "{not json", encoding="utf-8")

        store = SQLiteResultCache(tmp_path / "store.db")
        imported = migrate_json_cache(directory, store)
        assert imported == 2
        assert not litter.exists()
        assert store.get(fingerprint, "greedy.abc123").cost == 1.25
        assert store.get(fingerprint, "cp").cost == 2.0

    def test_existing_store_rows_win(self, tmp_path, problem):
        directory = tmp_path / "json-cache"
        cache = ResultCache(directory)
        fingerprint = problem.fingerprint()
        cache.put(fingerprint, "greedy", make_result(problem, cost=9.0))
        store = SQLiteResultCache(tmp_path / "store.db")
        store.put(fingerprint, "greedy", make_result(problem, cost=1.0))
        assert migrate_json_cache(directory, store) == 0
        assert store.get(fingerprint, "greedy").cost == 1.0


class TestStoreCli:
    def _artifacts(self, tmp_path):
        from repro.cli import main as cli_main
        problem_path = tmp_path / "problem.json"
        trace_path = tmp_path / "trace.json"
        assert cli_main(["make-problem", "--template", "ring", "--nodes",
                         "6", "--out", str(problem_path)]) == 0
        assert cli_main(["make-trace", "--problem", str(problem_path),
                         "--out", str(trace_path), "--windows", "3",
                         "--spike-window", "1", "--spike-links", "3"]) == 0
        return problem_path, trace_path

    def test_watch_store_replay_is_store_served(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        problem_path, trace_path = self._artifacts(tmp_path)
        store_path = tmp_path / "store.db"
        log_path = tmp_path / "log.json"
        args = ["watch", "--problem", str(problem_path),
                "--trace", str(trace_path), "--solver", "local-search",
                "--seed", "7", "--time-limit", "0.5",
                "--store", str(store_path)]
        assert cli_main(args + ["--out", str(log_path)]) == 0
        first = capsys.readouterr().out
        assert "durable store" in first

        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "re-solves: 0" in second

        def reject(token):
            raise ValueError(f"non-finite JSON token {token!r}")

        log = json.loads(log_path.read_text(), parse_constant=reject)
        assert log["events"][0]["reason"] == "initial"
        assert log["events"][0]["incumbent_cost"] is None

        with SQLiteResultCache(store_path) as store:
            assert len(store.history.runs()) == 2

    def test_watch_rejects_both_cache_flags(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        problem_path, trace_path = self._artifacts(tmp_path)
        code = cli_main([
            "watch", "--problem", str(problem_path),
            "--trace", str(trace_path),
            "--store", str(tmp_path / "s.db"),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 2
        assert "--store and --cache-dir" in capsys.readouterr().err
