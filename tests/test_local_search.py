"""Tests for the swap local search and simulated annealing extensions."""

import pytest

from repro.core import CommunicationGraph, Objective
from repro.core.objectives import deployment_cost
from repro.solvers import RandomSearch, SearchBudget, SimulatedAnnealing, SwapLocalSearch

from conftest import deterministic_cost_matrix


@pytest.fixture
def problem():
    graph = CommunicationGraph.mesh_2d(3, 3)
    costs = deterministic_cost_matrix(11, seed=4)
    return graph, costs


class TestSwapLocalSearch:
    def test_valid_result(self, problem):
        graph, costs = problem
        result = SwapLocalSearch(seed=0).solve(graph, costs,
                                               budget=SearchBudget.seconds(0.5))
        assert result.plan.covers(graph)
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, graph, costs, Objective.LONGEST_LINK)
        )

    def test_improves_on_initial_plan(self, problem):
        graph, costs = problem
        initial = RandomSearch(num_samples=1, seed=5).solve(graph, costs)
        refined = SwapLocalSearch(seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(0.5), initial_plan=initial.plan
        )
        assert refined.cost <= initial.cost

    def test_beats_small_random_search(self, problem):
        graph, costs = problem
        random_result = RandomSearch(num_samples=50, seed=2).solve(graph, costs)
        local_result = SwapLocalSearch(seed=2).solve(
            graph, costs, budget=SearchBudget.seconds(0.5)
        )
        assert local_result.cost <= random_result.cost * 1.05

    def test_iteration_budget(self, problem):
        graph, costs = problem
        result = SwapLocalSearch(seed=1).solve(
            graph, costs, budget=SearchBudget(time_limit_s=5.0, max_iterations=100)
        )
        assert result.iterations <= 100

    def test_invalid_restarts(self):
        with pytest.raises(ValueError):
            SwapLocalSearch(restarts=0)

    def test_longest_path_objective(self):
        graph = CommunicationGraph.aggregation_tree(2, 2)
        costs = deterministic_cost_matrix(8, seed=6)
        result = SwapLocalSearch(seed=0).solve(
            graph, costs, objective=Objective.LONGEST_PATH,
            budget=SearchBudget.seconds(0.3),
        )
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, graph, costs, Objective.LONGEST_PATH)
        )


class TestSimulatedAnnealing:
    def test_valid_result(self, problem):
        graph, costs = problem
        result = SimulatedAnnealing(seed=0).solve(graph, costs,
                                                  budget=SearchBudget.seconds(0.5))
        assert result.plan.covers(graph)
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, graph, costs, Objective.LONGEST_LINK)
        )

    def test_trace_monotone(self, problem):
        graph, costs = problem
        result = SimulatedAnnealing(seed=3).solve(graph, costs,
                                                  budget=SearchBudget.seconds(0.3))
        trace_costs = [cost for _, cost in result.trace]
        assert trace_costs == sorted(trace_costs, reverse=True)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealing(initial_temperature=0.0)

    def test_improves_over_initial(self, problem):
        graph, costs = problem
        initial = RandomSearch(num_samples=1, seed=8).solve(graph, costs)
        result = SimulatedAnnealing(seed=1).solve(
            graph, costs, budget=SearchBudget.seconds(0.5), initial_plan=initial.plan
        )
        assert result.cost <= initial.cost


class TestTargetCost:
    """SearchBudget.target_cost support, the warm re-solve early exit."""

    def test_stops_once_target_reached(self, problem):
        graph, costs = problem
        unbounded = SwapLocalSearch(seed=6, restarts=1).solve(
            graph, costs, budget=SearchBudget(max_iterations=2000))
        target = unbounded.cost * 1.05  # a cost the descent passes through
        bounded = SwapLocalSearch(seed=6, restarts=1).solve(
            graph, costs,
            budget=SearchBudget(max_iterations=2000, target_cost=target))
        assert bounded.cost <= target
        assert bounded.iterations < unbounded.iterations

    def test_warm_start_meeting_target_returns_immediately(self, problem):
        graph, costs = problem
        incumbent = SwapLocalSearch(seed=7, restarts=1).solve(
            graph, costs, budget=SearchBudget(max_iterations=2000))
        warm = SwapLocalSearch(seed=7, restarts=3).solve(
            graph, costs,
            budget=SearchBudget(max_iterations=2000,
                                target_cost=incumbent.cost),
            initial_plan=incumbent.plan)
        assert warm.iterations == 0
        assert warm.cost == incumbent.cost

    def test_no_target_keeps_historical_iteration_counts(self, problem):
        graph, costs = problem
        budget = SearchBudget(max_iterations=500)
        first = SwapLocalSearch(seed=8).solve(graph, costs, budget=budget)
        second = SwapLocalSearch(seed=8).solve(graph, costs, budget=budget)
        assert first.iterations == second.iterations == 500
        assert first.cost == second.cost
        assert first.plan.as_dict() == second.plan.as_dict()

    def test_declares_warm_start_capability(self):
        assert SwapLocalSearch.supports_warm_start
        assert SimulatedAnnealing.supports_warm_start
