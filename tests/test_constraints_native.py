"""Native constraint-aware solving, end to end.

PR 3 enforced :class:`~repro.core.problem.PlacementConstraints` by a
post-hoc swap/relocate repair in the solver base class; the constraints are
now lowered into the compiled engine and every solver searches only the
allowed region.  This suite pins that contract:

* the compiled constraint view (allowed mask, allowed-index arrays, forced
  assignments, feasible samplers) agrees with the id-keyed constraints;
* every registry solver returns a feasible plan on a constrained problem
  with ``repair_applied=False`` — natively, not via the repair — while the
  exact solvers' ``use_engine=False`` reference paths still repair;
* native constrained results are never worse than the PR 3 repair-based
  pipeline (solve unconstrained, then repair) for the deterministic and
  exact solvers;
* the advisor session reports the repair telemetry, and a constrained CLI
  ``solve`` / ``solve-batch`` round-trip stays bit-identical to the
  in-process API.
"""

import json

import numpy as np
import pytest

from repro.api import AdvisorSession, SolveRequest, SolverResponse
from repro.cli import main
from repro.core import (
    DeploymentProblem,
    Objective,
    PlacementConstraints,
)
from repro.core.errors import InvalidDeploymentError
from repro.solvers import (
    CPLongestLinkSolver,
    MIPLongestLinkSolver,
    PortfolioSolver,
    SearchBudget,
    SimulatedAnnealing,
    best_constrained_random_plan,
)
from repro.solvers.registry import default_registry

from conftest import deterministic_cost_matrix

CONSTRAINTS = dict(pinned={0: 7, 4: 2}, forbidden={1: {0, 1, 3}, 8: {5, 6}})


@pytest.fixture
def link_problem(mesh_graph):
    costs = deterministic_cost_matrix(12, seed=5)
    return DeploymentProblem(
        mesh_graph, costs,
        constraints=PlacementConstraints(**CONSTRAINTS),
    )


@pytest.fixture
def path_problem(tree_graph):
    costs = deterministic_cost_matrix(9, seed=5)
    return DeploymentProblem(
        tree_graph, costs, objective=Objective.LONGEST_PATH,
        constraints=PlacementConstraints(pinned={0: 5}, forbidden={1: {0, 1}}),
    )


class TestCompiledConstraints:
    def test_mask_semantics(self, link_problem):
        view = link_problem.compiled_constraints()
        engine = link_problem.compiled()
        mask = view.allowed_mask
        # Pinned rows are one-hot on the pin.
        assert mask[engine.node_idx(0)].sum() == 1
        assert mask[engine.node_idx(0), engine.instance_idx(7)]
        # Pinned columns are closed to every other node.
        column = mask[:, engine.instance_idx(7)]
        assert column.sum() == 1
        # Forbidden pairs are cleared, everything else open.
        assert not mask[engine.node_idx(1), engine.instance_idx(0)]
        assert mask[engine.node_idx(1), engine.instance_idx(4)]
        # Forced assignments name exactly the two pins here.
        forced = np.flatnonzero(view.forced_assignment >= 0)
        assert {engine.node_ids[i] for i in forced} == {0, 4}

    def test_mask_agrees_with_allows(self, link_problem):
        view = link_problem.compiled_constraints()
        engine = link_problem.compiled()
        constraints = link_problem.constraints
        for node in engine.node_ids:
            for instance in engine.instance_ids:
                expected = constraints.allows(node, instance)
                # The mask additionally closes pinned columns for other
                # nodes — a strictly tighter (still correct) restriction.
                got = view.allows(engine.node_idx(node),
                                  engine.instance_idx(instance))
                if got:
                    assert expected
                elif expected:
                    assert instance in constraints.pinned.values()

    def test_view_is_cached_per_problem(self, link_problem):
        assert link_problem.compiled_constraints() is \
            link_problem.compiled_constraints()

    def test_unconstrained_problem_has_no_view(self, mesh_graph):
        problem = DeploymentProblem(mesh_graph, deterministic_cost_matrix(12))
        assert problem.compiled_constraints() is None

    def test_random_assignments_feasible_and_injective(self, link_problem):
        view = link_problem.compiled_constraints()
        assignments = view.random_assignments(64, rng=3)
        for assignment in assignments:
            assert view.satisfied(assignment)
            assert len(set(assignment.tolist())) == assignment.size

    def test_matching_assignment_feasible(self, link_problem):
        view = link_problem.compiled_constraints()
        assignment = view.matching_assignment(rng=1)
        assert view.satisfied(assignment)
        assert len(set(assignment.tolist())) == assignment.size

    def test_sampler_survives_tight_constraints(self, mesh_graph):
        # Three nodes squeezed onto exactly three instances: greedy
        # placement can dead-end, the matching fallback may not.
        costs = deterministic_cost_matrix(12)
        tight = set(costs.instance_ids) - {4, 5, 6}
        problem = DeploymentProblem(
            mesh_graph, costs,
            constraints=PlacementConstraints(
                forbidden={n: tight for n in (1, 2, 3)}),
        )
        view = problem.compiled_constraints()
        for assignment in view.random_assignments(32, rng=0):
            assert view.satisfied(assignment)

    def test_masked_lower_bound_at_least_unmasked(self, link_problem):
        engine = link_problem.compiled()
        mask = link_problem.compiled_constraints().allowed_mask
        assert engine.longest_link_lower_bound(mask) >= \
            engine.longest_link_lower_bound()

    def test_best_constrained_random_plan_is_feasible(self, link_problem):
        plan, cost = best_constrained_random_plan(link_problem, 10, rng=2)
        assert link_problem.constraints.satisfied_by(plan)
        assert cost == pytest.approx(link_problem.evaluate(plan))

    def test_delta_evaluator_rejects_disallowed_moves(self, link_problem):
        engine = link_problem.compiled()
        view = link_problem.compiled_constraints()
        assignment = view.random_assignment(rng=0)
        evaluator = engine.delta_evaluator(assignment, Objective.LONGEST_LINK,
                                           allowed_mask=view.allowed_mask)
        pinned_node = engine.node_idx(0)
        other = next(i for i in range(engine.num_nodes) if i != pinned_node)
        assert not evaluator.swap_allowed(pinned_node, other)
        with pytest.raises(InvalidDeploymentError):
            evaluator.swap_cost(pinned_node, other)
        # Free-instance filtering: node 1 may not move onto instances 0/1/3.
        free = evaluator.free_instance_indices(engine.node_idx(1))
        banned = {engine.instance_idx(i) for i in (0, 1, 3)}
        assert not banned & set(free.tolist())


class TestEverySolverIsNative:
    """Acceptance criterion: all registry solvers solve constrained
    problems feasibly with ``repair_applied=False``."""

    @pytest.mark.parametrize("key", default_registry.available())
    def test_feasible_without_repair(self, key, link_problem, path_problem):
        spec = default_registry.spec(key)
        assert spec.supports_constraints, f"{key} lost native support"
        problem = (link_problem
                   if spec.supports(Objective.LONGEST_LINK) else path_problem)
        solver = default_registry.make(
            key, **default_registry.seeded_config(key, 3))
        budget = SearchBudget(time_limit_s=10.0, max_iterations=2000)
        result = solver.solve(problem, budget=budget)
        assert problem.constraints.violations(result.plan) == []
        assert result.repair_applied is False
        assert result.cost == pytest.approx(problem.evaluate(result.plan))

    def test_registry_filters_on_capability(self, link_problem):
        native = default_registry.supporting(Objective.LONGEST_LINK,
                                             constrained=True)
        assert "cp" in native and "greedy" in native
        assert set(default_registry.for_problem(link_problem)) <= set(native)

        class LegacySolver(CPLongestLinkSolver):
            supports_constraints = False

        from repro.solvers.registry import SolverRegistry

        registry = SolverRegistry()
        spec = registry.register("legacy-cp", LegacySolver,
                                 summary="repair-based test solver")
        assert not spec.supports_constraints
        assert "legacy-cp" not in registry.supporting(
            Objective.LONGEST_LINK, constrained=True)
        assert "legacy-cp" in registry.supporting(Objective.LONGEST_LINK)

    def test_portfolio_propagates_member_repair(self, link_problem):
        # A legacy (non-native) member's plan is repaired by the base
        # class; the portfolio must report that honestly instead of
        # defaulting to "native".
        portfolio = PortfolioSolver(
            solvers=[CPLongestLinkSolver(seed=0, use_engine=False)])
        result = portfolio.solve(link_problem,
                                 budget=SearchBudget.seconds(10))
        assert link_problem.constraints.violations(result.plan) == []
        assert result.repair_applied is True

    def test_annealing_terminates_when_every_node_pinned(self, mesh_graph):
        # With no admissible move at all the walk must stop on its
        # no-move streak, not spin through the whole wall-clock budget.
        costs = deterministic_cost_matrix(12)
        problem = DeploymentProblem(
            mesh_graph, costs,
            constraints=PlacementConstraints(
                pinned={node: node for node in mesh_graph.nodes}),
        )
        result = SimulatedAnnealing(seed=0).solve(
            problem, budget=SearchBudget.seconds(30))
        assert result.solve_time_s < 5.0
        assert problem.constraints.violations(result.plan) == []

    def test_compiled_constraints_does_not_freeze_caller_mask(
            self, link_problem):
        from repro.core import CompiledConstraints

        engine = link_problem.compiled()
        mask = np.ones((engine.num_nodes, engine.num_instances), dtype=bool)
        CompiledConstraints(engine, mask)
        mask[0, 0] = False  # caller's array must stay writable

    def test_single_node_problems_do_not_crash(self):
        # Regression: the swap sampler needs a population of two; 1-node
        # problems must stall out gracefully on both move-proposal paths.
        from repro.core import CommunicationGraph
        from repro.solvers import SwapLocalSearch

        graph = CommunicationGraph([0], [])
        costs = deterministic_cost_matrix(3)
        budget = SearchBudget(max_iterations=50)
        for problem in (
            DeploymentProblem(graph, costs),
            DeploymentProblem(graph, costs,
                              constraints=PlacementConstraints(
                                  forbidden={0: {1}})),
        ):
            for solver in (SwapLocalSearch(seed=0),
                           SimulatedAnnealing(seed=0)):
                result = solver.solve(problem, budget=budget)
                assert result.plan.covers(graph)
                if problem.constraints is not None:
                    assert problem.constraints.violations(result.plan) == []

    def test_oracle_paths_still_repair(self, link_problem):
        for solver in (CPLongestLinkSolver(seed=0, use_engine=False),
                       MIPLongestLinkSolver(seed=0, use_engine=False)):
            result = solver.solve(link_problem,
                                  budget=SearchBudget.seconds(10))
            assert link_problem.constraints.violations(result.plan) == []
            # The search itself is constraint-blind on this path, so for
            # this instance the repair must have fired.
            assert result.repair_applied is True


class TestNativeNeverWorseThanRepair:
    """Searching the feasible region beats searching blind + repairing."""

    def _repair_baseline(self, problem, solver):
        unconstrained = DeploymentProblem(problem.graph, problem.costs,
                                          objective=problem.objective)
        result = solver.solve(unconstrained, budget=SearchBudget.seconds(10))
        plan = problem.constraints.repair(result.plan,
                                          problem.costs.instance_ids)
        return problem.evaluate(plan)

    @pytest.mark.parametrize("key,config", [
        ("greedy", {}),
        ("g1", {}),
        ("cp", {"seed": 0, "k_clusters": None}),
        ("mip-ll", {"seed": 0}),
        ("local-search", {"seed": 0}),
    ])
    def test_not_worse(self, key, config, link_problem):
        native = default_registry.make(key, **config).solve(
            link_problem, budget=SearchBudget.seconds(10))
        baseline = self._repair_baseline(
            link_problem, default_registry.make(key, **config))
        assert native.cost <= baseline + 1e-9

    def test_cp_proves_constrained_optimum(self, link_problem):
        result = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            link_problem, budget=SearchBudget.seconds(20))
        assert result.optimal
        # Exhaustive check on the feasible region: no feasible plan beats it.
        view = link_problem.compiled_constraints()
        best = min(
            link_problem.compiled().evaluate_batch(
                view.random_assignments(200, rng=1), Objective.LONGEST_LINK)
        )
        assert result.cost <= best + 1e-9


class TestTelemetry:
    def test_session_reports_native_solve(self, link_problem):
        response = AdvisorSession().solve(SolveRequest(
            link_problem, solver="greedy"))
        assert response.ok
        assert response.telemetry.repair_applied is False
        assert "repair_applied" in response.telemetry.to_dict()

    def test_session_reports_repair_fallback(self, link_problem):
        response = AdvisorSession().solve(SolveRequest(
            link_problem, solver="cp",
            config={"seed": 0, "use_engine": False},
            budget=SearchBudget.seconds(10),
        ))
        assert response.ok
        assert response.telemetry.repair_applied is True

    def test_telemetry_round_trips(self, link_problem):
        response = AdvisorSession().solve(SolveRequest(
            link_problem, solver="greedy"))
        restored = SolverResponse.from_dict(
            json.loads(json.dumps(response.to_dict())))
        assert restored.telemetry.repair_applied is False
        assert restored.result.repair_applied is False


class TestConstrainedCliRoundTrip:
    @pytest.fixture
    def problem_path(self, tmp_path, link_problem):
        path = tmp_path / "constrained.json"
        path.write_text(json.dumps(link_problem.to_dict()))
        return path

    def test_solve_bit_identical_to_api(self, problem_path, tmp_path, capsys):
        out = tmp_path / "response.json"
        assert main([
            "solve", "--problem", str(problem_path), "--solver", "cp",
            "--seed", "7", "--time-limit", "5", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        cli_response = SolverResponse.from_dict(json.loads(out.read_text()))

        problem = DeploymentProblem.from_dict(
            json.loads(problem_path.read_text()))
        in_process = AdvisorSession().solve(SolveRequest(
            problem, solver="cp", config={"seed": 7},
            budget=SearchBudget.seconds(5),
        ))
        assert cli_response.plan == in_process.plan
        assert cli_response.cost == in_process.cost
        assert cli_response.telemetry.repair_applied is False
        assert problem.constraints.violations(cli_response.plan) == []

    def test_solve_batch_bit_identical_to_api(self, problem_path, tmp_path,
                                              capsys):
        out = tmp_path / "responses.json"
        assert main([
            "solve-batch", "--problem", str(problem_path),
            "--solver", "greedy", "--time-limit", "5", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        cli_response = SolverResponse.from_dict(payload["responses"][0])

        problem = DeploymentProblem.from_dict(
            json.loads(problem_path.read_text()))
        in_process = AdvisorSession().solve(SolveRequest(
            problem, solver="greedy", budget=SearchBudget.seconds(5)))
        assert cli_response.plan == in_process.plan
        assert cli_response.cost == in_process.cost
        assert cli_response.telemetry.repair_applied is False
