"""Tests for the greedy deployment algorithms G1 and G2."""

import numpy as np
import pytest

from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentPlan,
    DeploymentProblem,
    Objective,
    PlacementConstraints,
)
from repro.core.objectives import deployment_cost, longest_link_cost
from repro.solvers import GreedyG1, GreedyG2, RandomSearch

from conftest import deterministic_cost_matrix


@pytest.fixture
def clustered_costs():
    """Cost matrix with a clearly cheap subset of instances.

    Instances 0..8 form a 'good rack' with cheap pairwise links; instances
    9..13 are far away.  A sensible greedy algorithm should confine a 9-node
    graph to the cheap subset.
    """
    n = 14
    matrix = np.full((n, n), 5.0)
    cheap = range(9)
    for a in cheap:
        for b in cheap:
            matrix[a, b] = 0.5
    rng = np.random.default_rng(0)
    matrix += rng.uniform(0.0, 0.05, size=(n, n))
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    return CostMatrix(list(range(n)), matrix)


class TestGreedyG1:
    def test_produces_valid_plan(self, mesh_graph):
        costs = deterministic_cost_matrix(11, seed=1)
        result = GreedyG1().solve(mesh_graph, costs)
        assert result.plan.covers(mesh_graph)
        assert result.cost == pytest.approx(
            longest_link_cost(result.plan, mesh_graph, costs)
        )

    def test_avoids_expensive_cluster(self, mesh_graph, clustered_costs):
        result = GreedyG1().solve(mesh_graph, clustered_costs)
        # G1 should keep the whole mesh inside the cheap subset.
        assert set(result.plan.used_instances()) <= set(range(9))
        assert result.cost < 1.0

    def test_handles_disconnected_graph(self):
        graph = CommunicationGraph([0, 1, 2, 3], [(0, 1), (1, 0), (2, 3), (3, 2)])
        costs = deterministic_cost_matrix(6, seed=2)
        result = GreedyG1().solve(graph, costs)
        assert result.plan.covers(graph)

    def test_handles_isolated_nodes(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 0)])
        costs = deterministic_cost_matrix(5, seed=3)
        result = GreedyG1().solve(graph, costs)
        assert result.plan.covers(graph)

    def test_single_edge_graph_picks_cheapest_link(self):
        graph = CommunicationGraph([0, 1], [(0, 1), (1, 0)])
        costs = deterministic_cost_matrix(6, seed=4)
        result = GreedyG1().solve(graph, costs)
        cheapest = min(
            max(costs.cost(a, b), costs.cost(b, a))
            for a in costs.instance_ids for b in costs.instance_ids if a != b
        )
        assert result.cost == pytest.approx(cheapest, rel=0.5)


class TestGreedyG2:
    def test_produces_valid_plan(self, mesh_graph):
        costs = deterministic_cost_matrix(11, seed=1)
        result = GreedyG2().solve(mesh_graph, costs)
        assert result.plan.covers(mesh_graph)
        assert result.cost == pytest.approx(
            longest_link_cost(result.plan, mesh_graph, costs)
        )

    def test_not_worse_than_g1_on_average(self, mesh_graph):
        """G2 accounts for implicit links, so on average it beats G1 (Fig. 14)."""
        g1_costs, g2_costs = [], []
        for seed in range(8):
            costs = deterministic_cost_matrix(12, seed=seed)
            g1_costs.append(GreedyG1().solve(mesh_graph, costs).cost)
            g2_costs.append(GreedyG2().solve(mesh_graph, costs).cost)
        assert np.mean(g2_costs) <= np.mean(g1_costs)

    def test_avoids_expensive_cluster(self, mesh_graph, clustered_costs):
        result = GreedyG2().solve(mesh_graph, clustered_costs)
        assert set(result.plan.used_instances()) <= set(range(9))

    def test_longest_path_heuristic_use(self):
        """Sect. 4.5.2: the greedy LL construction is reused for LPNDP."""
        tree = CommunicationGraph.aggregation_tree(2, 2)
        costs = deterministic_cost_matrix(9, seed=6)
        result = GreedyG2().solve(tree, costs, objective=Objective.LONGEST_PATH)
        assert result.plan.covers(tree)
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, tree, costs, Objective.LONGEST_PATH)
        )

    def test_comparable_to_random_baseline(self, mesh_graph):
        """G2 should be in the same ballpark as a 1000-plan random search."""
        wins = 0
        for seed in range(5):
            costs = deterministic_cost_matrix(12, seed=10 + seed)
            g2 = GreedyG2().solve(mesh_graph, costs).cost
            r1 = RandomSearch(num_samples=1000, seed=seed).solve(mesh_graph, costs).cost
            if g2 <= r1 * 1.5:
                wins += 1
        assert wins >= 3


class TestGreedyWarmStart:
    """Warm-start semantics: the incumbent cost is an upper bound on the
    result — a drift re-solve through greedy never regresses past the plan
    already deployed."""

    def test_better_incumbent_is_returned(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=40)
        problem = DeploymentProblem(mesh_graph, costs)
        for solver_class in (GreedyG1, GreedyG2):
            cold = solver_class().solve(problem)
            # A long random search usually beats greedy; if not, nudge the
            # assertion by using whichever plan is strictly better.
            other = RandomSearch(num_samples=2000, seed=41).solve(problem)
            better, worse = sorted((cold, other), key=lambda r: r.cost)
            if better.cost == worse.cost:
                continue
            warm = solver_class().solve(problem, initial_plan=better.plan)
            assert warm.cost == better.cost
            assert warm.plan.as_dict() == better.plan.as_dict()

    def test_worse_incumbent_does_not_change_the_construction(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=42)
        problem = DeploymentProblem(mesh_graph, costs)
        for solver_class in (GreedyG1, GreedyG2):
            cold = solver_class().solve(problem)
            worse = CostMatrix(list(costs.instance_ids), costs.as_array())
            bad_plan = DeploymentPlan({
                node: instance for node, instance in zip(
                    mesh_graph.nodes, worse.instance_ids[::-1])
            })
            bad_cost = problem.evaluate(bad_plan)
            if bad_cost <= cold.cost:
                continue
            warm = solver_class().solve(problem, initial_plan=bad_plan)
            assert warm.cost == cold.cost
            assert warm.plan.as_dict() == cold.plan.as_dict()

    def test_violating_incumbent_is_repaired_before_bounding(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=43)
        constraints = PlacementConstraints(pinned={mesh_graph.nodes[0]: 5})
        problem = DeploymentProblem(mesh_graph, costs,
                                    constraints=constraints)
        violating = DeploymentPlan({
            node: instance for node, instance in zip(
                mesh_graph.nodes, costs.instance_ids)
        })
        assert not constraints.satisfied_by(violating)
        for solver_class in (GreedyG1, GreedyG2):
            result = solver_class().solve(problem, initial_plan=violating)
            problem.check_plan(result.plan)
            assert not result.repair_applied

    def test_declares_warm_start_capability(self):
        assert GreedyG1.supports_warm_start
        assert GreedyG2.supports_warm_start
