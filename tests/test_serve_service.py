"""The advisor service end to end: the app submit path (store
short-circuit, coalescing, back-pressure, drain) and the real HTTP
transport on a loopback socket."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import SolveRequest, WatchPolicy
from repro.core import CommunicationGraph, DeploymentProblem
from repro.serve import (
    PRIORITY_INTERACTIVE,
    ServeConfig,
    create_app,
    create_server,
)
from repro.solvers import SearchBudget
from repro.store import SQLiteResultCache
from repro.testing import deterministic_cost_matrix


def make_problem(seed=0):
    return DeploymentProblem(CommunicationGraph.ring(5),
                             deterministic_cost_matrix(7, seed=seed))


def make_request(seed=0, solver="local-search", **kwargs):
    kwargs.setdefault("config", {"seed": 3})
    kwargs.setdefault("budget", SearchBudget(max_iterations=200))
    return SolveRequest(problem=make_problem(seed), solver=solver, **kwargs)


def solve_body(seed=0, **extra):
    body = make_request(seed).to_dict()
    body.update(extra)
    return body


def quick_config(**overrides):
    base = dict(workers=1, request_timeout_s=20.0)
    base.update(overrides)
    return ServeConfig(**base)


@pytest.fixture
def app(tmp_path):
    instance = create_app(store=tmp_path / "serve.db",
                          config=quick_config())
    yield instance
    instance.close(timeout=5.0)


class TestSubmitPath:
    def test_concurrent_identical_requests_solve_exactly_once(self,
                                                              tmp_path):
        # The acceptance criterion, made deterministic: stage both
        # submissions while no worker is running, then start the pool.
        app = create_app(store=tmp_path / "serve.db",
                         config=quick_config(), start_workers=False)
        try:
            first, source_a = app.submit_solve(
                make_request(), "public", PRIORITY_INTERACTIVE)
            second, source_b = app.submit_solve(
                make_request(), "public", PRIORITY_INTERACTIVE)
            assert source_a == "solver" and source_b == "coalesced"
            assert second is first
            app.start()
            assert first.wait(30.0)
            assert first.error is None
            assert app.metrics.solver_invocations == 1
            assert app.scheduler.stats.coalesced == 1
        finally:
            app.close(timeout=5.0)

    def test_repeat_after_restart_is_fully_store_served(self, tmp_path):
        path = tmp_path / "serve.db"
        first_app = create_app(store=path, config=quick_config())
        job, source = first_app.submit_solve(
            make_request(), "public", PRIORITY_INTERACTIVE)
        assert source == "solver" and job.wait(30.0)
        solved_cost = job.response.result.cost
        first_app.close(timeout=5.0)

        restarted = create_app(store=path, config=quick_config())
        try:
            job, source = restarted.submit_solve(
                make_request(), "public", PRIORITY_INTERACTIVE)
            # Served at submit time: already finished, never queued.
            assert source == "store"
            assert job.done.is_set()
            assert job.response.result.cost == solved_cost
            assert restarted.metrics.solver_invocations == 0
            assert restarted.metrics.store_hits == 1
        finally:
            restarted.close(timeout=5.0)

    def test_store_writeback_happens_once_for_coalesced_pair(self, app):
        job, _ = app.submit_solve(make_request(), "public",
                                  PRIORITY_INTERACTIVE)
        assert job.wait(30.0)
        assert app.store.stats.writes == 1

    def test_finished_jobs_are_retired_into_the_bounded_table(self,
                                                              tmp_path):
        # Worker-path jobs must leave the always-retained active set once
        # finished, or a long-lived server leaks one Job per request.
        app = create_app(store=tmp_path / "serve.db",
                         config=quick_config(max_finished_jobs=1))
        try:
            jobs = []
            for seed in (0, 1):
                job, _ = app.submit_solve(make_request(seed), "public",
                                          PRIORITY_INTERACTIVE)
                assert job.wait(30.0)
                jobs.append(job)
            # Retirement happens just after the waiters wake; poll briefly.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and len(app.jobs) > 1:
                time.sleep(0.01)
            assert len(app.jobs) == 1
            assert app.jobs.get(jobs[0].job_id) is None  # LRU-evicted
            assert app.jobs.get(jobs[1].job_id) is jobs[1]
        finally:
            app.close(timeout=5.0)

    def test_worker_survives_unexpected_exception(self, tmp_path):
        app = create_app(store=tmp_path / "serve.db", config=quick_config())
        try:
            original = app.session.solve_many

            def boom(requests):
                raise RuntimeError("boom")

            app.session.solve_many = boom
            job, _ = app.submit_solve(make_request(seed=0), "public",
                                      PRIORITY_INTERACTIVE)
            assert job.wait(30.0)
            assert job.status == "error" and "boom" in job.error
            # The (single) worker survived and serves the next job.
            app.session.solve_many = original
            job, _ = app.submit_solve(make_request(seed=1), "public",
                                      PRIORITY_INTERACTIVE)
            assert job.wait(30.0)
            assert job.error is None
        finally:
            app.close(timeout=5.0)

    def test_dirty_drain_leaves_store_open_for_stragglers(self, tmp_path):
        app = create_app(store=tmp_path / "serve.db",
                         config=quick_config(drain_timeout_s=0.05))
        release = threading.Event()
        original = app.session.solve_many

        def slow(requests):
            release.wait(10.0)
            return original(requests)

        app.session.solve_many = slow
        job, _ = app.submit_solve(make_request(), "public",
                                  PRIORITY_INTERACTIVE)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and job.status != "running":
            time.sleep(0.01)
        assert job.status == "running"
        app.close(timeout=0.05)  # dirty: the worker is mid-solve
        # The store connection survived for the straggler's write-back.
        release.set()
        assert job.wait(30.0)
        assert job.error is None
        assert app.store.stats.writes == 1
        app.close(timeout=5.0)  # now clean: the store actually closes

    def test_without_store_every_distinct_request_solves(self):
        app = create_app(config=quick_config())
        try:
            for seed in (0, 1):
                job, source = app.submit_solve(
                    make_request(seed), "public", PRIORITY_INTERACTIVE)
                assert source == "solver" and job.wait(30.0)
            assert app.metrics.solver_invocations == 2
            assert app.metrics.store_hits == 0
        finally:
            app.close(timeout=5.0)


class TestAppDispatch:
    """Full request handling through ``AdvisorApp.handle`` (no socket)."""

    def test_sync_solve_roundtrip(self, app):
        status, payload = app.handle(
            "POST", "/v1/solve",
            body=json.dumps(solve_body()).encode())
        assert status == 200
        assert payload["status"] == "done"
        assert payload["source"] == "solver"
        assert payload["response"]["status"] == "ok"
        assert payload["response"]["result"]["cost"] > 0

    def test_sync_repeat_served_from_store(self, app):
        body = json.dumps(solve_body()).encode()
        app.handle("POST", "/v1/solve", body=body)
        status, payload = app.handle("POST", "/v1/solve", body=body)
        assert status == 200
        assert payload["source"] == "store"
        assert app.metrics.solver_invocations == 1

    def test_async_solve_then_poll(self, app):
        status, payload = app.handle(
            "POST", "/v1/solve",
            body=json.dumps(solve_body(mode="async")).encode())
        assert status == 202
        poll = payload["poll"]
        assert poll == f"/v1/jobs/{payload['job_id']}"
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, payload = app.handle("GET", poll)
            assert status == 200
            if payload["status"] == "done":
                break
            time.sleep(0.05)
        assert payload["status"] == "done"
        assert payload["response"]["result"]["cost"] > 0

    def test_polled_async_job_records_served_once(self, app):
        status, payload = app.handle(
            "POST", "/v1/solve",
            body=json.dumps(solve_body(mode="async")).encode())
        assert status == 202
        poll = payload["poll"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, payload = app.handle("GET", poll)
            if payload["status"] == "done":
                break
            time.sleep(0.05)
        assert payload["status"] == "done"
        snapshot = app.metrics.to_dict()
        assert snapshot["served_by_source"] == {"solver": 1}
        assert snapshot["latency"]["count"] == 1
        app.handle("GET", poll)  # a repeat poll must not double-count
        assert app.metrics.to_dict()["latency"]["count"] == 1

    def test_batch_latency_is_per_item_not_batch_wide(self, app):
        # Pre-solve seed=0 so the batch's second item is store-served.
        app.handle("POST", "/v1/solve",
                   body=json.dumps(solve_body(seed=0)).encode())
        recorded = []
        original = app.metrics.record_served

        def capture(tenant, source, latency_s):
            recorded.append((source, latency_s))
            original(tenant, source, latency_s)

        app.metrics.record_served = capture
        body = {"requests": [
            solve_body(seed=1,
                       budget=SearchBudget(max_iterations=20000).to_dict()),
            solve_body(seed=0),
        ]}
        status, _ = app.handle("POST", "/v1/solve-batch",
                               body=json.dumps(body).encode())
        assert status == 200
        by_source = dict(recorded)
        # The store-served item reports its own (instant) latency; the
        # old shared batch clock would have charged it the first item's
        # whole solve time as well.
        assert by_source["store"] < by_source["solver"]

    def test_batch_solve(self, app):
        body = {
            "requests": [solve_body(seed=0), solve_body(seed=1)],
            "priority": "batch",
        }
        status, payload = app.handle(
            "POST", "/v1/solve-batch", body=json.dumps(body).encode())
        assert status == 200
        assert len(payload["items"]) == 2
        assert all(item["status"] == "done" for item in payload["items"])
        assert all(item["priority"] == "batch"
                   for item in payload["items"])

    def test_batch_rejects_bad_entry_but_keeps_good_ones(self, app):
        body = {"requests": [solve_body(seed=0), {"solver": "greedy"}]}
        status, payload = app.handle(
            "POST", "/v1/solve-batch", body=json.dumps(body).encode())
        assert status == 200
        first, second = payload["items"]
        assert first["status"] == "done"
        assert second["status"] == "rejected"
        assert second["http_status"] == 400

    def test_sync_timeout_returns_504_with_pollable_job(self, tmp_path):
        app = create_app(store=tmp_path / "serve.db",
                         config=quick_config(request_timeout_s=0.05),
                         start_workers=False)
        try:
            status, payload = app.handle(
                "POST", "/v1/solve",
                body=json.dumps(solve_body()).encode())
            assert status == 504
            assert payload["poll"] == f"/v1/jobs/{payload['job_id']}"
            status, job_payload = app.handle("GET", payload["poll"])
            assert status == 200
            assert job_payload["status"] == "queued"
        finally:
            app.close(timeout=5.0)

    def test_queue_bound_maps_to_429(self, tmp_path):
        app = create_app(store=tmp_path / "serve.db",
                         config=quick_config(max_queue=1),
                         start_workers=False)
        try:
            body = json.dumps(solve_body(seed=0, mode="async")).encode()
            status, _ = app.handle("POST", "/v1/solve", body=body)
            assert status == 202
            body = json.dumps(solve_body(seed=1, mode="async")).encode()
            status, payload = app.handle("POST", "/v1/solve", body=body)
            assert status == 429
            assert "full" in payload["error"]
        finally:
            app.close(timeout=5.0)

    def test_tenant_priority_and_error_validation(self, app):
        status, payload = app.handle(
            "POST", "/v1/solve",
            headers={"x-tenant": "team/alpha"},
            body=json.dumps(solve_body()).encode())
        assert status == 400 and "tenant" in payload["error"]
        status, payload = app.handle(
            "POST", "/v1/solve",
            body=json.dumps(solve_body(priority="urgent")).encode())
        assert status == 400 and "priority" in payload["error"]
        status, payload = app.handle(
            "POST", "/v1/solve",
            body=json.dumps(solve_body(solver="nope")).encode())
        assert status == 400
        status, payload = app.handle("POST", "/v1/solve", body=b"{oops")
        assert status == 400 and "JSON" in payload["error"]

    def test_tenant_header_lands_on_the_job(self, app):
        status, payload = app.handle(
            "POST", "/v1/solve", headers={"x-tenant": "acme"},
            body=json.dumps(solve_body()).encode())
        assert status == 200
        assert payload["tenant"] == "acme"

    def test_unknown_routes_and_methods(self, app):
        assert app.handle("GET", "/v1/nope")[0] == 404
        assert app.handle("DELETE", "/v1/solve")[0] == 405
        assert app.handle("GET", "/v1/jobs/job-missing-000001")[0] == 404

    def test_drain_flips_health_and_refuses_work(self, app):
        assert app.handle("GET", "/healthz")[0] == 200
        assert app.drain(timeout=5.0)
        status, payload = app.handle("GET", "/healthz")
        assert status == 503 and payload["status"] == "draining"
        status, _ = app.handle(
            "POST", "/v1/solve", body=json.dumps(solve_body()).encode())
        assert status == 503

    def test_metrics_snapshot_covers_every_layer(self, app):
        app.handle("POST", "/v1/solve",
                   body=json.dumps(solve_body()).encode())
        status, payload = app.handle("GET", "/metrics")
        assert status == 200
        assert payload["service"]["solver_invocations"] == 1
        assert payload["service"]["served_by_tenant"] == {"public": 1}
        assert payload["scheduler"]["dequeued"] == 1
        assert payload["session"]["requests"] >= 1
        assert "engine_cache" in payload["session"]
        assert payload["store"]["writes"] == 1
        assert payload["service"]["latency"]["count"] == 1

    def test_solvers_catalog_matches_registry(self, app):
        status, payload = app.handle("GET", "/v1/solvers")
        assert status == 200
        keys = {entry["key"] for entry in payload["solvers"]}
        assert {"cp", "mip", "greedy", "local-search"} <= keys
        sample = payload["solvers"][0]
        assert {"key", "summary", "objectives", "supports_warm_start",
                "config_fields"} <= set(sample)


class TestHistoryEndpoints:
    def _populate(self, app, runs=3):
        problem = make_problem()
        policy = WatchPolicy(solver="local-search", config={"seed": 3},
                             budget=SearchBudget(max_iterations=200))
        for _ in range(runs):
            app.session.watch(problem, [], policy)
        return problem

    def test_history_is_paginated_newest_first(self, app):
        self._populate(app, runs=3)
        status, payload = app.handle("GET", "/v1/history",
                                     query_string="limit=2")
        assert status == 200
        assert payload["total"] == 3
        assert len(payload["items"]) == 2
        assert payload["next_offset"] == 2
        run_ids = [item["run_id"] for item in payload["items"]]
        assert run_ids == sorted(run_ids, reverse=True)
        status, payload = app.handle("GET", "/v1/history",
                                     query_string="limit=2&offset=2")
        assert len(payload["items"]) == 1
        assert payload["next_offset"] is None

    def test_history_filters_by_root_fingerprint(self, app):
        problem = self._populate(app, runs=1)
        status, payload = app.handle(
            "GET", "/v1/history",
            query_string=f"root={problem.fingerprint()}")
        assert status == 200 and payload["total"] == 1
        status, payload = app.handle("GET", "/v1/history",
                                     query_string="root=deadbeef")
        assert payload["total"] == 0

    def test_history_run_detail_and_404(self, app):
        self._populate(app, runs=1)
        status, listing = app.handle("GET", "/v1/history")
        run_id = listing["items"][0]["run_id"]
        status, payload = app.handle("GET", f"/v1/history/{run_id}")
        assert status == 200
        assert payload["run_id"] == run_id
        assert payload["events"][0]["reason"] == "initial"
        assert app.handle("GET", "/v1/history/99999")[0] == 404

    def test_history_without_store_is_503(self):
        app = create_app(config=quick_config())
        try:
            status, payload = app.handle("GET", "/v1/history")
            assert status == 503
            assert "store" in payload["error"]
        finally:
            app.close(timeout=5.0)

    def test_bad_pagination_params_are_400(self, app):
        assert app.handle("GET", "/v1/history",
                          query_string="limit=0")[0] == 400
        assert app.handle("GET", "/v1/history",
                          query_string="offset=-1")[0] == 400
        assert app.handle("GET", "/v1/history",
                          query_string="limit=banana")[0] == 400


class TestHttpTransport:
    """The real socket path: ThreadingHTTPServer on a loopback port."""

    @pytest.fixture
    def service(self, tmp_path):
        app = create_app(store=tmp_path / "serve.db", config=quick_config())
        server = create_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        yield base, app
        server.shutdown()
        server.server_close()
        app.close(timeout=5.0)

    def _call(self, base, path, body=None, headers=None, method=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            base + path, data=data, headers=headers or {}, method=method)
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_health_solve_and_metrics_over_http(self, service):
        base, app = service
        status, payload = self._call(base, "/healthz")
        assert status == 200 and payload["status"] == "ok"

        status, payload = self._call(base, "/v1/solve", body=solve_body(),
                                     headers={"x-tenant": "edge"})
        assert status == 200
        assert payload["source"] == "solver"
        assert payload["tenant"] == "edge"
        cost = payload["response"]["result"]["cost"]

        # The identical request again: served from the durable store.
        status, payload = self._call(base, "/v1/solve", body=solve_body())
        assert status == 200
        assert payload["source"] == "store"
        assert payload["response"]["result"]["cost"] == cost

        status, payload = self._call(base, "/metrics")
        assert status == 200
        assert payload["service"]["solver_invocations"] == 1
        assert payload["service"]["store_hits"] == 1

    def test_concurrent_identical_posts_coalesce_over_http(self, service):
        base, app = service
        # A slow filler occupies the single worker, so both async posts
        # are still queued when the second arrives and must coalesce.
        filler = solve_body(seed=9, mode="async",
                            budget=SearchBudget(max_iterations=40000).to_dict())
        status, _ = self._call(base, "/v1/solve", body=filler)
        assert status == 202

        twin = solve_body(seed=1, mode="async")
        results = []

        def post():
            results.append(self._call(base, "/v1/solve", body=twin))

        threads = [threading.Thread(target=post) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert [status for status, _ in results] == [202, 202]
        job_ids = {payload["job_id"] for _, payload in results}
        assert len(job_ids) == 1  # one shared job for both posts
        sources = sorted(payload["source"] for _, payload in results)
        assert sources == ["coalesced", "solver"]

        poll = f"/v1/jobs/{job_ids.pop()}"
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, payload = self._call(base, poll)
            if payload["status"] == "done":
                break
            time.sleep(0.1)
        assert payload["status"] == "done"
        assert payload["attached"] == 2

    def test_http_error_paths(self, service):
        base, _ = service
        status, payload = self._call(base, "/v1/nope")
        assert status == 404
        status, payload = self._call(base, "/v1/solve", body={"bad": 1})
        assert status == 400
        status, payload = self._call(base, "/v1/solve", method="DELETE")
        assert status == 405


class TestServeCli:
    def test_cli_wires_store_and_config(self, tmp_path, monkeypatch):
        from repro import cli

        captured = {}

        def fake_serve(app, host, port, quiet=True, ready_message=None):
            captured["app"] = app
            captured["host"] = host
            captured["port"] = port
            captured["ready"] = ready_message
            app.close(timeout=5.0)
            return 0

        monkeypatch.setattr("repro.serve.serve_until_signal", fake_serve)
        code = cli.main([
            "serve", "--store", str(tmp_path / "cli.db"),
            "--workers", "3", "--port", "8123", "--queue-size", "7",
            "--tenant-weight", "gold=2.5",
        ])
        assert code == 0
        app = captured["app"]
        assert captured["port"] == 8123
        assert app.config.workers == 3
        assert app.config.max_queue == 7
        assert app.config.tenant_weights == {"gold": 2.5}
        assert isinstance(app.store, SQLiteResultCache)
        assert "8123" in captured["ready"]

    def test_cli_rejects_bad_tenant_weight(self, capsys):
        from repro import cli

        code = cli.main(["serve", "--tenant-weight", "goldtwo"])
        assert code == 2
        assert "tenant-weight" in capsys.readouterr().err
