"""Tests for the command-line interface."""

import pytest

from repro.cli import build_graph, build_parser, build_solver, main
from repro.core import Objective


class TestParserAndBuilders:
    def test_parser_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_rejects_unknown_provider(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--provider", "unknown-cloud"])

    def test_build_graph_templates(self):
        parser = build_parser()
        mesh = build_graph(parser.parse_args(["advise", "--template", "mesh",
                                              "--rows", "3", "--cols", "4"]))
        assert mesh.num_nodes == 12
        tree = build_graph(parser.parse_args(["advise", "--template", "tree",
                                              "--branching", "2", "--depth", "2"]))
        assert tree.num_nodes == 7
        bipartite = build_graph(parser.parse_args(["advise", "--template", "bipartite",
                                                   "--frontends", "2",
                                                   "--storage", "3"]))
        assert bipartite.num_nodes == 5
        ring = build_graph(parser.parse_args(["advise", "--template", "ring",
                                              "--nodes", "6"]))
        assert ring.num_nodes == 6
        cube = build_graph(parser.parse_args(["advise", "--template", "hypercube",
                                              "--dimension", "3"]))
        assert cube.num_nodes == 8

    def test_build_solver_names(self):
        assert build_solver("auto", Objective.LONGEST_LINK, 0) is None
        assert build_solver("cp", Objective.LONGEST_LINK, 0).name == "CP"
        assert build_solver("mip", Objective.LONGEST_PATH, 0).name == "MIP-LP"
        assert build_solver("greedy", Objective.LONGEST_LINK, 0).name == "G2"
        assert build_solver("random", Objective.LONGEST_LINK, 0).name == "R2"
        assert build_solver("portfolio", Objective.LONGEST_LINK, 0).name == "portfolio"
        with pytest.raises(SystemExit):
            build_solver("cplex", Objective.LONGEST_LINK, 0)


class TestCommands:
    def test_templates_command(self, capsys):
        assert main(["templates"]) == 0
        output = capsys.readouterr().out
        assert "mesh" in output and "bipartite" in output

    def test_providers_command(self, capsys):
        assert main(["providers", "--instances", "10", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ec2" in output and "rackspace" in output

    def test_measure_command(self, capsys):
        assert main(["measure", "--instances", "6", "--samples", "4",
                     "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "probes sent" in output
        assert "p90 / p10 spread" in output

    def test_advise_command_with_greedy_solver(self, capsys):
        exit_code = main([
            "advise", "--template", "mesh", "--rows", "3", "--cols", "3",
            "--solver", "greedy", "--samples", "4", "--time-limit", "1",
            "--show-plan", "--seed", "3",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ClouDiA recommendation" in output
        assert "deployment plan" in output
        assert "predicted improvement" in output

    def test_advise_command_longest_path_random_solver(self, capsys):
        exit_code = main([
            "advise", "--template", "tree", "--branching", "2", "--depth", "2",
            "--objective", "longest_path", "--solver", "random",
            "--samples", "4", "--time-limit", "1", "--seed", "4",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "longest_path" in output
