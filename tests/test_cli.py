"""Tests for the command-line interface."""

import json

import pytest

from repro.api import AdvisorSession, SolveRequest, SolverResponse
from repro.cli import build_graph, build_parser, build_solver, main
from repro.core import DeploymentProblem


class TestParserAndBuilders:
    def test_parser_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_rejects_unknown_provider(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--provider", "unknown-cloud"])

    def test_build_graph_templates(self):
        parser = build_parser()
        mesh = build_graph(parser.parse_args(["advise", "--template", "mesh",
                                              "--rows", "3", "--cols", "4"]))
        assert mesh.num_nodes == 12
        tree = build_graph(parser.parse_args(["advise", "--template", "tree",
                                              "--branching", "2", "--depth", "2"]))
        assert tree.num_nodes == 7
        bipartite = build_graph(parser.parse_args(["advise", "--template", "bipartite",
                                                   "--frontends", "2",
                                                   "--storage", "3"]))
        assert bipartite.num_nodes == 5
        ring = build_graph(parser.parse_args(["advise", "--template", "ring",
                                              "--nodes", "6"]))
        assert ring.num_nodes == 6
        cube = build_graph(parser.parse_args(["advise", "--template", "hypercube",
                                              "--dimension", "3"]))
        assert cube.num_nodes == 8

    def test_build_solver_names(self):
        assert build_solver("auto", 0) is None
        assert build_solver("cp", 0).name == "CP"
        assert build_solver("mip", 0).name == "MIP-LP"
        assert build_solver("greedy", 0).name == "G2"
        assert build_solver("random", 0).name == "R2"
        assert build_solver("portfolio", 0).name == "portfolio"
        with pytest.raises(SystemExit):
            build_solver("cplex", 0)


class TestCommands:
    def test_templates_command(self, capsys):
        assert main(["templates"]) == 0
        output = capsys.readouterr().out
        assert "mesh" in output and "bipartite" in output

    def test_providers_command(self, capsys):
        assert main(["providers", "--instances", "10", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ec2" in output and "rackspace" in output

    def test_measure_command(self, capsys):
        assert main(["measure", "--instances", "6", "--samples", "4",
                     "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "probes sent" in output
        assert "p90 / p10 spread" in output

    def test_advise_command_with_greedy_solver(self, capsys):
        exit_code = main([
            "advise", "--template", "mesh", "--rows", "3", "--cols", "3",
            "--solver", "greedy", "--samples", "4", "--time-limit", "1",
            "--show-plan", "--seed", "3",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ClouDiA recommendation" in output
        assert "deployment plan" in output
        assert "predicted improvement" in output

    def test_advise_command_longest_path_random_solver(self, capsys):
        exit_code = main([
            "advise", "--template", "tree", "--branching", "2", "--depth", "2",
            "--objective", "longest_path", "--solver", "random",
            "--samples", "4", "--time-limit", "1", "--seed", "4",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "longest_path" in output

    def test_solvers_command_lists_registry(self, capsys):
        assert main(["solvers"]) == 0
        output = capsys.readouterr().out
        for key in ("cp", "mip", "greedy", "portfolio"):
            assert key in output

    def test_solvers_json_is_machine_readable(self, capsys):
        assert main(["solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = {entry["key"]: entry for entry in payload["solvers"]}
        assert {"cp", "mip", "greedy", "portfolio"} <= set(entries)
        greedy = entries["greedy"]
        assert {"key", "summary", "objectives", "max_nodes",
                "supports_constraints", "supports_warm_start",
                "config_fields"} <= set(greedy)
        assert isinstance(greedy["objectives"], list)
        assert isinstance(greedy["config_fields"], list)


class TestJsonWorkflow:
    """The serialized problem -> solve -> response pipeline."""

    @pytest.fixture
    def problem_path(self, tmp_path):
        path = tmp_path / "problem.json"
        exit_code = main([
            "make-problem", "--template", "mesh", "--rows", "3", "--cols", "3",
            "--seed", "0", "--samples", "4", "--out", str(path),
        ])
        assert exit_code == 0
        return path

    def test_make_problem_writes_valid_problem(self, problem_path):
        problem = DeploymentProblem.from_dict(
            json.loads(problem_path.read_text()))
        assert problem.num_nodes == 9
        assert problem.num_instances == 10
        assert problem.metadata["template"] == "mesh"
        assert problem.metadata["provider"] == "ec2"

    def test_solve_writes_valid_response(self, problem_path, tmp_path, capsys):
        out = tmp_path / "response.json"
        exit_code = main([
            "solve", "--problem", str(problem_path), "--solver", "greedy",
            "--seed", "0", "--time-limit", "1", "--out", str(out),
        ])
        assert exit_code == 0
        response = SolverResponse.from_dict(json.loads(out.read_text()))
        assert response.ok
        assert response.solver == "greedy"
        problem = DeploymentProblem.from_dict(
            json.loads(problem_path.read_text()))
        assert response.plan.covers(problem.graph)
        assert "solver response" in capsys.readouterr().out

    def test_cli_solve_bit_identical_to_in_process_api(
            self, problem_path, tmp_path, capsys):
        """Acceptance criterion: solving a serialized problem through the
        CLI yields a plan and cost bit-identical to the in-process API on
        the same solver and seed."""
        out = tmp_path / "response.json"
        assert main([
            "solve", "--problem", str(problem_path), "--solver", "cp",
            "--seed", "7", "--time-limit", "2", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        cli_response = SolverResponse.from_dict(json.loads(out.read_text()))

        problem = DeploymentProblem.from_dict(
            json.loads(problem_path.read_text()))
        from repro.solvers import SearchBudget
        in_process = AdvisorSession().solve(SolveRequest(
            problem, solver="cp", config={"seed": 7},
            budget=SearchBudget.seconds(2),
        ))
        assert cli_response.plan == in_process.plan
        assert cli_response.cost == in_process.cost

    def test_solve_batch_requests_file(self, problem_path, tmp_path, capsys):
        problem_payload = json.loads(problem_path.read_text())
        requests = {
            "requests": [
                {"problem": problem_payload, "solver": "greedy",
                 "request_id": "a"},
                {"problem": problem_payload, "solver": "r1",
                 "config": {"num_samples": 50, "seed": 1},
                 "request_id": "b"},
            ],
        }
        requests_path = tmp_path / "batch.json"
        requests_path.write_text(json.dumps(requests))
        out = tmp_path / "responses.json"
        exit_code = main([
            "solve-batch", "--requests", str(requests_path),
            "--out", str(out),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "hit rate" in output
        payload = json.loads(out.read_text())
        responses = [SolverResponse.from_dict(entry)
                     for entry in payload["responses"]]
        assert [r.request_id for r in responses] == ["a", "b"]
        assert all(r.ok for r in responses)
        # Both requests describe the same instance: the second must have
        # reused the first's compilation.
        assert not responses[0].telemetry.compile_cache_hit
        assert responses[1].telemetry.compile_cache_hit

    def test_solve_batch_repeated_problem_flags(self, problem_path, tmp_path,
                                                capsys):
        out = tmp_path / "responses.json"
        exit_code = main([
            "solve-batch", "--problem", str(problem_path),
            "--problem", str(problem_path), "--solver", "greedy",
            "--out", str(out),
        ])
        assert exit_code == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert len(payload["responses"]) == 2

    def test_solve_batch_without_input_exits(self, capsys):
        assert main(["solve-batch"]) == 2
        assert "error" in capsys.readouterr().err

    def test_solver_config_honoured_for_auto(self, problem_path, tmp_path,
                                             capsys):
        """--solver-config must reach the resolved solver even when
        --solver is left at its default 'auto'."""
        out = tmp_path / "response.json"
        exit_code = main([
            "solve", "--problem", str(problem_path), "--seed", "0",
            "--time-limit", "1", "--solver-config", '{"bogus_field": 1}',
            "--out", str(out),
        ])
        # The config is not dropped: the resolved CP solver rejects the
        # unknown field and the CLI reports the solver failure (exit 1).
        assert exit_code == 1
        assert "bogus_field" in capsys.readouterr().err

    def test_solve_batch_seed_reaches_auto_solver(self, problem_path,
                                                  tmp_path, capsys):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main([
                "solve-batch", "--problem", str(problem_path),
                "--seed", "7", "--out", str(out),
            ]) == 0
            outs.append(json.loads(out.read_text())["responses"][0])
        capsys.readouterr()
        a, b = (SolverResponse.from_dict(entry) for entry in outs)
        assert a.solver == "cp"  # auto resolved to the paper default
        assert a.plan == b.plan  # the seed made the run reproducible
        assert a.cost == b.cost

    def test_solve_accepts_plain_random_key(self, problem_path, tmp_path,
                                            capsys):
        """'random' on solve/solve-batch is the registered solver, not the
        advise-only 'r2' alias, so its own config fields work."""
        out = tmp_path / "response.json"
        exit_code = main([
            "solve", "--problem", str(problem_path), "--solver", "random",
            "--seed", "2", "--solver-config", '{"num_samples": 40}',
            "--out", str(out),
        ])
        assert exit_code == 0
        capsys.readouterr()
        response = SolverResponse.from_dict(json.loads(out.read_text()))
        assert response.ok
        assert response.result.solver_name == "random"

    @pytest.mark.parametrize("payload", [
        {"request": []},          # typo for "requests"
        {"requests": "notalist"},
        ["notadict"],
    ], ids=["typo-key", "non-list", "non-dict-entry"])
    def test_malformed_requests_file_exits_cleanly(self, payload, tmp_path,
                                                   capsys):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(payload))
        exit_code = main(["solve-batch", "--requests", str(path)])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_non_object_problem_file_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "problem.json"
        path.write_text(json.dumps([1, 2, 3]))
        exit_code = main(["solve", "--problem", str(path)])
        assert exit_code == 2
        assert "JSON object" in capsys.readouterr().err

    def test_malformed_solver_config_exits_cleanly(self, problem_path,
                                                   capsys):
        exit_code = main([
            "solve", "--problem", str(problem_path),
            "--solver-config", "{not json",
        ])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_problem_file_exits_cleanly(self, tmp_path, capsys):
        exit_code = main([
            "solve", "--problem", str(tmp_path / "nope.json"),
        ])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_workers_value_exits_cleanly(self, problem_path, capsys):
        exit_code = main([
            "solve-batch", "--problem", str(problem_path), "--workers", "0",
        ])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_solve_error_exit_code(self, problem_path, tmp_path, capsys):
        # The serialized problem's objective is longest_link; the MIP
        # longest-path solver refuses it (objective-capability mismatch)
        # and the CLI must exit 1 (solver failure) with a clean message,
        # distinct from exit 2 (usage / IO errors).
        exit_code = main([
            "solve", "--problem", str(problem_path), "--solver", "mip",
        ])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_problem_payload_exit_code(self, problem_path, tmp_path,
                                               capsys):
        # A cyclic graph with the longest-path objective is rejected while
        # deserializing the problem (InvalidGraphError), which is a usage
        # error: exit 2.
        payload = json.loads(problem_path.read_text())
        payload["objective"] = "longest_path"  # mesh graphs are cyclic
        bad = tmp_path / "bad_problem.json"
        bad.write_text(json.dumps(payload))
        exit_code = main(["solve", "--problem", str(bad)])
        assert exit_code == 2
        assert "acyclic" in capsys.readouterr().err
