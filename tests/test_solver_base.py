"""Tests for the shared solver interfaces and helpers."""

import time

import pytest

from repro.core import CommunicationGraph, DeploymentProblem, Objective
from repro.core.errors import InfeasibleProblemError, SolverError
from repro.core.objectives import deployment_cost
from repro.solvers import GreedyG2, RandomSearch, SearchBudget
from repro.solvers.base import (
    ConvergenceTrace,
    SolverResult,
    Stopwatch,
    best_random_plan,
    default_plan,
    random_plans,
)

from conftest import deterministic_cost_matrix


class TestSearchBudget:
    def test_unlimited(self):
        budget = SearchBudget.unlimited()
        assert budget.time_limit_s is None
        assert budget.max_iterations is None

    def test_seconds_constructor(self):
        assert SearchBudget.seconds(2.5).time_limit_s == 2.5


class TestStopwatch:
    def test_elapsed_increases(self):
        watch = Stopwatch(SearchBudget.unlimited())
        first = watch.elapsed()
        second = watch.elapsed()
        assert second >= first >= 0.0

    def test_unlimited_never_expires(self):
        watch = Stopwatch(SearchBudget.unlimited())
        assert watch.remaining() is None
        assert not watch.expired()

    def test_tiny_budget_expires(self):
        watch = Stopwatch(SearchBudget.seconds(0.0))
        time.sleep(0.001)
        assert watch.expired()


class TestConvergenceTrace:
    def test_only_improvements_recorded(self):
        trace = ConvergenceTrace()
        trace.record(0.0, 5.0)
        trace.record(1.0, 6.0)  # not an improvement, dropped
        trace.record(2.0, 3.0)
        assert trace.as_tuples() == ((0.0, 5.0), (2.0, 3.0))
        assert trace.best_cost() == 3.0

    def test_cost_at_time(self):
        trace = ConvergenceTrace()
        trace.record(0.0, 5.0)
        trace.record(2.0, 3.0)
        assert trace.cost_at(1.0) == 5.0
        assert trace.cost_at(2.5) == 3.0
        assert ConvergenceTrace().cost_at(1.0) is None


class TestHelpers:
    def test_default_plan_uses_first_instances(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        plan = default_plan(mesh_graph, costs)
        assert plan.used_instances() == tuple(range(9))

    def test_random_plans_count_and_validity(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        plans = random_plans(mesh_graph, costs, 5, rng=0)
        assert len(plans) == 5
        for plan in plans:
            assert plan.covers(mesh_graph)

    def test_best_random_plan_is_best_of_batch(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=3)
        plan, cost = best_random_plan(mesh_graph, costs, Objective.LONGEST_LINK,
                                      20, rng=1)
        assert cost == pytest.approx(
            deployment_cost(plan, mesh_graph, costs, Objective.LONGEST_LINK)
        )
        # It should not be worse than a single random draw with the same seed.
        single, single_cost = best_random_plan(mesh_graph, costs,
                                               Objective.LONGEST_LINK, 1, rng=1)
        assert cost <= single_cost

    def test_infeasible_problem_detected(self):
        graph = CommunicationGraph.mesh_2d(3, 3)
        costs = deterministic_cost_matrix(4)
        solver = RandomSearch(num_samples=5, seed=0)
        with pytest.raises(InfeasibleProblemError):
            solver.solve(graph, costs)

    def test_unsupported_objective_rejected(self, mesh_graph):
        from repro.solvers import CPLongestLinkSolver

        costs = deterministic_cost_matrix(10)
        with pytest.raises(SolverError):
            CPLongestLinkSolver().solve(mesh_graph, costs,
                                        objective=Objective.LONGEST_PATH)


class TestImprovementOver:
    def _result(self, mesh_graph, cost):
        costs = deterministic_cost_matrix(12)
        plan = default_plan(mesh_graph, costs)
        return SolverResult(plan=plan, cost=cost,
                            objective=Objective.LONGEST_LINK,
                            solver_name="test", solve_time_s=0.0,
                            iterations=1, optimal=False)

    def test_positive_baseline_reports_improvement(self, mesh_graph):
        result = self._result(mesh_graph, cost=7.0)
        assert result.improvement_over(10.0) == pytest.approx(0.3)

    def test_regression_clamped_to_zero(self, mesh_graph):
        result = self._result(mesh_graph, cost=12.0)
        assert result.improvement_over(10.0) == 0.0

    def test_zero_baseline_raises(self, mesh_graph):
        result = self._result(mesh_graph, cost=7.0)
        with pytest.raises(ValueError, match="positive"):
            result.improvement_over(0.0)

    def test_negative_baseline_raises(self, mesh_graph):
        result = self._result(mesh_graph, cost=7.0)
        with pytest.raises(ValueError, match="positive"):
            result.improvement_over(-1.0)


class TestSolveShim:
    def test_legacy_positional_form_warns(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        with pytest.warns(DeprecationWarning, match="DeploymentProblem"):
            result = GreedyG2().solve(mesh_graph, costs)
        assert result.plan.covers(mesh_graph)

    def test_new_form_matches_legacy_form(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        problem = DeploymentProblem(mesh_graph, costs)
        modern = RandomSearch(num_samples=50, seed=3).solve(problem)
        with pytest.warns(DeprecationWarning):
            legacy = RandomSearch(num_samples=50, seed=3).solve(
                mesh_graph, costs)
        assert modern.plan == legacy.plan
        assert modern.cost == legacy.cost

    def test_new_form_does_not_warn(self, mesh_graph, recwarn):
        costs = deterministic_cost_matrix(12)
        GreedyG2().solve(DeploymentProblem(mesh_graph, costs))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_problem_plus_costs_rejected(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        problem = DeploymentProblem(mesh_graph, costs)
        with pytest.raises(TypeError):
            GreedyG2().solve(problem, costs)

    def test_legacy_form_without_costs_rejected(self, mesh_graph):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                GreedyG2().solve(mesh_graph)

    def test_legacy_objective_positional(self, tree_graph):
        costs = deterministic_cost_matrix(8)
        with pytest.warns(DeprecationWarning):
            result = GreedyG2().solve(tree_graph, costs,
                                      Objective.LONGEST_PATH)
        assert result.objective is Objective.LONGEST_PATH
