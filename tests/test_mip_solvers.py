"""Tests for the LLNDP and LPNDP MIP encodings and solvers."""

import numpy as np
import pytest

from repro.core import CommunicationGraph, DeploymentPlan, Objective
from repro.core.objectives import deployment_cost, longest_link_cost, longest_path_cost
from repro.core.errors import InvalidGraphError
from repro.solvers import (
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
    RandomSearch,
    SearchBudget,
)
from repro.solvers.mip.llndp_mip import LLNDPEncoding
from repro.solvers.mip.lpndp_mip import LPNDPEncoding
from repro.solvers.mip.scipy_backend import solve_milp

from conftest import brute_force_optimum, deterministic_cost_matrix


@pytest.fixture
def tiny_ll_problem():
    graph = CommunicationGraph.ring(4)
    costs = deterministic_cost_matrix(5, seed=11)
    return graph, costs


@pytest.fixture
def tiny_lp_problem():
    graph = CommunicationGraph.aggregation_tree(2, 2)  # 7 nodes
    costs = deterministic_cost_matrix(8, seed=12)
    return graph, costs


class TestLLNDPEncoding:
    def test_model_dimensions(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        encoding = LLNDPEncoding(graph, costs)
        # |S| padded nodes * |S| instances binaries + the objective variable.
        assert encoding.model.num_variables == 5 * 5 + 1
        # Assignment constraints: 2 * |S|.
        assignment_constraints = 2 * 5
        link_constraints = graph.num_edges * 5 * 4
        assert encoding.model.num_constraints == assignment_constraints + link_constraints

    def test_solution_vector_is_feasible(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        encoding = LLNDPEncoding(graph, costs)
        assignment = {node: index for index, node in enumerate(encoding.nodes)}
        vector = encoding.solution_vector(assignment)
        assert encoding.model.is_feasible(vector)

    def test_solution_vector_objective_matches_longest_link(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        encoding = LLNDPEncoding(graph, costs)
        assignment = {node: index for index, node in enumerate(encoding.nodes)}
        vector = encoding.solution_vector(assignment)
        plan = DeploymentPlan({
            node: costs.instance_ids[assignment[node]] for node in graph.nodes
        })
        assert encoding.model.evaluate_objective(vector) == pytest.approx(
            longest_link_cost(plan, graph, costs)
        )

    def test_decode_roundtrip(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        encoding = LLNDPEncoding(graph, costs)
        assignment = {node: index for index, node in enumerate(encoding.nodes)}
        plan = encoding.decode(encoding.solution_vector(assignment))
        assert plan.covers(graph)
        for node in graph.nodes:
            assert plan.instance_for(node) == costs.instance_ids[assignment[node]]

    def test_milp_backend_reaches_optimum(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        encoding = LLNDPEncoding(graph, costs)
        solution = solve_milp(encoding.model, time_limit_s=30.0)
        assert solution.feasible
        assert solution.objective_value == pytest.approx(optimum, abs=1e-6)


class TestMIPLongestLinkSolver:
    def test_bnb_produces_valid_plan(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        result = MIPLongestLinkSolver(backend="bnb").solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        assert result.plan.covers(graph)
        assert result.cost == pytest.approx(
            longest_link_cost(result.plan, graph, costs)
        )

    def test_milp_backend_matches_brute_force(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        result = MIPLongestLinkSolver(backend="milp").solve(
            graph, costs, budget=SearchBudget.seconds(30)
        )
        assert result.cost == pytest.approx(optimum, abs=1e-6)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            MIPLongestLinkSolver(backend="cplex")

    def test_rejects_longest_path_objective(self, tiny_ll_problem):
        graph, costs = tiny_ll_problem
        from repro.core.errors import SolverError

        with pytest.raises(SolverError):
            MIPLongestLinkSolver().solve(graph, costs,
                                         objective=Objective.LONGEST_PATH)


class TestLPNDPEncoding:
    def test_rejects_cyclic_graph(self):
        graph = CommunicationGraph([0, 1], [(0, 1), (1, 0)])
        costs = deterministic_cost_matrix(3, seed=13)
        with pytest.raises(InvalidGraphError):
            LPNDPEncoding(graph, costs)

    def test_solution_vector_is_feasible(self, tiny_lp_problem):
        graph, costs = tiny_lp_problem
        encoding = LPNDPEncoding(graph, costs)
        assignment = {node: index for index, node in enumerate(encoding.nodes)}
        vector = encoding.solution_vector(assignment)
        assert encoding.model.is_feasible(vector)

    def test_solution_vector_objective_matches_longest_path(self, tiny_lp_problem):
        graph, costs = tiny_lp_problem
        encoding = LPNDPEncoding(graph, costs)
        assignment = {node: index for index, node in enumerate(encoding.nodes)}
        vector = encoding.solution_vector(assignment)
        plan = DeploymentPlan({
            node: costs.instance_ids[assignment[node]] for node in graph.nodes
        })
        assert encoding.model.evaluate_objective(vector) == pytest.approx(
            longest_path_cost(plan, graph, costs)
        )

    def test_milp_backend_reaches_optimum_on_tiny_tree(self):
        graph = CommunicationGraph.aggregation_tree(2, 1)  # 3 nodes
        costs = deterministic_cost_matrix(4, seed=14)
        _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_PATH)
        encoding = LPNDPEncoding(graph, costs)
        solution = solve_milp(encoding.model, time_limit_s=30.0)
        assert solution.feasible
        assert solution.objective_value == pytest.approx(optimum, abs=1e-6)


class TestMIPLongestPathSolver:
    def test_bnb_produces_valid_plan(self, tiny_lp_problem):
        graph, costs = tiny_lp_problem
        result = MIPLongestPathSolver(backend="bnb").solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        assert result.plan.covers(graph)
        assert result.cost == pytest.approx(
            longest_path_cost(result.plan, graph, costs)
        )

    def test_milp_backend_matches_brute_force(self):
        graph = CommunicationGraph.aggregation_tree(2, 1)
        costs = deterministic_cost_matrix(4, seed=15)
        _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_PATH)
        result = MIPLongestPathSolver(backend="milp").solve(
            graph, costs, budget=SearchBudget.seconds(30)
        )
        assert result.cost == pytest.approx(optimum, abs=1e-6)

    def test_warm_start_never_hurts(self, tiny_lp_problem):
        graph, costs = tiny_lp_problem
        warm = RandomSearch(num_samples=500, seed=0).solve(
            graph, costs, objective=Objective.LONGEST_PATH
        )
        result = MIPLongestPathSolver(backend="bnb").solve(
            graph, costs, budget=SearchBudget.seconds(5), initial_plan=warm.plan
        )
        assert result.cost <= warm.cost + 1e-9 or result.cost == pytest.approx(
            deployment_cost(result.plan, graph, costs, Objective.LONGEST_PATH)
        )

    def test_rejects_longest_link_objective(self, tiny_lp_problem):
        graph, costs = tiny_lp_problem
        from repro.core.errors import SolverError

        with pytest.raises(SolverError):
            MIPLongestPathSolver().solve(graph, costs,
                                         objective=Objective.LONGEST_LINK)
