"""Tests for the exact 1-D k-means used for cost clustering."""

import numpy as np
import pytest

from repro.core import ClouDiAError, cluster_costs, kmeans_1d


class TestKMeans1D:
    def test_two_obvious_clusters(self):
        values = [0.1, 0.11, 0.12, 5.0, 5.1, 5.2]
        result = kmeans_1d(values, 2)
        assert result.num_clusters == 2
        assert result.centers[0] == pytest.approx(0.11, abs=1e-9)
        assert result.centers[1] == pytest.approx(5.1, abs=1e-9)
        # First three values in cluster 0, last three in cluster 1.
        assert list(result.labels) == [0, 0, 0, 1, 1, 1]

    def test_more_clusters_than_distinct_values(self):
        values = [1.0, 2.0, 1.0]
        result = kmeans_1d(values, 10)
        assert result.num_clusters == 2
        assert result.cost == pytest.approx(0.0)

    def test_single_cluster_center_is_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        result = kmeans_1d(values, 1)
        assert result.centers[0] == pytest.approx(2.5)

    def test_cost_decreases_with_more_clusters(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, size=50)
        costs = [kmeans_1d(values, k).cost for k in (1, 2, 4, 8)]
        assert all(costs[i] >= costs[i + 1] - 1e-12 for i in range(len(costs) - 1))

    def test_optimality_against_brute_force(self):
        # For a tiny input we can enumerate all contiguous 2-partitions of the
        # sorted values and verify the DP finds the best one.
        values = np.array([0.0, 0.4, 1.0, 1.1, 3.0])
        result = kmeans_1d(values, 2)
        ordered = np.sort(values)

        def sse(segment):
            return float(((segment - segment.mean()) ** 2).sum())

        best = min(
            sse(ordered[:cut]) + sse(ordered[cut:]) for cut in range(1, len(ordered))
        )
        assert result.cost == pytest.approx(best)

    def test_mapped_values_shape_and_membership(self):
        values = [0.3, 0.31, 0.9, 0.92]
        result = kmeans_1d(values, 2)
        mapped = result.mapped_values()
        assert mapped.shape == (4,)
        assert set(np.round(mapped, 6)) <= set(np.round(result.centers, 6))

    def test_empty_input_rejected(self):
        with pytest.raises(ClouDiAError):
            kmeans_1d([], 3)

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ClouDiAError):
            kmeans_1d([1.0], 0)

    def test_labels_monotone_in_value(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 2, size=40)
        result = kmeans_1d(values, 5)
        # Sorting the values must sort the labels: clusters are intervals.
        order = np.argsort(values)
        sorted_labels = result.labels[order]
        assert all(sorted_labels[i] <= sorted_labels[i + 1]
                   for i in range(len(sorted_labels) - 1))


class TestClusterCosts:
    def test_none_k_returns_values(self):
        values = [0.5, 0.7]
        assert list(cluster_costs(values, None, round_to=None)) == values

    def test_rounding_applied(self):
        values = [0.101, 0.109]
        rounded = cluster_costs(values, None, round_to=0.01)
        assert rounded[0] == pytest.approx(0.10)
        assert rounded[1] == pytest.approx(0.11)

    def test_clustering_reduces_distinct_values(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0.2, 1.4, size=200)
        clustered = cluster_costs(values, 10, round_to=None)
        assert len(np.unique(clustered)) <= 10
