"""Vectorized neighborhood kernels: batch-peek scoring and blocked solvers.

Four contracts are pinned here:

* :meth:`~repro.core.evaluation.DeltaEvaluator.peek_many` returns
  bit-identical costs to the sequential per-move ``swap_cost`` /
  ``relocate_cost`` peeks — for both objectives, constrained and
  unconstrained instances, mid-walk after commits, and through every
  worker routing (serial kernels, thread pool, process pool);
* the blocked solver loops are bit-identical seed for seed to the
  historical per-move loops: the committed golden trajectories in
  ``tests/data/golden_trajectories.json`` (captured from the pre-batching
  implementation) must keep reproducing exactly, at any ``peek_block``;
* :class:`~repro.core.evaluation.MoveBatch` validates like the serial
  move API (occupied relocate targets, constraint masks, stale cost
  epochs) and the batch counters surface through ``parallel_stats()`` /
  ``SessionStats``;
* the ``peek_block`` knob round-trips through budgets and sessions, and
  the opt-in best-improvement acceptance mode is registry-visible.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AdvisorSession
from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    InvalidDeploymentError,
    MoveBatch,
    Objective,
    PlacementConstraints,
    SolverError,
    compile_problem,
)
from repro.core.parallel import parallel_stats, reset_parallel_stats
from repro.solvers import (
    SearchBudget,
    SimulatedAnnealing,
    SwapLocalSearch,
    default_limits,
)
from repro.solvers.local_search import (
    _propose_constrained_move,
    _propose_move,
)
from repro.solvers.registry import default_registry
from repro.testing import deterministic_cost_matrix

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_trajectories.json"
GOLDEN_CASES = json.loads(GOLDEN_PATH.read_text())

GOLDEN_GRAPHS = {
    "mesh": CommunicationGraph.mesh_2d(3, 3),
    "tree": CommunicationGraph.aggregation_tree(2, 3),
}
GOLDEN_INSTANCES = {"mesh": 12, "tree": 18}


def _random_instance(seed, n_lo=4, n_hi=10, extra=3, dag=False):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_lo, n_hi + 1))
    m = n + int(rng.integers(1, extra + 1))
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(m)), matrix)
    if dag:
        graph = CommunicationGraph.random_dag(n, 0.4, seed=seed)
    else:
        graph = CommunicationGraph.random_graph(n, 0.4, seed=seed)
    return graph, costs


def _random_moves(problem, evaluator, rng, count, constrained=False):
    """Mixed valid swap/relocate moves against the current assignment."""
    n, moves = problem.num_nodes, []
    while len(moves) < count:
        if n >= 2 and rng.random() < 0.7:
            a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
            if constrained and not evaluator.swap_allowed(a, b):
                continue
            moves.append(("swap", a, b))
        else:
            node = int(rng.integers(n))
            free = evaluator.free_instance_indices(node=node)
            if constrained:
                free = free[evaluator.allowed_mask[node, free]]
            if not free.size:
                continue
            moves.append(("relocate", node,
                          int(free[int(rng.integers(free.size))])))
    return moves


def _serial_costs(evaluator, moves):
    out = []
    for kind, first, second in moves:
        if kind == "swap":
            out.append(evaluator.swap_cost(first, second))
        else:
            out.append(evaluator.relocate_cost(first, second))
    return np.asarray(out)


# --------------------------------------------------------------------------- #
# peek_many == sequential per-move peeks, bit for bit
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 5000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]),
       count=st.integers(2, 40))
@settings(max_examples=60, deadline=None)
def test_peek_many_matches_serial_peeks(seed, objective, count):
    graph, costs = _random_instance(
        seed, dag=objective is Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(seed + 1)
    start = problem.random_assignments(1, rng)[0]
    evaluator = problem.delta_evaluator(start, objective)
    moves = _random_moves(problem, evaluator, rng, count)
    got = evaluator.peek_many(MoveBatch.from_moves(moves))
    assert np.array_equal(got, _serial_costs(evaluator, moves))


def _constrained_problem(graph, costs, rng, objective):
    """A random satisfiable forbidden-set constrained problem."""
    n, m = graph.num_nodes, costs.num_instances
    ids = costs.instance_ids
    allowed = rng.random((n, m)) < 0.8
    # The injective assignment i -> i keeps the instance feasible.
    allowed[np.arange(n), np.arange(n)] = True
    forbidden = {
        graph.nodes[i]: {ids[j] for j in range(m) if not allowed[i, j]}
        for i in range(n)
    }
    return DeploymentProblem(graph, costs, objective=objective,
                             constraints=PlacementConstraints(
                                 forbidden=forbidden))


@given(seed=st.integers(0, 3000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]),
       count=st.integers(2, 24))
@settings(max_examples=40, deadline=None)
def test_peek_many_matches_serial_peeks_constrained(seed, objective, count):
    graph, costs = _random_instance(
        seed, n_lo=5, dag=objective is Objective.LONGEST_PATH)
    rng = np.random.default_rng(seed + 2)
    problem = _constrained_problem(graph, costs, rng, objective)
    engine = problem.compiled()
    view = problem.compiled_constraints()
    start = view.random_assignments(1, rng)[0]
    evaluator = engine.delta_evaluator(start, objective,
                                       allowed_mask=view.allowed_mask)
    moves = _random_moves(problem, evaluator, rng, count, constrained=True)
    got = evaluator.peek_many(MoveBatch.from_moves(moves))
    assert np.array_equal(got, _serial_costs(evaluator, moves))


@given(seed=st.integers(0, 2000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]))
@settings(max_examples=25, deadline=None)
def test_peek_many_consistent_after_commits(seed, objective):
    graph, costs = _random_instance(
        seed, dag=objective is Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(seed + 3)
    start = problem.random_assignments(1, rng)[0]
    evaluator = problem.delta_evaluator(start, objective)
    for _ in range(3):
        moves = _random_moves(problem, evaluator, rng, 12)
        got = evaluator.peek_many(MoveBatch.from_moves(moves))
        assert np.array_equal(got, _serial_costs(evaluator, moves))
        kind, first, second = moves[int(rng.integers(len(moves)))]
        if kind == "swap":
            evaluator.apply_swap(first, second)
        else:
            evaluator.apply_relocate(first, second)


@given(seed=st.integers(0, 1500),
       workers=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_peek_many_worker_routing_bit_identical(seed, workers):
    # Large enough that count * num_edges crosses the pool routing cutoff.
    graph = CommunicationGraph.random_dag(40, 0.15, seed=seed)
    rng = np.random.default_rng(seed + 4)
    m = 48
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    problem = compile_problem(graph, CostMatrix(list(range(m)), matrix))
    start = problem.random_assignments(1, rng)[0]
    for objective in (Objective.LONGEST_LINK, Objective.LONGEST_PATH):
        evaluator = problem.delta_evaluator(start, objective)
        moves = _random_moves(problem, evaluator, rng, 600)
        batch = MoveBatch.from_moves(moves)
        serial = evaluator.peek_many(batch)
        assert np.array_equal(serial, evaluator.peek_many(batch,
                                                          workers=workers))


def test_peek_many_process_pool_routing_bit_identical():
    graph = CommunicationGraph.random_dag(40, 0.15, seed=11)
    rng = np.random.default_rng(12)
    m = 48
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    problem = compile_problem(graph, CostMatrix(list(range(m)), matrix))
    start = problem.random_assignments(1, rng)[0]
    evaluator = problem.delta_evaluator(start, Objective.LONGEST_PATH)
    moves = _random_moves(problem, evaluator, rng, 600)
    batch = MoveBatch.from_moves(moves)
    serial = evaluator.peek_many(batch)
    assert np.array_equal(serial, evaluator.peek_many(batch,
                                                      workers="procs:2"))


def test_peek_many_empty_batch():
    graph, costs = _random_instance(0)
    problem = compile_problem(graph, costs)
    evaluator = problem.delta_evaluator(
        problem.random_assignments(1, 0)[0], Objective.LONGEST_LINK)
    out = evaluator.peek_many(MoveBatch.from_moves([]))
    assert out.shape == (0,)


# --------------------------------------------------------------------------- #
# MoveBatch validation mirrors the serial move API
# --------------------------------------------------------------------------- #

def test_move_batch_rejects_unknown_kind_and_shape():
    with pytest.raises(InvalidDeploymentError):
        MoveBatch.from_moves([("teleport", 0, 1)])
    with pytest.raises(InvalidDeploymentError):
        MoveBatch(np.zeros((2, 2), dtype=np.uint8),
                  np.zeros(4, dtype=np.intp), np.zeros(4, dtype=np.intp))
    with pytest.raises(InvalidDeploymentError):
        MoveBatch(np.zeros(2, dtype=np.uint8),
                  np.zeros(3, dtype=np.intp), np.zeros(2, dtype=np.intp))


def test_peek_many_rejects_occupied_relocate_target():
    graph, costs = _random_instance(5)
    problem = compile_problem(graph, costs)
    start = problem.random_assignments(1, 5)[0]
    evaluator = problem.delta_evaluator(start, Objective.LONGEST_LINK)
    occupied = int(start[1])
    with pytest.raises(InvalidDeploymentError):
        evaluator.peek_many(MoveBatch.from_moves(
            [("relocate", 0, occupied)]))
    # Relocating a node onto its own instance is a no-op, not a conflict —
    # same contract as the serial relocate_cost.
    own = int(start[0])
    got = evaluator.peek_many(MoveBatch.from_moves([("relocate", 0, own)]))
    assert np.array_equal(got, [evaluator.relocate_cost(0, own)])


def test_peek_many_rejects_mask_violations():
    graph, costs = _random_instance(7, n_lo=5)
    n, m = graph.num_nodes, costs.num_instances
    allowed = np.ones((n, m), dtype=bool)
    engine = compile_problem(graph, costs)
    rng = np.random.default_rng(7)
    start = engine.random_assignments(1, rng)[0]
    allowed[0, :] = False
    allowed[0, start[0]] = True  # node 0 pinned to its current instance
    evaluator = engine.delta_evaluator(start, Objective.LONGEST_LINK,
                                       allowed_mask=allowed)
    with pytest.raises(InvalidDeploymentError):
        evaluator.peek_many(MoveBatch.from_moves([("swap", 0, 1)]))


def test_peek_many_stale_after_cost_refresh():
    graph, costs = _random_instance(9)
    problem = compile_problem(graph, costs)
    start = problem.random_assignments(1, 9)[0]
    evaluator = problem.delta_evaluator(start, Objective.LONGEST_LINK)
    batch = MoveBatch.from_moves([("swap", 0, 1)])
    evaluator.peek_many(batch)
    matrix = costs.as_array() * 1.5
    problem.refresh_costs(CostMatrix(costs.instance_ids, matrix))
    with pytest.raises(SolverError):
        evaluator.peek_many(batch)
    evaluator.reprime()
    assert np.array_equal(evaluator.peek_many(batch),
                          [evaluator.swap_cost(0, 1)])


# --------------------------------------------------------------------------- #
# Golden trajectories: the blocked loops reproduce the pre-batching runs
# --------------------------------------------------------------------------- #

def _golden_solver(case, **overrides):
    if case["solver"] == "local-search":
        return SwapLocalSearch(seed=case["seed"], **overrides)
    return SimulatedAnnealing(seed=case["seed"], **overrides)


def _golden_problem(case):
    graph = GOLDEN_GRAPHS[case["graph"]]
    costs = deterministic_cost_matrix(
        GOLDEN_INSTANCES[case["graph"]], seed=case["seed"] + 3)
    return DeploymentProblem(graph, costs,
                             objective=Objective[case["objective"]])


@pytest.mark.parametrize("case", GOLDEN_CASES,
                         ids=lambda c: (f"{c['solver']}-{c['objective']}-"
                                        f"{c['graph']}-s{c['seed']}"))
def test_golden_trajectories_bit_identical(case):
    result = _golden_solver(case).solve(
        _golden_problem(case),
        budget=SearchBudget(time_limit_s=30.0, max_iterations=400))
    assert result.cost == case["cost"]
    assert result.iterations == case["iterations"]
    assert [list(kv) for kv in sorted(result.plan.as_dict().items())] \
        == case["plan"]


@pytest.mark.parametrize("peek_block", [1, 5, 64])
def test_golden_trajectories_stable_across_block_sizes(peek_block):
    # Every golden case, re-run with an explicit block size: the blocked
    # loop's rewind/replay keeps the trajectory bit-identical no matter
    # how much lookahead it buys.
    for case in GOLDEN_CASES[::3]:
        result = _golden_solver(case).solve(
            _golden_problem(case),
            budget=SearchBudget(time_limit_s=30.0, max_iterations=400,
                                peek_block=peek_block))
        assert result.cost == case["cost"], case
        assert result.iterations == case["iterations"], case
        assert [list(kv) for kv in sorted(result.plan.as_dict().items())] \
            == case["plan"], case


@given(seed=st.integers(0, 400), peek_block=st.integers(1, 48))
@settings(max_examples=20, deadline=None)
def test_constrained_trajectory_stable_across_block_sizes(seed, peek_block):
    graph = CommunicationGraph.mesh_2d(3, 3)
    costs = deterministic_cost_matrix(12, seed=seed)
    rng = np.random.default_rng(seed)
    problem = _constrained_problem(graph, costs, rng,
                                   Objective.LONGEST_LINK)
    budget = SearchBudget(time_limit_s=30.0, max_iterations=150,
                          peek_block=peek_block)
    baseline = SwapLocalSearch(seed=seed).solve(
        problem, budget=SearchBudget(time_limit_s=30.0, max_iterations=150))
    blocked = SwapLocalSearch(seed=seed).solve(problem, budget=budget)
    assert blocked.cost == baseline.cost
    assert blocked.iterations == baseline.iterations
    assert blocked.plan.as_dict() == baseline.plan.as_dict()


# --------------------------------------------------------------------------- #
# Constrained proposal sampling: direct draw, no rejection spin
# --------------------------------------------------------------------------- #

def test_constrained_proposal_terminates_when_everything_pinned():
    graph, costs = _random_instance(3, n_lo=5)
    n, m = graph.num_nodes, costs.num_instances
    engine = compile_problem(graph, costs)
    start = engine.random_assignments(1, 3)[0]
    allowed = np.zeros((n, m), dtype=bool)
    allowed[np.arange(n), start[:n]] = True  # every node pinned in place
    evaluator = engine.delta_evaluator(start, Objective.LONGEST_LINK,
                                       allowed_mask=allowed)
    rng = np.random.default_rng(0)
    assert all(_propose_constrained_move(evaluator, rng) is None
               for _ in range(50))


def test_constrained_proposal_finds_the_only_admissible_swap():
    # Nodes 0 and 1 may sit on each other's instances; everything else is
    # pinned.  The direct draw must surface the unique admissible swap for
    # any draw that touches it — the old rejection sampler only found it
    # when both endpoints came up together.
    graph, costs = _random_instance(13, n_lo=6)
    n, m = graph.num_nodes, costs.num_instances
    engine = compile_problem(graph, costs)
    start = engine.random_assignments(1, 13)[0]
    allowed = np.zeros((n, m), dtype=bool)
    allowed[np.arange(n), start[:n]] = True
    allowed[0, start[1]] = True
    allowed[1, start[0]] = True
    evaluator = engine.delta_evaluator(start, Objective.LONGEST_LINK,
                                       allowed_mask=allowed)
    rng = np.random.default_rng(1)
    seen = set()
    for _ in range(40):
        move = _propose_constrained_move(evaluator, rng)
        if move is not None:
            assert move[0] == "swap" and {move[1], move[2]} == {0, 1}
            seen.add(move[0])
    assert "swap" in seen


def test_unconstrained_proposal_rng_contract_unchanged():
    # The unconstrained sampler must keep its documented draw order; this
    # pins the exact proposal sequence for a fixed seed.
    graph, costs = _random_instance(21, n_lo=6)
    problem = compile_problem(graph, costs)
    start = problem.random_assignments(1, 21)[0]
    evaluator = problem.delta_evaluator(start, Objective.LONGEST_LINK)
    first = [_propose_move(evaluator, np.random.default_rng(42))
             for _ in range(1)][0]
    again = _propose_move(evaluator, np.random.default_rng(42))
    assert first == again


# --------------------------------------------------------------------------- #
# Best-improvement acceptance mode
# --------------------------------------------------------------------------- #

def test_best_improvement_mode_validates_and_runs():
    with pytest.raises(ValueError):
        SwapLocalSearch(acceptance="steepest")
    graph = CommunicationGraph.mesh_2d(3, 3)
    costs = deterministic_cost_matrix(12, seed=4)
    problem = DeploymentProblem(graph, costs,
                                objective=Objective.LONGEST_LINK)
    budget = SearchBudget(time_limit_s=30.0, max_iterations=300)
    result = SwapLocalSearch(seed=4, acceptance="best").solve(
        problem, budget=budget)
    assert result.iterations == 300
    # Never worse than the start the first-improvement run also gets, and
    # a valid plan either way.
    assert result.plan is not None
    assert result.cost == pytest.approx(
        problem.evaluate(result.plan), abs=0.0)


def test_best_improvement_respects_iteration_budget():
    graph = CommunicationGraph.mesh_2d(3, 3)
    costs = deterministic_cost_matrix(12, seed=6)
    problem = DeploymentProblem(graph, costs,
                                objective=Objective.LONGEST_LINK)
    result = SwapLocalSearch(seed=6, acceptance="best").solve(
        problem,
        budget=SearchBudget(time_limit_s=30.0, max_iterations=70,
                            peek_block=32))
    assert result.iterations <= 70 + 31  # at most one trailing block


def test_best_improvement_is_registry_visible():
    spec = default_registry.spec("local-search")
    assert spec.supports_best_improvement
    assert spec.describe()["supports_best_improvement"] is True
    assert not default_registry.spec("annealing").supports_best_improvement
    assert "local-search" in default_registry.supporting(
        Objective.LONGEST_LINK, best_improvement=True)
    assert "annealing" not in default_registry.supporting(
        Objective.LONGEST_LINK, best_improvement=True)
    solver = default_registry.spec("local-search").make(acceptance="best")
    assert solver.acceptance == "best"


# --------------------------------------------------------------------------- #
# peek_block knob: validation, JSON round-trip, session folding
# --------------------------------------------------------------------------- #

def test_peek_block_validation_and_round_trip():
    budget = SearchBudget(time_limit_s=1.0, peek_block=16)
    assert SearchBudget.from_dict(budget.to_dict()) == budget
    assert SearchBudget.from_dict(
        SearchBudget(time_limit_s=1.0).to_dict()).peek_block is None
    for bad in (0, -3, True, 2.5):
        with pytest.raises(SolverError):
            SearchBudget(time_limit_s=1.0, peek_block=bad)


def test_peek_block_only_budget_adopts_default_limits():
    default = SearchBudget.seconds(2.0)
    adopted = default_limits(SearchBudget(peek_block=8), default)
    assert adopted.time_limit_s == 2.0
    assert adopted.peek_block == 8
    both = default_limits(SearchBudget(workers=2, peek_block=8), default)
    assert both.workers == 2 and both.peek_block == 8


def test_session_peek_block_folds_into_budgets():
    with pytest.raises(ValueError):
        AdvisorSession(peek_block=0)
    session = AdvisorSession(peek_block=16, eval_workers=2)
    folded = session._effective_budget(None)
    assert folded.peek_block == 16 and folded.workers == 2
    folded = session._effective_budget(SearchBudget(time_limit_s=1.0))
    assert folded.peek_block == 16 and folded.time_limit_s == 1.0
    explicit = session._effective_budget(
        SearchBudget(time_limit_s=1.0, peek_block=4))
    assert explicit.peek_block == 4  # the request's own knob wins
    assert AdvisorSession()._effective_budget(None) is None


# --------------------------------------------------------------------------- #
# Telemetry: batch-peek counters flow to parallel stats and sessions
# --------------------------------------------------------------------------- #

def test_batch_peek_counters_surface_in_parallel_stats():
    reset_parallel_stats()
    graph, costs = _random_instance(17)
    problem = compile_problem(graph, costs)
    start = problem.random_assignments(1, 17)[0]
    evaluator = problem.delta_evaluator(start, Objective.LONGEST_LINK)
    rng = np.random.default_rng(18)
    moves = _random_moves(problem, evaluator, rng, 12)
    evaluator.peek_many(MoveBatch.from_moves(moves))
    stats = parallel_stats()
    assert stats.batch_peek_calls >= 1
    assert stats.batch_peeked_moves >= 12
    payload = stats.to_dict()
    for key in ("delta_peeks", "delta_commits", "batch_peek_calls",
                "batch_peeked_moves"):
        assert key in payload
    reset_parallel_stats()
    assert parallel_stats().batch_peek_calls == 0


def test_batch_peek_counters_reach_session_stats():
    reset_parallel_stats()
    graph = CommunicationGraph.mesh_2d(3, 3)
    costs = deterministic_cost_matrix(12, seed=8)
    problem = DeploymentProblem(graph, costs,
                                objective=Objective.LONGEST_LINK)
    session = AdvisorSession()
    from repro.api import SolveRequest
    session.solve(SolveRequest(
        problem=problem, solver="local-search",
        config={"seed": 8},
        budget=SearchBudget(time_limit_s=30.0, max_iterations=300)))
    payload = session.stats.to_dict()["parallel"]
    assert payload["batch_peek_calls"] > 0
    assert payload["batch_peeked_moves"] >= payload["batch_peek_calls"]
    assert payload["delta_peeks"] > 0
