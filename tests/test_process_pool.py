"""Process-pool shared-memory evaluation: selection, identity, lifecycle.

Covers the ``workers`` knob grammar (``"procs[:N]"``), the
:class:`ProcessPoolEvaluator` itself (bit-identity, serial cutoff, thread
fallback, epoch handshake, crashed-pool recovery), the plumbing that
selects it (``scoring_engine``, ``SearchBudget``, ``AdvisorSession``),
the aggregated telemetry counters and the no-litter guarantee for the
shared-memory segments.  The host may be single-core, so every test
forces an explicit worker count instead of relying on ``"auto"``.
"""

import gc
import glob
import json
import os
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

import repro.core.parallel as parallel
from repro.api import AdvisorSession, SolveRequest
from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    Objective,
    ParallelEvaluator,
    ProcessPoolEvaluator,
    compile_problem,
    parallel_stats,
    process_pool_unavailable_reason,
    workers_spec,
)
from repro.core.evaluation import available_workers
from repro.solvers import SearchBudget
from repro.solvers.base import scoring_engine

from conftest import deterministic_cost_matrix

pytestmark = pytest.mark.skipif(
    process_pool_unavailable_reason() is not None,
    reason=f"process pool unavailable: {process_pool_unavailable_reason()}",
)


def _compiled(seed=3, n=6, m=9, dag=False):
    if dag:
        graph = CommunicationGraph.random_dag(n, 0.5, seed=seed)
    else:
        graph = CommunicationGraph.random_graph(n, 0.5, seed=seed)
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    return compile_problem(graph, CostMatrix(list(range(m)), matrix))


def _own_shm_segments():
    """Shared-memory files created by this process (token is pid-stamped)."""
    return glob.glob(f"/dev/shm/repro-{os.getpid()}-*")


# --------------------------------------------------------------------------- #
# The workers knob grammar
# --------------------------------------------------------------------------- #


class TestWorkersSpec:
    @pytest.mark.parametrize("knob, expected", [
        (None, ("threads", available_workers())),
        ("auto", ("threads", available_workers())),
        (3, ("threads", 3)),
        ("procs", ("procs", available_workers())),
        ("procs:auto", ("procs", available_workers())),
        ("procs:4", ("procs", 4)),
    ])
    def test_valid_specs(self, knob, expected):
        assert workers_spec(knob) == expected

    @pytest.mark.parametrize("knob", [
        "procs:", "procs:x", "procs:0", "procs:-1", "procs=2",
        "prox", "", 0, -2, 1.5,
    ])
    def test_malformed_specs_rejected(self, knob):
        with pytest.raises(ValueError):
            workers_spec(knob)

    def test_search_budget_validates_and_roundtrips_procs(self):
        budget = SearchBudget(max_iterations=5, workers="procs:2")
        assert SearchBudget.from_dict(json.loads(
            json.dumps(budget.to_dict()))) == budget
        with pytest.raises(ValueError):
            SearchBudget(workers="procs:0")

    def test_scoring_engine_routes_by_mode(self):
        problem = _compiled()
        assert scoring_engine(problem, None) is problem
        assert isinstance(scoring_engine(problem, 2), ParallelEvaluator)
        pooled = scoring_engine(problem, "procs:2")
        assert isinstance(pooled, ProcessPoolEvaluator)
        assert pooled.workers == 2


# --------------------------------------------------------------------------- #
# The evaluator: identity, cutoff, fallback, recovery
# --------------------------------------------------------------------------- #


class TestProcessPoolEvaluator:
    @pytest.mark.parametrize("objective, dag", [
        (Objective.LONGEST_LINK, False),
        (Objective.LONGEST_PATH, True),
    ])
    def test_bit_identical_to_serial_and_threads(self, objective, dag):
        problem = _compiled(dag=dag)
        assignments = problem.random_assignments(13, 7)
        expected = problem.evaluate_batch(assignments, objective)
        threaded = ParallelEvaluator(problem, workers=2, min_cells=1)
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        assert np.array_equal(expected,
                              threaded.evaluate_batch(assignments, objective))
        assert np.array_equal(expected,
                              pooled.evaluate_batch(assignments, objective))
        assert pooled.fallback_reason is None
        assert pooled.parallel_calls == 1
        assert pooled.serial_calls == 0

    def test_evaluate_plans_matches_batch(self):
        problem = _compiled()
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        assignments = problem.random_assignments(6, 11)
        plans = [problem.plan_from_assignment(row) for row in assignments]
        assert np.array_equal(
            pooled.evaluate_plans(plans, Objective.LONGEST_LINK),
            problem.evaluate_batch(assignments, Objective.LONGEST_LINK))
        assert pooled.evaluate_plans([], Objective.LONGEST_LINK).size == 0

    def test_small_batches_take_the_serial_path(self):
        problem = _compiled()
        pooled = ProcessPoolEvaluator(problem, workers=2)  # default cutoff
        assignments = problem.random_assignments(4, 0)
        result = pooled.evaluate_batch(assignments, Objective.LONGEST_LINK)
        assert np.array_equal(
            result, problem.evaluate_batch(assignments,
                                           Objective.LONGEST_LINK))
        assert pooled.serial_calls == 1
        assert pooled.parallel_calls == 0

    def test_unavailable_platform_degrades_to_threads(self, monkeypatch):
        monkeypatch.setattr(parallel, "process_pool_unavailable_reason",
                            lambda: "no-fork")
        problem = _compiled()
        before = parallel_stats().process_fallback_calls
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        assert pooled.fallback_reason == "no-fork"
        assignments = problem.random_assignments(9, 2)
        assert np.array_equal(
            pooled.evaluate_batch(assignments, Objective.LONGEST_LINK),
            problem.evaluate_batch(assignments, Objective.LONGEST_LINK))
        assert parallel_stats().process_fallback_calls == before + 1

    def test_mis_shaped_batch_and_cyclic_graph_rejected_in_parent(self):
        problem = _compiled()
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        with pytest.raises(ValueError, match="shape"):
            pooled.evaluate_batch(np.zeros((2, problem.num_nodes + 1),
                                           dtype=np.int64),
                                  Objective.LONGEST_LINK)
        cyclic = compile_problem(CommunicationGraph.ring(5),
                                 deterministic_cost_matrix(8))
        from repro.core import InvalidGraphError
        with pytest.raises(InvalidGraphError):
            ProcessPoolEvaluator(cyclic, workers=2, min_cells=1) \
                .evaluate_batch(cyclic.random_assignments(8, 0),
                                Objective.LONGEST_PATH)

    def test_cost_refresh_reaches_workers_through_epoch_handshake(self):
        problem = _compiled(seed=17)
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        assignments = problem.random_assignments(10, 5)
        first = pooled.evaluate_batch(assignments, Objective.LONGEST_LINK)
        assert np.array_equal(
            first, problem.evaluate_batch(assignments,
                                          Objective.LONGEST_LINK))

        rng = np.random.default_rng(99)
        matrix = rng.uniform(0.5, 3.0, size=(problem.num_instances,) * 2)
        np.fill_diagonal(matrix, 0.0)
        before = parallel_stats().shm_refreshes
        problem.refresh_costs(CostMatrix(list(range(problem.num_instances)),
                                         matrix))
        second = pooled.evaluate_batch(assignments, Objective.LONGEST_LINK)
        assert np.array_equal(
            second, problem.evaluate_batch(assignments,
                                           Objective.LONGEST_LINK))
        assert not np.array_equal(first, second)
        assert parallel_stats().shm_refreshes == before + 1

    def test_crashed_pool_served_serially_then_rebuilt(self):
        problem = _compiled(seed=23)
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        assignments = problem.random_assignments(8, 1)
        expected = problem.evaluate_batch(assignments, Objective.LONGEST_LINK)

        # Kill a worker: the shared pool breaks, the next batch must be
        # served serially (correctly) and the one after that re-forks.
        pool = parallel._shared_process_pool(2)
        with pytest.raises(BrokenProcessPool):
            pool.submit(os._exit, 1).result()
        before = parallel_stats().pool_recoveries
        assert np.array_equal(
            expected, pooled.evaluate_batch(assignments,
                                            Objective.LONGEST_LINK))
        assert parallel_stats().pool_recoveries == before + 1
        assert pooled.serial_calls == 1
        assert np.array_equal(
            expected, pooled.evaluate_batch(assignments,
                                            Objective.LONGEST_LINK))
        assert pooled.parallel_calls == 1

    def test_repr_mentions_mode(self):
        problem = _compiled()
        assert "procs" in repr(ProcessPoolEvaluator(problem, workers=2))


# --------------------------------------------------------------------------- #
# Session plumbing and telemetry
# --------------------------------------------------------------------------- #


class TestSessionAndTelemetry:
    def test_session_procs_eval_workers_matches_serial(self):
        graph = CommunicationGraph.random_graph(6, 0.5, seed=4)
        problem = DeploymentProblem(graph, deterministic_cost_matrix(9))
        budget = SearchBudget(max_iterations=40)
        serial = AdvisorSession().solve(
            SolveRequest(problem, solver="r1", budget=budget,
                         config={"seed": 5}))
        pooled = AdvisorSession(eval_workers="procs:2").solve(
            SolveRequest(problem, solver="r1", budget=budget,
                         config={"seed": 5}))
        assert pooled.ok and serial.ok
        assert pooled.cost == serial.cost
        assert pooled.plan.as_dict() == serial.plan.as_dict()

    def test_parallel_counters_surface_in_session_stats(self):
        problem = _compiled()
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        pooled.evaluate_batch(problem.random_assignments(7, 0),
                              Objective.LONGEST_LINK)
        payload = AdvisorSession().stats.to_dict()["parallel"]
        assert payload == parallel_stats().to_dict()
        assert payload["process_parallel_calls"] >= 1
        assert payload["shm_attaches"] >= 1
        assert payload["process_pool_size"] >= 2
        assert set(payload) == {
            "thread_parallel_calls", "thread_serial_calls",
            "thread_pool_size", "process_parallel_calls",
            "process_serial_calls", "process_fallback_calls",
            "process_pool_size", "shm_attaches", "shm_refreshes",
            "pool_recoveries", "delta_peeks", "delta_commits",
            "batch_peek_calls", "batch_peeked_moves",
        }

    def test_reset_zeroes_both_backends(self):
        problem = _compiled()
        ProcessPoolEvaluator(problem, workers=2, min_cells=1).evaluate_batch(
            problem.random_assignments(5, 0), Objective.LONGEST_LINK)
        ParallelEvaluator(problem, workers=2, min_cells=1).evaluate_batch(
            problem.random_assignments(5, 0), Objective.LONGEST_LINK)
        parallel.reset_parallel_stats()
        stats = parallel_stats()
        assert stats.process_parallel_calls == 0
        assert stats.thread_parallel_calls == 0
        assert stats.shm_attaches == 0


# --------------------------------------------------------------------------- #
# Shared-memory lifecycle: no litter
# --------------------------------------------------------------------------- #


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm on this platform")
class TestNoLitter:
    def test_segments_unlinked_when_problem_collected(self):
        problem = _compiled(seed=31)
        pooled = ProcessPoolEvaluator(problem, workers=2, min_cells=1)
        pooled.evaluate_batch(problem.random_assignments(6, 0),
                              Objective.LONGEST_LINK)
        token = parallel._shared_engine_for(problem).token
        assert glob.glob(f"/dev/shm/{token}-*")
        del pooled, problem
        gc.collect()
        assert not glob.glob(f"/dev/shm/{token}-*")

    def test_close_shared_engines_sweeps_everything(self):
        problem = _compiled(seed=37)
        ProcessPoolEvaluator(problem, workers=2, min_cells=1).evaluate_batch(
            problem.random_assignments(6, 0), Objective.LONGEST_LINK)
        assert _own_shm_segments()
        parallel.close_shared_engines()
        assert not _own_shm_segments()
        # Idempotent: a second sweep and a close on an already-closed
        # engine are no-ops.
        parallel.close_shared_engines()
