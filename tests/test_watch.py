"""The live re-deployment loop: AdvisorSession.watch, its policy, the
persistent result cache, and the CLI ``make-trace`` / ``watch`` commands."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api import (
    AdvisorSession,
    ResultCache,
    WatchPolicy,
)
from repro.api.watch import (
    REASON_DEGRADATION,
    REASON_DRIFT,
    REASON_HELD,
    REASON_INITIAL,
    WatchEvent,
    json_to_float,
)
from repro.cli import main as cli_main
from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    Objective,
    PlacementConstraints,
)
from repro.netmeasure import MeasurementStream
from repro.solvers import SearchBudget, SolverResult
from repro.testing import deterministic_cost_matrix


@pytest.fixture
def watch_problem():
    costs = deterministic_cost_matrix(10, seed=21, symmetric=False)
    graph = CommunicationGraph.random_graph(7, 0.5, seed=21)
    return DeploymentProblem(graph, costs)


def drifted(costs: CostMatrix, seed: int, sigma: float) -> CostMatrix:
    rng = np.random.default_rng(seed)
    matrix = costs.as_array()
    m = matrix.shape[0]
    off_diagonal = ~np.eye(m, dtype=bool)
    matrix[off_diagonal] *= rng.lognormal(0.0, sigma, size=(m, m))[off_diagonal]
    return CostMatrix(list(costs.instance_ids), matrix)


def fast_policy(**overrides) -> WatchPolicy:
    base = dict(solver="local-search", config={"seed": 3},
                budget=SearchBudget(max_iterations=300),
                drift_threshold=0.05, degradation_threshold=0.02)
    base.update(overrides)
    return WatchPolicy(**base)


class TestWatchLoop:
    def test_initial_solve_then_hold_and_resolve(self, watch_problem):
        costs = watch_problem.costs
        revisions = [
            drifted(costs, seed=1, sigma=0.001),   # noise: held
            drifted(costs, seed=2, sigma=0.4),     # shift: re-solve
        ]
        session = AdvisorSession()
        report = session.watch(watch_problem, revisions, fast_policy())
        assert [event.reason for event in report.events] == [
            REASON_INITIAL, REASON_HELD, REASON_DRIFT]
        initial, held, resolved = report.events
        assert initial.revision == 0 and initial.resolved
        assert not initial.engine_refreshed  # first compile, not a refresh
        assert held.engine_refreshed and not held.resolved
        assert held.solve_time_s == 0.0
        assert resolved.engine_refreshed and resolved.resolved
        assert resolved.warm_start  # local-search supports warm starts
        assert report.cost == pytest.approx(
            report.problem.evaluate(report.plan))
        assert report.holds == 1 and report.resolves == 2

    def test_degradation_triggers_without_large_drift(self, watch_problem):
        costs = watch_problem.costs
        session = AdvisorSession()
        policy = fast_policy(drift_threshold=10.0,  # drift can never trigger
                             degradation_threshold=0.1)
        # A uniform 50% slowdown: every link drifts by exactly 0.5 (below
        # the drift gate) and the incumbent's cost degrades by exactly 50%.
        slower = CostMatrix(list(costs.instance_ids), costs.as_array() * 1.5)
        report = session.watch(watch_problem, [slower], policy)
        assert report.events[1].reason == REASON_DEGRADATION
        assert report.events[1].drift == pytest.approx(0.5)

    def test_policy_thresholds_gate_resolves(self, watch_problem):
        costs = watch_problem.costs
        session = AdvisorSession()
        policy = fast_policy(drift_threshold=10.0, degradation_threshold=10.0)
        revisions = [drifted(costs, seed=4, sigma=0.3)]
        report = session.watch(watch_problem, revisions, policy)
        assert report.events[1].reason == REASON_HELD
        # The held incumbent is still re-scored under the adopted costs.
        assert report.cost == pytest.approx(
            report.problem.evaluate(report.plan))
        assert report.problem.costs is revisions[0]

    def test_cold_policy_never_warm_starts(self, watch_problem):
        costs = watch_problem.costs
        session = AdvisorSession()
        report = session.watch(
            watch_problem, [drifted(costs, seed=5, sigma=0.4)],
            fast_policy(warm_start=False))
        assert all(not event.warm_start for event in report.events)

    def test_incumbent_kept_when_resolve_does_not_improve(self, watch_problem):
        costs = watch_problem.costs
        session = AdvisorSession()
        # A tiny budget makes the re-solve unlikely to beat a good warm
        # incumbent; either way the reported cost is the better of the two.
        policy = fast_policy(degradation_threshold=0.0, drift_threshold=0.0,
                             budget=SearchBudget(max_iterations=5))
        revisions = [drifted(costs, seed=6, sigma=0.01)]
        report = session.watch(watch_problem, revisions, policy)
        last = report.events[-1]
        assert last.cost <= last.incumbent_cost

    def test_watch_accepts_stream_revisions(self, watch_problem):
        costs = watch_problem.costs
        stream = MeasurementStream(costs, drift_threshold=0.05)
        revisions = stream.fold_all([
            drifted(costs, seed=7, sigma=0.001),  # absorbed by the stream
            drifted(costs, seed=8, sigma=0.3),
        ])
        assert len(revisions) == 1
        session = AdvisorSession()
        report = session.watch(watch_problem, revisions, fast_policy())
        assert len(report.events) == 2
        assert report.events[1].drift == pytest.approx(
            revisions[0].max_drift)

    def test_constrained_watch_stays_feasible(self):
        costs = deterministic_cost_matrix(9, seed=22, symmetric=False)
        graph = CommunicationGraph.ring(6)
        constraints = PlacementConstraints(pinned={0: 4},
                                           forbidden={1: {0, 2}})
        problem = DeploymentProblem(graph, costs, constraints=constraints)
        session = AdvisorSession()
        revisions = [drifted(costs, seed=9, sigma=0.3)]
        report = session.watch(problem, revisions, fast_policy())
        report.problem.check_plan(report.plan)  # pins + bans survived

    def test_session_counters(self, watch_problem):
        costs = watch_problem.costs
        session = AdvisorSession()
        revisions = [
            drifted(costs, seed=10, sigma=0.001),
            drifted(costs, seed=11, sigma=0.4),
        ]
        session.watch(watch_problem, revisions, fast_policy())
        stats = session.stats
        assert stats.cost_refreshes == 2
        assert stats.cost_recompiles == 0
        assert stats.watch_resolves == 2  # initial + drift re-solve
        assert stats.result_cache_hits == 0  # no cache configured
        assert stats.engine_cache.max_entries >= 1

    def test_report_serializes_to_json(self, watch_problem):
        session = AdvisorSession()
        report = session.watch(
            watch_problem,
            [drifted(watch_problem.costs, seed=12, sigma=0.4)],
            fast_policy())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["resolves"] == report.resolves
        assert payload["refreshes"] == report.refreshes
        assert len(payload["events"]) == len(report.events)
        assert payload["events"][0]["reason"] == REASON_INITIAL

    def test_rejects_revisions_over_a_different_allocation(self,
                                                           watch_problem):
        from repro.core.errors import ClouDiAError
        costs = watch_problem.costs
        reallocated = CostMatrix([i + 100 for i in costs.instance_ids],
                                 costs.as_array())
        session = AdvisorSession()
        with pytest.raises(ClouDiAError, match="different instance set"):
            session.watch(watch_problem, [reallocated], fast_policy())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            WatchPolicy(drift_threshold=-0.1)
        with pytest.raises(ValueError):
            WatchPolicy(degradation_threshold=-0.1)

    def test_warm_start_seeds_the_initial_solve(self, watch_problem):
        session = AdvisorSession()
        # Solve once, then hand the plan back as the deployed incumbent.
        first = session.watch(watch_problem, [], fast_policy())
        second = session.watch(watch_problem, [], fast_policy(),
                               initial_plan=first.plan)
        initial_event = second.events[0]
        assert initial_event.warm_start
        assert second.cost <= first.cost


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path, watch_problem):
        cache = ResultCache(tmp_path / "cache")
        result = SolverResult(
            plan=watch_problem.default_plan(), cost=1.25,
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.1, iterations=3, optimal=False,
        )
        fingerprint = watch_problem.fingerprint()
        assert cache.get(fingerprint, "greedy") is None
        cache.put(fingerprint, "greedy", result)
        restored = cache.get(fingerprint, "greedy")
        assert restored.cost == result.cost
        assert restored.plan.as_dict() == result.plan.as_dict()
        assert len(cache) == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)

    def test_solver_keys_are_isolated(self, tmp_path, watch_problem):
        cache = ResultCache(tmp_path)
        result = SolverResult(
            plan=watch_problem.default_plan(), cost=1.0,
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.0, iterations=1, optimal=False,
        )
        cache.put(watch_problem.fingerprint(), "greedy", result)
        assert cache.get(watch_problem.fingerprint(), "cp") is None

    def test_corrupt_entries_degrade_to_misses(self, tmp_path, watch_problem):
        cache = ResultCache(tmp_path)
        result = SolverResult(
            plan=watch_problem.default_plan(), cost=1.0,
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.0, iterations=1, optimal=False,
        )
        fingerprint = watch_problem.fingerprint()
        cache.put(fingerprint, "greedy", result)
        for entry in cache.path.glob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        assert cache.get(fingerprint, "greedy") is None

    def test_clear_removes_entries(self, tmp_path, watch_problem):
        cache = ResultCache(tmp_path)
        result = SolverResult(
            plan=watch_problem.default_plan(), cost=1.0,
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.0, iterations=1, optimal=False,
        )
        cache.put(watch_problem.fingerprint(), "greedy", result)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestPersistentWatchCache:
    def test_sibling_sessions_skip_solved_revisions(self, tmp_path,
                                                    watch_problem):
        revisions = [drifted(watch_problem.costs, seed=13, sigma=0.4)]
        first = AdvisorSession(result_cache=tmp_path / "cache")
        report = first.watch(watch_problem, revisions, fast_policy())
        assert report.resolves == 2 and report.cache_hits == 0

        second = AdvisorSession(result_cache=tmp_path / "cache")
        replay = second.watch(watch_problem, revisions, fast_policy())
        assert replay.resolves == 0
        assert replay.cache_hits == 2
        assert replay.cost == report.cost
        assert replay.plan.as_dict() == report.plan.as_dict()
        assert second.stats.result_cache_hits == 2
        assert all(event.solve_time_s == 0.0 for event in replay.events
                   if event.cache_hit)

    def test_cache_entries_are_per_fingerprint(self, tmp_path, watch_problem):
        session = AdvisorSession(result_cache=tmp_path / "cache")
        session.watch(watch_problem,
                      [drifted(watch_problem.costs, seed=14, sigma=0.4)],
                      fast_policy())
        # Two distinct fingerprints solved => two cache entries.
        assert len(session.result_cache) == 2

    def test_different_policies_do_not_share_entries(self, tmp_path,
                                                     watch_problem):
        cache_dir = tmp_path / "cache"
        first = AdvisorSession(result_cache=cache_dir)
        first.watch(watch_problem, [], fast_policy())
        # Same solver, different seed: must re-solve, not reuse seed-3's plan.
        second = AdvisorSession(result_cache=cache_dir)
        report = second.watch(watch_problem, [],
                              fast_policy(config={"seed": 99}))
        assert report.cache_hits == 0 and report.resolves == 1
        # Different budget, same seed: also a distinct cache entry.
        third = AdvisorSession(result_cache=cache_dir)
        report = third.watch(
            watch_problem, [],
            fast_policy(budget=SearchBudget(max_iterations=301)))
        assert report.cache_hits == 0 and report.resolves == 1
        # The original policy still hits its own entry.
        fourth = AdvisorSession(result_cache=cache_dir)
        assert fourth.watch(watch_problem, [], fast_policy()).cache_hits == 1

    def test_infeasible_cache_entries_are_ignored(self, tmp_path):
        costs = deterministic_cost_matrix(8, seed=23)
        graph = CommunicationGraph.ring(5)
        unconstrained = DeploymentProblem(graph, costs)
        constrained = DeploymentProblem(
            graph, costs,
            constraints=PlacementConstraints(pinned={0: 7}))
        cache = ResultCache(tmp_path)
        session = AdvisorSession(result_cache=cache)
        free_report = session.watch(unconstrained, [], fast_policy())
        if free_report.plan.instance_for(0) != 7:
            # Forge an entry under the constrained fingerprint pointing at
            # the pin-violating plan; watch must treat it as a miss.
            tag = AdvisorSession._solver_cache_tag("local-search",
                                                   fast_policy())
            cache.put(constrained.fingerprint(), tag,
                      dataclasses.replace(free_report.result))
            report = session.watch(constrained, [], fast_policy())
            assert report.plan.instance_for(0) == 7


class TestWatchCli:
    def _make_problem(self, tmp_path):
        path = tmp_path / "problem.json"
        code = cli_main([
            "make-problem", "--template", "ring", "--nodes", "6",
            "--out", str(path),
        ])
        assert code == 0
        return path

    def test_make_trace_then_watch(self, tmp_path, capsys):
        problem_path = self._make_problem(tmp_path)
        trace_path = tmp_path / "trace.json"
        code = cli_main([
            "make-trace", "--problem", str(problem_path),
            "--out", str(trace_path), "--windows", "4",
            "--spike-window", "2", "--spike-links", "3",
        ])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert len(payload["windows"]) == 4

        log_path = tmp_path / "log.json"
        code = cli_main([
            "watch", "--problem", str(problem_path),
            "--trace", str(trace_path), "--solver", "local-search",
            "--seed", "7", "--time-limit", "0.5",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(log_path),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "re-deployment log" in captured.out
        log = json.loads(log_path.read_text())
        assert len(log["events"]) == 5  # initial + 4 windows
        assert log["events"][0]["reason"] == "initial"

        # Replaying with the same cache directory skips every solve.
        code = cli_main([
            "watch", "--problem", str(problem_path),
            "--trace", str(trace_path), "--solver", "local-search",
            "--seed", "7", "--time-limit", "0.5",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "re-solves: 0" in captured.out

    def test_watch_accepts_eval_workers(self, tmp_path, capsys):
        """``watch --eval-workers`` plumbs into the session and is inert
        on results: the pooled log equals the serial log event for event."""
        problem_path = self._make_problem(tmp_path)
        trace_path = tmp_path / "trace.json"
        assert cli_main([
            "make-trace", "--problem", str(problem_path),
            "--out", str(trace_path), "--windows", "2",
            "--spike-window", "1", "--spike-links", "3",
        ]) == 0
        logs = []
        for i, workers in enumerate([[], ["--eval-workers", "procs:2"],
                                     ["--eval-workers", "2"]]):
            log_path = tmp_path / f"log{i}.json"
            code = cli_main([
                "watch", "--problem", str(problem_path),
                "--trace", str(trace_path), "--solver", "greedy",
                "--out", str(log_path), *workers,
            ])
            capsys.readouterr()
            assert code == 0
            logs.append(json.loads(log_path.read_text()))

        def stable(log):
            return [(e["revision"], e["reason"], e["cost"], e["resolved"],
                     e["redeployed"]) for e in log["events"]]

        serial, procs, threads = logs
        assert procs["plan"] == serial["plan"]
        assert threads["plan"] == serial["plan"]
        assert stable(procs) == stable(serial)
        assert stable(threads) == stable(serial)

    def test_watch_rejects_bad_eval_workers(self, tmp_path, capsys):
        problem_path = self._make_problem(tmp_path)
        code = cli_main([
            "watch", "--problem", str(problem_path),
            "--trace", str(problem_path), "--eval-workers", "procs:zero",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_watch_rejects_malformed_trace(self, tmp_path, capsys):
        problem_path = self._make_problem(tmp_path)
        bad_trace = tmp_path / "bad.json"
        bad_trace.write_text(json.dumps({"nope": []}))
        code = cli_main([
            "watch", "--problem", str(problem_path),
            "--trace", str(bad_trace),
        ])
        assert code == 2
        assert "windows" in capsys.readouterr().err

    def test_make_trace_without_spikes(self, tmp_path, capsys):
        problem_path = self._make_problem(tmp_path)
        trace_path = tmp_path / "quiet.json"
        code = cli_main([
            "make-trace", "--problem", str(problem_path),
            "--out", str(trace_path), "--windows", "2",
            "--spike-window", "-1",
        ])
        assert code == 0
        assert "re-deployment trace" in capsys.readouterr().out


class TestStrictJsonLogs:
    """Regression: non-finite floats must never reach a JSON artifact."""

    def test_initial_incumbent_cost_serializes_as_null(self, watch_problem):
        session = AdvisorSession()
        report = session.watch(watch_problem, [], fast_policy())
        initial = report.events[0]
        assert initial.incumbent_cost == float("inf")  # no plan stood yet
        payload = initial.to_dict()
        assert payload["incumbent_cost"] is None
        # The whole report passes the strict serializer the CLI now uses.
        encoded = json.dumps(report.to_dict(), allow_nan=False)
        assert "Infinity" not in encoded and "NaN" not in encoded

    def test_infinite_drift_serializes_as_null(self):
        event = WatchEvent(
            revision=1, reason=REASON_DRIFT, drift=float("inf"),
            refresh_time_s=0.0, engine_refreshed=True,
            incumbent_cost=2.0, resolved=True, cache_hit=False,
            warm_start=True, solve_time_s=0.1, cost=float("nan"),
            redeployed=True, solver="local-search", fingerprint="f",
        )
        payload = event.to_dict()
        assert payload["drift"] is None
        assert payload["cost"] is None
        json.dumps(payload, allow_nan=False)

    def test_from_dict_restores_non_finite_floats(self, watch_problem):
        session = AdvisorSession()
        report = session.watch(
            watch_problem, [drifted(watch_problem.costs, 5, 0.4)],
            fast_policy())
        for event in report.events:
            clone = WatchEvent.from_dict(
                json.loads(json.dumps(event.to_dict(), allow_nan=False)))
            assert clone == event

    def test_json_to_float_inverts_null(self):
        assert json_to_float(None) == float("inf")
        assert json_to_float(1.5) == 1.5


class TestCacheTempFileHygiene:
    """Regression: ``put`` failures must not leak ``.write-*`` litter."""

    def _unserializable_result(self, watch_problem):
        return SolverResult(
            plan=watch_problem.default_plan(), cost=object(),  # type: ignore[arg-type]
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.0, iterations=1, optimal=False,
        )

    def test_failed_dump_leaves_no_temp_file(self, tmp_path, watch_problem):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(TypeError):
            cache.put(watch_problem.fingerprint(), "greedy",
                      self._unserializable_result(watch_problem))
        assert list(cache.path.glob(".write-*")) == []
        assert len(cache) == 0

    def test_non_finite_result_rejected_without_litter(self, tmp_path,
                                                       watch_problem):
        cache = ResultCache(tmp_path / "cache")
        bad = SolverResult(
            plan=watch_problem.default_plan(), cost=float("inf"),
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.0, iterations=1, optimal=False,
        )
        with pytest.raises(ValueError):
            cache.put(watch_problem.fingerprint(), "greedy", bad)
        assert list(cache.path.glob(".write-*")) == []

    def test_cache_still_works_after_failed_put(self, tmp_path,
                                                watch_problem):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(TypeError):
            cache.put(watch_problem.fingerprint(), "greedy",
                      self._unserializable_result(watch_problem))
        good = SolverResult(
            plan=watch_problem.default_plan(), cost=1.0,
            objective=Objective.LONGEST_LINK, solver_name="G2",
            solve_time_s=0.0, iterations=1, optimal=False,
        )
        cache.put(watch_problem.fingerprint(), "greedy", good)
        assert cache.get(watch_problem.fingerprint(), "greedy").cost == 1.0

    def test_stale_litter_swept_on_open(self, tmp_path):
        import os as _os
        import time as _time
        directory = tmp_path / "cache"
        directory.mkdir()
        stale = directory / ".write-stale.json"
        stale.write_text("{", encoding="utf-8")
        _os.utime(stale, (1.0, 1.0))  # ancient: a crashed writer's litter
        fresh = directory / ".write-fresh.json"
        fresh.write_text("{", encoding="utf-8")
        now = _time.time()
        _os.utime(fresh, (now, now))  # recent: may be a live sibling write
        ResultCache(directory)
        assert not stale.exists()
        assert fresh.exists()
