"""The fair scheduler: priorities, deficit round-robin, coalescing,
back-pressure, the job table, and the metrics reservoir."""

from __future__ import annotations

import threading

import pytest

from repro.api import SolveRequest
from repro.core import CommunicationGraph, DeploymentProblem
from repro.core.errors import ClouDiAError
from repro.serve import (
    PRIORITY_BATCH,
    PRIORITY_DRIFT,
    PRIORITY_INTERACTIVE,
    FairScheduler,
    Job,
    JobTable,
    LatencyReservoir,
    QueueFullError,
    SchedulerClosedError,
    coalesce_key,
    parse_priority,
)
from repro.solvers.registry import default_registry
from repro.testing import deterministic_cost_matrix


def make_problem(seed=0):
    return DeploymentProblem(CommunicationGraph.ring(5),
                             deterministic_cost_matrix(7, seed=seed))


def make_job(scheduler, tenant="public", priority=PRIORITY_INTERACTIVE,
             seed=0, solver="local-search", config=None):
    request = SolveRequest(problem=make_problem(seed), solver=solver,
                           config=config or {})
    fingerprint, tag = coalesce_key(default_registry, request)
    return Job(job_id=scheduler.new_job_id(), tenant=tenant,
               priority=priority, request=request,
               fingerprint=fingerprint, cache_tag=tag)


def drain(scheduler):
    jobs = []
    while True:
        job = scheduler.next_job(timeout=0)
        if job is None:
            return jobs
        job.finish()
        scheduler.complete(job)
        jobs.append(job)


class TestPriorities:
    def test_parse_priority_names_and_ints(self):
        assert parse_priority("drift") == PRIORITY_DRIFT
        assert parse_priority("interactive") == PRIORITY_INTERACTIVE
        assert parse_priority("batch") == PRIORITY_BATCH
        assert parse_priority(None, PRIORITY_BATCH) == PRIORITY_BATCH
        assert parse_priority(0) == PRIORITY_DRIFT
        with pytest.raises(ClouDiAError):
            parse_priority("urgent")
        with pytest.raises(ClouDiAError):
            parse_priority(7)

    def test_drift_resolve_preempts_earlier_batch_backfill(self):
        # The acceptance scenario: batch jobs are queued first, a drift
        # re-solve arrives later — and is still dequeued first.
        scheduler = FairScheduler()
        batch = [make_job(scheduler, priority=PRIORITY_BATCH, seed=index)
                 for index in range(3)]
        for job in batch:
            scheduler.submit(job)
        interactive = make_job(scheduler, priority=PRIORITY_INTERACTIVE,
                               seed=10)
        drift = make_job(scheduler, priority=PRIORITY_DRIFT, seed=11)
        scheduler.submit(interactive)
        scheduler.submit(drift)

        order = drain(scheduler)
        assert order[0] is drift
        assert order[1] is interactive
        assert order[2:] == batch

    def test_priority_classes_drain_in_order(self):
        scheduler = FairScheduler()
        jobs = {}
        for priority in (PRIORITY_BATCH, PRIORITY_DRIFT,
                         PRIORITY_INTERACTIVE):
            jobs[priority] = make_job(scheduler, priority=priority,
                                      seed=priority)
            scheduler.submit(jobs[priority])
        order = [job.priority for job in drain(scheduler)]
        assert order == sorted(order)


class TestFairness:
    def test_two_tenant_flood_interleaves(self):
        # Tenant "whale" floods the queue before "minnow" submits at all;
        # round-robin still alternates them, so the minnow's 5 jobs are
        # all served within the first 10 dequeues instead of waiting
        # behind the whale's 20.
        scheduler = FairScheduler(max_queue=100)
        for index in range(20):
            scheduler.submit(make_job(scheduler, tenant="whale", seed=index))
        for index in range(5):
            scheduler.submit(make_job(scheduler, tenant="minnow",
                                      seed=100 + index))
        first_ten = [scheduler.next_job(timeout=0).tenant
                     for _ in range(10)]
        assert first_ten.count("minnow") == 5
        assert first_ten.count("whale") == 5

    def test_weighted_tenant_gets_proportional_share(self):
        scheduler = FairScheduler(max_queue=100,
                                  tenant_weights={"gold": 2.0})
        for index in range(12):
            scheduler.submit(make_job(scheduler, tenant="gold", seed=index))
            scheduler.submit(make_job(scheduler, tenant="basic",
                                      seed=100 + index))
        first_nine = [scheduler.next_job(timeout=0).tenant
                      for _ in range(9)]
        # Weight 2 vs 1: gold is served twice per cycle.
        assert first_nine.count("gold") == 6
        assert first_nine.count("basic") == 3

    def test_fractional_weight_throttles_tenant(self):
        scheduler = FairScheduler(max_queue=100,
                                  tenant_weights={"slow": 0.5})
        for index in range(6):
            scheduler.submit(make_job(scheduler, tenant="slow", seed=index))
            scheduler.submit(make_job(scheduler, tenant="fast",
                                      seed=100 + index))
        first_six = [scheduler.next_job(timeout=0).tenant for _ in range(6)]
        assert first_six.count("fast") == 4
        assert first_six.count("slow") == 2

    def test_drained_tenant_loses_residual_credit(self):
        scheduler = FairScheduler(max_queue=100,
                                  tenant_weights={"burst": 5.0})
        scheduler.submit(make_job(scheduler, tenant="burst", seed=0))
        scheduler.submit(make_job(scheduler, tenant="steady", seed=1))
        assert scheduler.next_job(timeout=0).tenant == "burst"
        # The burst tenant drained; its 4 leftover credits must not let a
        # later submission jump the steady tenant.
        scheduler.submit(make_job(scheduler, tenant="burst", seed=2))
        remaining = [scheduler.next_job(timeout=0).tenant for _ in range(2)]
        assert "steady" in remaining

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(tenant_weights={"t": 0.0})
        with pytest.raises(ValueError):
            FairScheduler(default_weight=-1.0)
        with pytest.raises(ValueError):
            FairScheduler(max_queue=0)


class TestCoalescing:
    def test_identical_submissions_share_one_job(self):
        scheduler = FairScheduler()
        first = make_job(scheduler, seed=5)
        second = make_job(scheduler, seed=5)
        assert first.key == second.key
        job_a, coalesced_a = scheduler.submit(first)
        job_b, coalesced_b = scheduler.submit(second)
        assert not coalesced_a and coalesced_b
        assert job_b is job_a
        assert job_a.attached == 2
        assert scheduler.stats.coalesced == 1
        # Only one job is actually queued.
        assert scheduler.depth() == 1

    def test_different_config_does_not_coalesce(self):
        scheduler = FairScheduler()
        first = make_job(scheduler, seed=5, config={"seed": 1})
        second = make_job(scheduler, seed=5, config={"seed": 2})
        assert first.key != second.key
        _, coalesced_a = scheduler.submit(first)
        _, coalesced_b = scheduler.submit(second)
        assert not coalesced_a and not coalesced_b
        assert scheduler.depth() == 2

    def test_running_job_still_coalesces_until_completed(self):
        scheduler = FairScheduler()
        primary = make_job(scheduler, seed=5)
        scheduler.submit(primary)
        running = scheduler.next_job(timeout=0)
        assert running is primary
        # Still in-flight (executing): an identical submission attaches.
        follower = make_job(scheduler, seed=5)
        job, coalesced = scheduler.submit(follower)
        assert coalesced and job is primary
        primary.finish()
        scheduler.complete(primary)
        # Retired: the next identical submission queues fresh.
        third = make_job(scheduler, seed=5)
        job, coalesced = scheduler.submit(third)
        assert not coalesced and job is third

    def test_urgent_twin_promotes_queued_job(self):
        # A drift-priority twin of a queued batch job must not wait at
        # batch priority: the queued job is re-filed under drift.
        scheduler = FairScheduler()
        blocker = make_job(scheduler, priority=PRIORITY_BATCH, seed=1)
        target = make_job(scheduler, priority=PRIORITY_BATCH, seed=2)
        scheduler.submit(blocker)
        scheduler.submit(target)
        twin = make_job(scheduler, priority=PRIORITY_DRIFT, seed=2)
        job, coalesced = scheduler.submit(twin)
        assert coalesced and job is target
        assert target.priority == PRIORITY_DRIFT
        # The promoted job jumps the earlier batch submission.
        assert scheduler.next_job(timeout=0) is target
        assert scheduler.next_job(timeout=0) is blocker

    def test_less_urgent_twin_does_not_demote(self):
        scheduler = FairScheduler()
        target = make_job(scheduler, priority=PRIORITY_INTERACTIVE, seed=2)
        scheduler.submit(target)
        twin = make_job(scheduler, priority=PRIORITY_BATCH, seed=2)
        job, coalesced = scheduler.submit(twin)
        assert coalesced and job is target
        assert target.priority == PRIORITY_INTERACTIVE

    def test_urgent_twin_of_running_job_is_a_noop(self):
        scheduler = FairScheduler()
        target = make_job(scheduler, priority=PRIORITY_BATCH, seed=2)
        scheduler.submit(target)
        assert scheduler.next_job(timeout=0) is target
        twin = make_job(scheduler, priority=PRIORITY_DRIFT, seed=2)
        job, coalesced = scheduler.submit(twin)
        assert coalesced and job is target
        # Already dequeued: execution cannot be expedited.
        assert target.priority == PRIORITY_BATCH

    def test_promotion_cleans_up_drained_priority_class(self):
        scheduler = FairScheduler()
        target = make_job(scheduler, priority=PRIORITY_BATCH, seed=2)
        scheduler.submit(target)
        scheduler.submit(make_job(scheduler, priority=PRIORITY_DRIFT,
                                  seed=2))
        assert target.priority == PRIORITY_DRIFT
        # The batch class's tenant bookkeeping was cleaned: later batch
        # submissions still schedule normally.
        later = make_job(scheduler, priority=PRIORITY_BATCH, seed=3)
        scheduler.submit(later)
        assert scheduler.next_job(timeout=0) is target
        assert scheduler.next_job(timeout=0) is later
        assert scheduler.next_job(timeout=0) is None

    def test_coalesced_waiters_all_wake(self):
        scheduler = FairScheduler()
        primary = make_job(scheduler, seed=5)
        scheduler.submit(primary)
        attached, _ = scheduler.submit(make_job(scheduler, seed=5))
        seen = []

        def wait():
            attached.wait(5.0)
            seen.append(attached.status)

        threads = [threading.Thread(target=wait) for _ in range(3)]
        for thread in threads:
            thread.start()
        job = scheduler.next_job(timeout=0)
        job.finish()
        scheduler.complete(job)
        for thread in threads:
            thread.join(5.0)
        assert seen == ["done", "done", "done"]


class TestBackpressure:
    def test_queue_bound_rejects(self):
        scheduler = FairScheduler(max_queue=2)
        scheduler.submit(make_job(scheduler, seed=0))
        scheduler.submit(make_job(scheduler, seed=1))
        with pytest.raises(QueueFullError):
            scheduler.submit(make_job(scheduler, seed=2))
        assert scheduler.stats.rejected == 1
        # Coalescing does not consume queue slots: an identical twin of a
        # queued job is accepted even at the bound.
        job, coalesced = scheduler.submit(make_job(scheduler, seed=1))
        assert coalesced

    def test_closed_scheduler_rejects_but_drains(self):
        scheduler = FairScheduler()
        queued = make_job(scheduler, seed=0)
        scheduler.submit(queued)
        scheduler.close()
        with pytest.raises(SchedulerClosedError):
            scheduler.submit(make_job(scheduler, seed=1))
        # Queued work still drains, then next_job signals exit with None.
        assert scheduler.next_job(timeout=0) is queued
        assert scheduler.next_job(timeout=0) is None

    def test_next_job_times_out_empty(self):
        scheduler = FairScheduler()
        assert scheduler.next_job(timeout=0.01) is None


class TestJobTable:
    def test_active_then_retire_then_lru_eviction(self):
        scheduler = FairScheduler()
        table = JobTable(max_finished=2)
        jobs = [make_job(scheduler, seed=index) for index in range(3)]
        for job in jobs:
            table.add(job)
        assert len(table) == 3
        for job in jobs:
            job.finish()
            table.retire(job)
        # Bounded LRU: the oldest finished job fell out.
        assert table.get(jobs[0].job_id) is None
        assert table.get(jobs[1].job_id) is jobs[1]
        assert table.get(jobs[2].job_id) is jobs[2]
        assert len(table) == 2

    def test_job_to_dict_roundtrips_status(self):
        scheduler = FairScheduler()
        job = make_job(scheduler, tenant="acme", priority=PRIORITY_DRIFT)
        payload = job.to_dict()
        assert payload["tenant"] == "acme"
        assert payload["priority"] == "drift"
        assert payload["status"] == "queued"
        assert "response" not in payload
        job.finish(error="boom")
        payload = job.to_dict()
        assert payload["status"] == "error"
        assert payload["error"] == "boom"


class TestLatencyReservoir:
    def test_percentiles_over_window(self):
        reservoir = LatencyReservoir(max_samples=100)
        for value in range(1, 101):
            reservoir.record(value / 100.0)
        snapshot = reservoir.to_dict()
        assert snapshot["count"] == 100
        assert snapshot["p50_s"] == pytest.approx(0.5, abs=0.02)
        assert snapshot["p99_s"] == pytest.approx(0.99, abs=0.02)

    def test_empty_reservoir_serialises_none(self):
        snapshot = LatencyReservoir().to_dict()
        assert snapshot["count"] == 0
        assert snapshot["p50_s"] is None
