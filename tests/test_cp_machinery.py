"""Tests for the CP building blocks: domains, alldifferent, labeling."""

import numpy as np
import pytest

from repro.core import CommunicationGraph
from repro.core.errors import SolverError
from repro.solvers.cp.alldifferent import (
    matching_feasible,
    propagate_assignment,
    prune_singletons,
)
from repro.solvers.cp.domains import DomainStore
from repro.solvers.cp.labeling import (
    compatibility_domains,
    quick_infeasibility_check,
    threshold_degrees,
)


class TestDomainStore:
    def test_initial_state(self):
        store = DomainStore({"a": {1, 2}, "b": {3}})
        assert store.size("a") == 2
        assert store.is_assigned("b")
        assert store.value("b") == 3
        assert store.unassigned() == ["a"]
        assert not store.all_assigned()

    def test_empty_initial_domain_rejected(self):
        with pytest.raises(SolverError):
            DomainStore({"a": set()})

    def test_no_variables_rejected(self):
        with pytest.raises(SolverError):
            DomainStore({})

    def test_value_of_unassigned_raises(self):
        store = DomainStore({"a": {1, 2}})
        with pytest.raises(SolverError):
            store.value("a")

    def test_remove_and_wipeout(self):
        store = DomainStore({"a": {1, 2}})
        assert store.remove("a", 1)
        assert not store.remove("a", 2)  # wipeout
        assert store.size("a") == 0

    def test_remove_missing_value_is_noop(self):
        store = DomainStore({"a": {1}})
        assert store.remove("a", 99)
        assert store.size("a") == 1

    def test_assign(self):
        store = DomainStore({"a": {1, 2, 3}})
        assert store.assign("a", 2)
        assert store.value("a") == 2
        assert not store.assign("a", 3)  # 3 was already pruned

    def test_restrict(self):
        store = DomainStore({"a": {1, 2, 3, 4}})
        assert store.restrict("a", {2, 4})
        assert store.domain("a") == {2, 4}
        assert not store.restrict("a", {9})

    def test_checkpoint_restore(self):
        store = DomainStore({"a": {1, 2, 3}, "b": {1, 2}})
        mark = store.checkpoint()
        store.assign("a", 1)
        store.remove("b", 1)
        assert store.size("a") == 1 and store.size("b") == 1
        store.restore(mark)
        assert store.domain("a") == {1, 2, 3}
        assert store.domain("b") == {1, 2}

    def test_nested_checkpoints(self):
        store = DomainStore({"a": {1, 2, 3}})
        outer = store.checkpoint()
        store.remove("a", 1)
        inner = store.checkpoint()
        store.remove("a", 2)
        store.restore(inner)
        assert store.domain("a") == {2, 3}
        store.restore(outer)
        assert store.domain("a") == {1, 2, 3}


class TestAlldifferent:
    def test_propagate_assignment_removes_value(self):
        store = DomainStore({"a": {1}, "b": {1, 2}, "c": {1, 3}})
        assert propagate_assignment(store, "a", 1)
        assert store.domain("b") == {2}
        assert store.domain("c") == {3}

    def test_propagate_assignment_detects_wipeout(self):
        store = DomainStore({"a": {1}, "b": {1}})
        assert not propagate_assignment(store, "a", 1)

    def test_matching_feasible_positive(self):
        assert matching_feasible({"a": [1, 2], "b": [2, 3], "c": [1, 3]})

    def test_matching_feasible_negative(self):
        # Three variables squeezed into two values (a Hall violation).
        assert not matching_feasible({"a": [1, 2], "b": [1, 2], "c": [1, 2]})

    def test_matching_feasible_empty_domain(self):
        assert not matching_feasible({"a": [], "b": [1]})

    def test_prune_singletons_cascades(self):
        # Assigning a triggers b, which triggers c.
        store = DomainStore({"a": {1}, "b": {1, 2}, "c": {2, 3}})
        assert prune_singletons(store)
        assert store.value("b") == 2
        assert store.value("c") == 3

    def test_prune_singletons_detects_wipeout(self):
        store = DomainStore({"a": {1}, "b": {1}})
        assert not prune_singletons(store)


class TestLabeling:
    def _allowed(self, n, edges):
        allowed = np.zeros((n, n), dtype=bool)
        for a, b in edges:
            allowed[a, b] = True
        return allowed

    def test_threshold_degrees(self):
        allowed = self._allowed(3, [(0, 1), (1, 0), (0, 2)])
        degrees = threshold_degrees(allowed)
        assert degrees["out"][0] == 2
        assert degrees["in"][2] == 1
        assert degrees["undirected"][0] == 2

    def test_compatibility_filters_by_degree(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 0), (1, 2), (2, 1)])
        # Instance graph: 0-1-2-3 path (bidirectional), instance 3 pendant.
        allowed = self._allowed(
            4, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]
        )
        domains = compatibility_domains(graph, allowed)
        # Node 1 has (undirected) degree 2, so it cannot map to the pendant
        # instances 0 and 3.
        assert domains[1] <= {1, 2}
        # Degree-1 nodes can map anywhere compatible.
        assert 0 in domains[0] or 3 in domains[0]

    def test_quick_infeasibility_not_enough_instances(self):
        graph = CommunicationGraph.mesh_2d(2, 2)
        allowed = self._allowed(3, [(0, 1), (1, 0)])
        assert not quick_infeasibility_check(graph, allowed)

    def test_quick_infeasibility_not_enough_edges(self):
        graph = CommunicationGraph.complete(4)
        allowed = self._allowed(5, [(0, 1), (1, 0)])
        assert not quick_infeasibility_check(graph, allowed)

    def test_quick_infeasibility_passes_complete_graph(self):
        graph = CommunicationGraph.mesh_2d(2, 2)
        n = 5
        allowed = np.ones((n, n), dtype=bool)
        np.fill_diagonal(allowed, False)
        assert quick_infeasibility_check(graph, allowed)
