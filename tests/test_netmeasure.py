"""Tests for interference, probing and the three measurement schemes."""

import numpy as np
import pytest

from repro.core import LatencyMetric
from repro.core.errors import MeasurementError
from repro.netmeasure import (
    NO_INTERFERENCE,
    InterferenceModel,
    MeasurementResult,
    ProbeEngine,
    StagedMeasurement,
    TokenPassingMeasurement,
    UncoordinatedMeasurement,
    all_ordered_pairs,
    relative_error_cdf_input,
    rmse_convergence,
    round_robin_pairings,
)


class TestInterferenceModel:
    def test_no_interference_for_disjoint_probes(self):
        model = InterferenceModel(per_flow_penalty_ms=0.5)
        probes = [(0, 1), (2, 3)]
        load = model.endpoint_load(probes)
        assert model.observed_rtt((0, 1), 1.0, load) == pytest.approx(1.0)

    def test_shared_destination_inflates(self):
        model = InterferenceModel(per_flow_penalty_ms=0.5, self_collision_factor=1.0)
        probes = [(0, 2), (1, 2)]
        load = model.endpoint_load(probes)
        assert model.observed_rtt((0, 2), 1.0, load) == pytest.approx(1.5)

    def test_sender_also_receiving_inflates(self):
        model = InterferenceModel(per_flow_penalty_ms=0.5, self_collision_factor=1.0)
        probes = [(0, 1), (1, 0)]
        load = model.endpoint_load(probes)
        # Each endpoint carries two flows: +0.5 at each end of the probe.
        assert model.observed_rtt((0, 1), 1.0, load) == pytest.approx(2.0)

    def test_no_interference_model_is_identity(self):
        probes = [(0, 1), (1, 0), (2, 1)]
        load = NO_INTERFERENCE.endpoint_load(probes)
        assert NO_INTERFERENCE.observed_rtt((0, 1), 0.7, load) == pytest.approx(0.7)

    def test_batch_observations_length(self):
        model = InterferenceModel()
        batch = [((0, 1), 1.0), ((2, 3), 0.5)]
        assert len(model.batch_observations(batch)) == 2


class TestPairingHelpers:
    def test_all_ordered_pairs(self):
        pairs = all_ordered_pairs([1, 2, 3])
        assert len(pairs) == 6
        assert (1, 2) in pairs and (2, 1) in pairs

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 9])
    def test_round_robin_covers_all_unordered_pairs(self, n):
        ids = list(range(n))
        rounds = round_robin_pairings(ids)
        seen = set()
        for stage in rounds:
            endpoints = [x for pair in stage for x in pair]
            # No instance appears twice within a stage.
            assert len(endpoints) == len(set(endpoints))
            for a, b in stage:
                seen.add(frozenset((a, b)))
        expected = {frozenset((a, b)) for a in ids for b in ids if a < b}
        assert seen == expected


class TestProbeEngine:
    def test_records_samples_and_advances_clock(self, small_cloud):
        ids = [inst.instance_id for inst in small_cloud.allocate(4)]
        result = MeasurementResult(scheme="test", instance_ids=tuple(ids))
        engine = ProbeEngine(small_cloud, result, rng=0)
        engine.run_batch([(ids[0], ids[1]), (ids[2], ids[3])], repetitions=3)
        assert result.num_probes == 6
        assert result.sample_count((ids[0], ids[1])) == 3
        assert engine.clock_ms > 0
        assert result.elapsed_ms == engine.clock_ms

    def test_invalid_repetitions(self, small_cloud):
        ids = [inst.instance_id for inst in small_cloud.allocate(2)]
        result = MeasurementResult(scheme="test", instance_ids=tuple(ids))
        engine = ProbeEngine(small_cloud, result, rng=0)
        with pytest.raises(MeasurementError):
            engine.run_batch([(ids[0], ids[1])], repetitions=0)

    def test_advance_rejects_negative(self, small_cloud):
        ids = [inst.instance_id for inst in small_cloud.allocate(2)]
        result = MeasurementResult(scheme="test", instance_ids=tuple(ids))
        engine = ProbeEngine(small_cloud, result, rng=0)
        with pytest.raises(MeasurementError):
            engine.advance(-1.0)


@pytest.fixture
def measured_cloud(small_cloud):
    ids = [inst.instance_id for inst in small_cloud.allocate(10)]
    return small_cloud, ids


class TestSchemes:
    def test_token_passing_covers_all_links(self, measured_cloud):
        cloud, ids = measured_cloud
        result = TokenPassingMeasurement(seed=0).measure(cloud, ids,
                                                         target_samples_per_link=3)
        assert result.min_samples_per_link() >= 3
        assert result.scheme == "token-passing"

    def test_staged_covers_all_links_faster_than_token(self, measured_cloud):
        cloud, ids = measured_cloud
        token = TokenPassingMeasurement(seed=0).measure(cloud, ids,
                                                        target_samples_per_link=5)
        staged = StagedMeasurement(seed=0).measure(cloud, ids,
                                                   target_samples_per_link=5)
        assert staged.min_samples_per_link() >= 5
        # Parallelism: the staged scheme needs far less simulated time.
        assert staged.elapsed_ms < token.elapsed_ms / 2

    def test_uncoordinated_is_parallel_but_noisier(self, measured_cloud):
        cloud, ids = measured_cloud
        truth = cloud.true_cost_matrix(ids)
        staged = StagedMeasurement(seed=1).measure(cloud, ids,
                                                   target_samples_per_link=12)
        uncoordinated = UncoordinatedMeasurement(seed=1).measure(
            cloud, ids, target_samples_per_link=12
        )
        staged_error = np.median(
            relative_error_cdf_input(staged.to_cost_matrix(), truth)
        )
        uncoordinated_error = np.median(
            relative_error_cdf_input(uncoordinated.to_cost_matrix(), truth)
        )
        assert staged_error < uncoordinated_error

    def test_duration_cap_respected(self, measured_cloud):
        cloud, ids = measured_cloud
        result = StagedMeasurement(seed=0).measure(cloud, ids,
                                                   target_samples_per_link=50,
                                                   max_duration_ms=50.0)
        assert result.elapsed_ms <= 200.0

    def test_minimum_two_instances(self, measured_cloud):
        cloud, ids = measured_cloud
        with pytest.raises(MeasurementError):
            StagedMeasurement().measure(cloud, ids[:1])

    def test_duplicate_instances_rejected(self, measured_cloud):
        cloud, ids = measured_cloud
        with pytest.raises(MeasurementError):
            TokenPassingMeasurement().measure(cloud, [ids[0], ids[0]])

    def test_invalid_ks(self):
        with pytest.raises(ValueError):
            StagedMeasurement(samples_per_stage=0)


class TestEstimator:
    def test_cost_matrix_from_measurement(self, measured_cloud):
        cloud, ids = measured_cloud
        result = StagedMeasurement(seed=2).measure(cloud, ids,
                                                   target_samples_per_link=8)
        matrix = result.to_cost_matrix(LatencyMetric.MEAN)
        truth = cloud.true_cost_matrix(ids)
        errors = relative_error_cdf_input(matrix, truth)
        # Most links should be estimated within ~40 % after a few samples.
        assert np.median(errors) < 0.4

    def test_partial_matrix_requires_coverage(self, measured_cloud):
        cloud, ids = measured_cloud
        result = StagedMeasurement(seed=0).measure(cloud, ids,
                                                   target_samples_per_link=5)
        with pytest.raises(MeasurementError):
            result.to_cost_matrix(until_ms=1e-6)

    def test_rmse_convergence_decreases(self, measured_cloud):
        cloud, ids = measured_cloud
        result = StagedMeasurement(seed=3).measure(cloud, ids,
                                                   target_samples_per_link=40)
        reference = result.to_cost_matrix()
        checkpoints = np.linspace(result.elapsed_ms * 0.2, result.elapsed_ms, 5)
        curve = rmse_convergence(result, reference, checkpoints)
        assert len(curve) >= 3
        assert curve[-1][1] <= curve[0][1]
        assert curve[-1][1] == pytest.approx(0.0, abs=1e-9)

    def test_record_and_counts(self):
        result = MeasurementResult(scheme="x", instance_ids=(0, 1))
        result.record((0, 1), 1.0, 0.5)
        result.record((0, 1), 2.0, 0.6)
        assert result.sample_count((0, 1)) == 2
        assert result.rtt_values((0, 1), until_ms=1.5) == [0.5]
        assert result.min_samples_per_link() == 0  # link (1, 0) never observed
