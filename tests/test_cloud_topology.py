"""Tests for the simulated datacenter topology."""

import pytest

from repro.cloud import DatacenterTopology
from repro.core.errors import AllocationError


class TestTopology:
    def test_host_count(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=3, hosts_per_rack=4)
        assert topology.num_hosts == 24
        assert topology.num_racks == 6

    def test_invalid_dimensions(self):
        with pytest.raises(AllocationError):
            DatacenterTopology(num_pods=0)

    def test_invalid_ip_assignment(self):
        with pytest.raises(AllocationError):
            DatacenterTopology(ip_assignment="nonsense")

    def test_host_lookup(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=2, hosts_per_rack=2)
        host = topology.host(5)
        assert host.host_id == 5
        with pytest.raises(AllocationError):
            topology.host(999)

    def test_rack_and_pod_structure(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=2, hosts_per_rack=3)
        # Hosts 0..2 are rack 0 / pod 0; hosts 6..8 are rack 2 / pod 1.
        assert topology.host(0).rack_id == 0 and topology.host(0).pod_id == 0
        assert topology.host(7).rack_id == 2 and topology.host(7).pod_id == 1

    def test_locality_classes(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=2, hosts_per_rack=2)
        assert topology.locality(0, 0) == "same_host"
        assert topology.locality(0, 1) == "same_rack"
        assert topology.locality(0, 2) == "same_pod"
        assert topology.locality(0, 4) == "cross_pod"

    def test_hop_counts_monotone_in_locality(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=2, hosts_per_rack=2)
        assert topology.hop_count(0, 0) == 0
        assert topology.hop_count(0, 1) < topology.hop_count(0, 2)
        assert topology.hop_count(0, 2) < topology.hop_count(0, 4)

    def test_hop_count_symmetric(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=3, hosts_per_rack=4)
        for a, b in [(0, 5), (3, 20), (1, 23)]:
            assert topology.hop_count(a, b) == topology.hop_count(b, a)

    def test_private_ips_unique_and_valid(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=2, hosts_per_rack=8,
                                      seed=1)
        ips = [topology.private_ip(h.host_id) for h in topology.hosts()]
        assert len(set(ips)) == len(ips)
        for ip in ips:
            octets = [int(part) for part in ip.split(".")]
            assert len(octets) == 4
            assert octets[0] == 10
            assert all(0 <= octet <= 255 for octet in octets)

    def test_scattered_ips_decouple_from_racks(self):
        """With scattered assignment, same-rack hosts rarely share a /24."""
        topology = DatacenterTopology(num_pods=4, racks_per_pod=4, hosts_per_rack=8,
                                      ip_assignment="scattered", seed=3)
        same_rack_same_24 = 0
        same_rack_pairs = 0
        for a in topology.hosts():
            for b in topology.hosts():
                if a.host_id < b.host_id and a.rack_id == b.rack_id:
                    same_rack_pairs += 1
                    prefix_a = topology.private_ip(a.host_id).rsplit(".", 1)[0]
                    prefix_b = topology.private_ip(b.host_id).rsplit(".", 1)[0]
                    if prefix_a == prefix_b:
                        same_rack_same_24 += 1
        assert same_rack_same_24 / same_rack_pairs < 0.2

    def test_topological_ips_follow_racks(self):
        topology = DatacenterTopology(num_pods=2, racks_per_pod=2, hosts_per_rack=4,
                                      ip_assignment="topological")
        # Hosts in the same rack share their /24 prefix.
        prefix_0 = topology.private_ip(0).rsplit(".", 1)[0]
        prefix_1 = topology.private_ip(1).rsplit(".", 1)[0]
        assert prefix_0 == prefix_1

    def test_deterministic_given_seed(self):
        a = DatacenterTopology(seed=5)
        b = DatacenterTopology(seed=5)
        assert [a.private_ip(h.host_id) for h in a.hosts()] == \
            [b.private_ip(h.host_id) for h in b.hosts()]
