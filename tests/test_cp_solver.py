"""Tests for the iterative CP longest-link solver."""

import pytest

from repro.core import CommunicationGraph, Objective
from repro.core.objectives import longest_link_cost
from repro.solvers import CPLongestLinkSolver, GreedyG2, RandomSearch, SearchBudget

from conftest import brute_force_optimum, deterministic_cost_matrix


class TestCPLongestLinkSolver:
    def test_matches_brute_force_on_tiny_instance(self):
        graph = CommunicationGraph.ring(4)
        costs = deterministic_cost_matrix(6, seed=1)
        _, optimal_cost = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        result = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        assert result.cost == pytest.approx(optimal_cost, abs=1e-9)
        assert result.optimal

    def test_matches_brute_force_on_mesh(self):
        graph = CommunicationGraph.mesh_2d(2, 3)
        costs = deterministic_cost_matrix(7, seed=2)
        _, optimal_cost = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        result = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(20)
        )
        assert result.cost == pytest.approx(optimal_cost, abs=1e-9)

    def test_cost_matches_plan(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=3)
        result = CPLongestLinkSolver(seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(5)
        )
        assert result.cost == pytest.approx(
            longest_link_cost(result.plan, mesh_graph, costs)
        )

    def test_beats_random_and_greedy(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=4)
        cp = CPLongestLinkSolver(seed=0).solve(mesh_graph, costs,
                                               budget=SearchBudget.seconds(5))
        random_result = RandomSearch(num_samples=500, seed=0).solve(mesh_graph, costs)
        greedy_result = GreedyG2().solve(mesh_graph, costs)
        assert cp.cost <= random_result.cost + 1e-9
        assert cp.cost <= greedy_result.cost + 1e-9

    def test_clustering_speeds_convergence_but_bounds_quality(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=5)
        exact = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(10)
        )
        clustered = CPLongestLinkSolver(k_clusters=5, seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(10)
        )
        # Coarse clustering needs no more threshold iterations than the exact
        # run and cannot find a better deployment than the true optimum.
        assert clustered.iterations <= exact.iterations
        assert clustered.cost >= exact.cost - 1e-9

    def test_trace_is_monotone(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=6)
        result = CPLongestLinkSolver(seed=0).solve(mesh_graph, costs,
                                                   budget=SearchBudget.seconds(5))
        trace_costs = [cost for _, cost in result.trace]
        assert trace_costs == sorted(trace_costs, reverse=True)
        assert trace_costs[-1] == pytest.approx(result.cost)

    def test_warm_start_respected(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=7)
        warm = GreedyG2().solve(mesh_graph, costs)
        result = CPLongestLinkSolver(seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(5), initial_plan=warm.plan
        )
        assert result.cost <= warm.cost + 1e-9

    def test_tight_budget_still_returns_plan(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=8)
        result = CPLongestLinkSolver(seed=0).solve(
            mesh_graph, costs, budget=SearchBudget.seconds(0.01)
        )
        assert result.plan.covers(mesh_graph)
        assert not result.optimal

    def test_invalid_k_clusters(self):
        with pytest.raises(ValueError):
            CPLongestLinkSolver(k_clusters=1)

    def test_equal_nodes_and_instances(self):
        """No over-allocation: the solver must still find a permutation."""
        graph = CommunicationGraph.mesh_2d(2, 3)
        costs = deterministic_cost_matrix(6, seed=9)
        result = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        _, optimal_cost = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        assert result.cost == pytest.approx(optimal_cost, abs=1e-9)
