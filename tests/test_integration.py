"""End-to-end integration tests reproducing the paper's qualitative claims at small scale."""

import numpy as np
import pytest

from repro import (
    AdvisorConfig,
    BehavioralSimulationWorkload,
    ClouDiA,
    CommunicationGraph,
    MeasurementConfig,
    Objective,
    ProviderProfile,
    RandomSearch,
    SimulatedCloud,
    compare_deployments,
)
from repro.analysis import empirical_cdf
from repro.cloud import DatacenterTopology
from repro.netmeasure import StagedMeasurement, relative_error_cdf_input
from repro.solvers import (
    CPLongestLinkSolver,
    GreedyG1,
    GreedyG2,
    SearchBudget,
    default_plan,
)
from repro.workloads import AggregationQueryWorkload, KeyValueStoreWorkload


def make_cloud(seed=0, profile=None):
    topology = DatacenterTopology(num_pods=4, racks_per_pod=6, hosts_per_rack=8,
                                  seed=seed)
    return SimulatedCloud(profile=profile or ProviderProfile.ec2(),
                          topology=topology, seed=seed)


class TestLatencyHeterogeneityClaim:
    def test_ec2_profile_shows_spread_and_stability(self):
        """Fig. 1 + Fig. 2 in miniature: heterogeneous but stable mean latencies."""
        cloud = make_cloud(seed=1)
        ids = [inst.instance_id for inst in cloud.allocate(24)]
        costs = cloud.true_cost_matrix(ids)
        cdf = empirical_cdf(costs.link_costs())
        assert cdf.spread(0.1, 0.9) > 1.4
        # Stability: the mean of one link barely moves over 100 hours.
        a, b = ids[0], ids[1]
        values = [cloud.mean_latency(a, b, at_hours=t) for t in range(0, 100, 10)]
        assert (max(values) - min(values)) / np.mean(values) < 0.2


class TestMeasurementClaim:
    def test_staged_close_to_ground_truth(self):
        """Fig. 4 in miniature: staged measurements track true means closely."""
        cloud = make_cloud(seed=2)
        ids = [inst.instance_id for inst in cloud.allocate(12)]
        truth = cloud.true_cost_matrix(ids)
        staged = StagedMeasurement(seed=0).measure(cloud, ids,
                                                   target_samples_per_link=30)
        errors = relative_error_cdf_input(staged.to_cost_matrix(), truth)
        assert np.percentile(errors, 90) < 0.35


class TestDeploymentImprovementClaim:
    def test_behavioral_simulation_improves(self):
        """Fig. 12 in miniature: ClouDiA reduces time-to-solution."""
        cloud = make_cloud(seed=3)
        workload = BehavioralSimulationWorkload(rows=4, cols=4, ticks=60)
        advisor = ClouDiA(cloud, AdvisorConfig(
            objective=Objective.LONGEST_LINK,
            over_allocation_ratio=0.25,
            solver_time_limit_s=4.0,
            measurement=MeasurementConfig(target_samples_per_link=6),
            terminate_unused=False,
            seed=0,
        ))
        report = advisor.recommend(workload.communication_graph())
        comparison = compare_deployments(workload, report.default_plan, report.plan,
                                         cloud, seed=1)
        assert comparison.reduction > 0.05

    def test_aggregation_query_improves(self):
        cloud = make_cloud(seed=4)
        workload = AggregationQueryWorkload(branching=3, depth=2, num_queries=80)
        advisor = ClouDiA(cloud, AdvisorConfig(
            objective=Objective.LONGEST_PATH,
            over_allocation_ratio=0.3,
            solver=RandomSearch.r2(seed=0),
            solver_time_limit_s=3.0,
            measurement=MeasurementConfig(target_samples_per_link=6),
            terminate_unused=False,
            seed=0,
        ))
        report = advisor.recommend(workload.communication_graph())
        comparison = compare_deployments(workload, report.default_plan, report.plan,
                                         cloud, seed=2)
        assert comparison.reduction > 0.0

    def test_key_value_store_improves_with_longest_link_objective(self):
        """Sect. 6.1.3: longest link is not exact for a KV store but still helps."""
        cloud = make_cloud(seed=5)
        workload = KeyValueStoreWorkload(num_frontends=4, num_storage=12,
                                         num_queries=250, keys_per_query=6)
        advisor = ClouDiA(cloud, AdvisorConfig(
            objective=Objective.LONGEST_LINK,
            over_allocation_ratio=0.25,
            solver_time_limit_s=4.0,
            measurement=MeasurementConfig(target_samples_per_link=6),
            terminate_unused=False,
            seed=0,
        ))
        report = advisor.recommend(workload.communication_graph())
        comparison = compare_deployments(workload, report.default_plan, report.plan,
                                         cloud, seed=3, repetitions=2)
        assert comparison.reduction > -0.05  # never meaningfully worse
        assert report.predicted_improvement > 0.0


class TestOverAllocationClaim:
    def test_more_spare_instances_never_hurt_predicted_cost(self):
        """Fig. 13 in miniature: larger over-allocation gives more freedom."""
        cloud = make_cloud(seed=6)
        graph = CommunicationGraph.mesh_2d(3, 3)
        ids = [inst.instance_id for inst in cloud.allocate(15)]
        costs = cloud.true_cost_matrix(ids)
        solver = CPLongestLinkSolver(seed=0)
        costs_no_extra = costs.submatrix(ids[:9])
        costs_extra = costs
        no_extra = solver.solve(graph, costs_no_extra,
                                budget=SearchBudget.seconds(4)).cost
        with_extra = solver.solve(graph, costs_extra,
                                  budget=SearchBudget.seconds(4)).cost
        baseline = default_plan(graph, costs)
        from repro.core.objectives import longest_link_cost

        assert with_extra <= no_extra + 1e-9
        assert with_extra <= longest_link_cost(baseline, graph, costs) + 1e-9


class TestSolverOrderingClaim:
    def test_cp_beats_lightweight_approaches(self):
        """Fig. 14 in miniature: CP <= R2 <= ... and G2 <= G1 on average."""
        g1_costs, g2_costs, cp_costs, random_costs = [], [], [], []
        for seed in range(3):
            cloud = make_cloud(seed=10 + seed)
            ids = [inst.instance_id for inst in cloud.allocate(13)]
            costs = cloud.true_cost_matrix(ids)
            graph = CommunicationGraph.mesh_2d(3, 4)
            g1_costs.append(GreedyG1().solve(graph, costs).cost)
            g2_costs.append(GreedyG2().solve(graph, costs).cost)
            random_costs.append(
                RandomSearch(num_samples=800, seed=seed).solve(graph, costs).cost
            )
            cp_costs.append(
                CPLongestLinkSolver(seed=seed).solve(
                    graph, costs, budget=SearchBudget.seconds(4)
                ).cost
            )
        assert np.mean(cp_costs) <= np.mean(random_costs) + 1e-9
        assert np.mean(cp_costs) <= np.mean(g2_costs) + 1e-9
        assert np.mean(g2_costs) <= np.mean(g1_costs) + 1e-9
