"""Tests for DeploymentProblem and PlacementConstraints."""

import pytest

from repro.core import (
    CommunicationGraph,
    DeploymentPlan,
    DeploymentProblem,
    Objective,
    PlacementConstraints,
)
from repro.core.errors import (
    InfeasibleProblemError,
    InvalidDeploymentError,
    InvalidGraphError,
)
from repro.solvers import GreedyG2, RandomSearch

from conftest import deterministic_cost_matrix


class TestValidation:
    def test_rejects_too_few_instances(self, mesh_graph):
        with pytest.raises(InfeasibleProblemError):
            DeploymentProblem(mesh_graph, deterministic_cost_matrix(4))

    def test_rejects_longest_path_on_cyclic_graph(self, mesh_graph):
        with pytest.raises(InvalidGraphError):
            DeploymentProblem(mesh_graph, deterministic_cost_matrix(12),
                              objective=Objective.LONGEST_PATH)

    def test_longest_path_on_dag_accepted(self, tree_graph):
        problem = DeploymentProblem(tree_graph, deterministic_cost_matrix(8),
                                    objective=Objective.LONGEST_PATH)
        assert problem.objective is Objective.LONGEST_PATH

    def test_objective_accepted_by_value(self, mesh_graph):
        problem = DeploymentProblem(mesh_graph, deterministic_cost_matrix(10),
                                    objective="longest_link")
        assert problem.objective is Objective.LONGEST_LINK

    def test_rejects_pin_to_unknown_instance(self, mesh_graph):
        with pytest.raises(InvalidDeploymentError):
            DeploymentProblem(
                mesh_graph, deterministic_cost_matrix(10),
                constraints=PlacementConstraints(pinned={0: 999}),
            )

    def test_rejects_pin_of_unknown_node(self, mesh_graph):
        with pytest.raises(InvalidDeploymentError):
            DeploymentProblem(
                mesh_graph, deterministic_cost_matrix(10),
                constraints=PlacementConstraints(pinned={999: 0}),
            )

    def test_rejects_forbidding_unknown_instance(self, mesh_graph):
        with pytest.raises(InvalidDeploymentError, match="unknown instance"):
            DeploymentProblem(
                mesh_graph, deterministic_cost_matrix(10),
                constraints=PlacementConstraints(forbidden={0: {999}}),
            )

    def test_rejects_non_injective_pins(self):
        with pytest.raises(InvalidDeploymentError):
            PlacementConstraints(pinned={0: 3, 1: 3})

    def test_rejects_pin_conflicting_with_forbidden(self):
        with pytest.raises(InvalidDeploymentError):
            PlacementConstraints(pinned={0: 3}, forbidden={0: {3}})

    def test_rejects_node_with_no_allowed_instance(self, mesh_graph):
        costs = deterministic_cost_matrix(10)
        with pytest.raises(InfeasibleProblemError):
            DeploymentProblem(
                mesh_graph, costs,
                constraints=PlacementConstraints(
                    forbidden={0: set(costs.instance_ids)},
                ),
            )

    def test_rejects_jointly_infeasible_forbidden_sets(self, mesh_graph):
        # Each node individually keeps one allowed instance (4), but three
        # nodes cannot all share it; must fail at construction, not after
        # a solver burnt its budget.
        costs = deterministic_cost_matrix(10)
        everything_but_4 = set(costs.instance_ids) - {4}
        with pytest.raises(InfeasibleProblemError, match="jointly"):
            DeploymentProblem(
                mesh_graph, costs,
                constraints=PlacementConstraints(
                    forbidden={n: everything_but_4 for n in (1, 2, 3)},
                ),
            )

    def test_jointly_tight_but_feasible_accepted(self, mesh_graph):
        # Three nodes squeezed onto exactly three instances is still fine.
        costs = deterministic_cost_matrix(12)
        tight = set(costs.instance_ids) - {4, 5, 6}
        problem = DeploymentProblem(
            mesh_graph, costs,
            constraints=PlacementConstraints(
                forbidden={n: tight for n in (1, 2, 3)},
            ),
        )
        from repro.solvers import GreedyG2

        result = GreedyG2().solve(problem)
        assert {result.plan.instance_for(n) for n in (1, 2, 3)} == {4, 5, 6}


class TestEngineAccess:
    def test_compiled_is_shared(self, mesh_graph):
        costs = deterministic_cost_matrix(10)
        problem = DeploymentProblem(mesh_graph, costs)
        assert problem.compiled() is problem.compiled()

    def test_evaluate_matches_engine(self, mesh_graph):
        costs = deterministic_cost_matrix(10)
        problem = DeploymentProblem(mesh_graph, costs)
        plan = problem.default_plan()
        assert problem.evaluate(plan) == problem.compiled().evaluate_plan(
            plan, Objective.LONGEST_LINK)

    def test_default_plan_uses_provider_order(self, mesh_graph):
        problem = DeploymentProblem(mesh_graph, deterministic_cost_matrix(12))
        assert problem.default_plan().used_instances() == tuple(range(9))


class TestIdentity:
    def test_instance_key_ignores_objective(self, tree_graph):
        costs = deterministic_cost_matrix(8)
        link = DeploymentProblem(tree_graph, costs)
        path = DeploymentProblem(tree_graph, costs,
                                 objective=Objective.LONGEST_PATH)
        assert link.instance_key() == path.instance_key()
        assert link.fingerprint() != path.fingerprint()

    def test_fingerprint_ignores_metadata(self, mesh_graph):
        costs = deterministic_cost_matrix(10)
        bare = DeploymentProblem(mesh_graph, costs)
        tagged = DeploymentProblem(mesh_graph, costs, metadata={"tenant": "a"})
        assert bare.fingerprint() == tagged.fingerprint()
        assert bare != tagged  # metadata still distinguishes equality

    def test_content_equal_problems_compare_equal(self, mesh_graph):
        costs = deterministic_cost_matrix(10)
        a = DeploymentProblem(mesh_graph, costs)
        b = DeploymentProblem(CommunicationGraph.mesh_2d(3, 3),
                              deterministic_cost_matrix(10))
        assert a == b
        assert hash(a) == hash(b)

    def test_rebound_preserves_content(self, mesh_graph):
        costs = deterministic_cost_matrix(10)
        original = DeploymentProblem(mesh_graph, costs, metadata={"k": 1})
        other_graph = CommunicationGraph.mesh_2d(3, 3)
        other_costs = deterministic_cost_matrix(10)
        rebound = original.rebound(other_graph, other_costs)
        assert rebound.graph is other_graph
        assert rebound.costs is other_costs
        assert rebound == original


class TestConstraintEnforcement:
    def test_solver_result_honours_pins(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        constraints = PlacementConstraints(pinned={0: 7, 4: 2})
        problem = DeploymentProblem(mesh_graph, costs, constraints=constraints)
        result = GreedyG2().solve(problem)
        assert result.plan.instance_for(0) == 7
        assert result.plan.instance_for(4) == 2
        assert result.cost == pytest.approx(problem.evaluate(result.plan))
        assert not result.optimal

    def test_solver_result_honours_forbidden(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        constraints = PlacementConstraints(forbidden={0: {0, 1, 2, 3, 4, 5}})
        problem = DeploymentProblem(mesh_graph, costs, constraints=constraints)
        result = RandomSearch(num_samples=20, seed=0).solve(problem)
        assert result.plan.instance_for(0) not in {0, 1, 2, 3, 4, 5}
        assert result.cost == pytest.approx(problem.evaluate(result.plan))

    def test_unconstrained_result_untouched(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        plain = RandomSearch(num_samples=20, seed=0).solve(
            DeploymentProblem(mesh_graph, costs))
        legacy = RandomSearch(num_samples=20, seed=0)
        with pytest.warns(DeprecationWarning):
            reference = legacy.solve(mesh_graph, costs)
        assert plain.plan == reference.plan
        assert plain.cost == reference.cost

    def test_repair_swaps_into_pins(self):
        constraints = PlacementConstraints(pinned={0: 5})
        plan = DeploymentPlan({0: 1, 1: 5, 2: 3})
        repaired = constraints.repair(plan, range(8))
        assert repaired.instance_for(0) == 5
        assert repaired.instance_for(1) == 1  # swapped with node 0
        assert repaired.instance_for(2) == 3

    def test_repair_relocates_off_forbidden(self):
        constraints = PlacementConstraints(forbidden={2: {3}})
        plan = DeploymentPlan({0: 1, 1: 5, 2: 3})
        repaired = constraints.repair(plan, range(8))
        assert repaired.instance_for(2) != 3
        violations = constraints.violations(repaired)
        assert violations == []

    def test_repair_handles_reassignment_chains(self):
        # Feasible only through a multi-node chain: node 1 may only use
        # instance 0, which node 2 occupies; node 2 must move to 2 and
        # node 3 absorbs the remaining instance.  Single swaps/relocations
        # cannot express this, the matching repair can.
        constraints = PlacementConstraints(forbidden={1: {1, 2}, 2: {1}})
        plan = DeploymentPlan({1: 1, 2: 0, 3: 2})
        repaired = constraints.repair(plan, [0, 1, 2])
        assert constraints.violations(repaired) == []
        assert repaired.instance_for(1) == 0

    def test_repair_minimises_changes(self):
        constraints = PlacementConstraints(forbidden={5: {9}})
        plan = DeploymentPlan({n: n for n in range(8)} | {5: 9})
        repaired = constraints.repair(plan, range(12))
        # Every unconstrained node keeps its placement.
        for node in range(8):
            if node != 5:
                assert repaired.instance_for(node) == plan.instance_for(node)
        assert repaired.instance_for(5) != 9

    def test_repair_infeasible_raises(self):
        # Only instances 0..2 exist; node 2 may use none of the ones not
        # taken by the pinned nodes.
        constraints = PlacementConstraints(
            pinned={0: 0, 1: 1}, forbidden={2: {2}},
        )
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2})
        with pytest.raises(InfeasibleProblemError):
            constraints.repair(plan, range(3))

    def test_check_plan_reports_violations(self, mesh_graph):
        costs = deterministic_cost_matrix(12)
        constraints = PlacementConstraints(pinned={0: 7})
        problem = DeploymentProblem(mesh_graph, costs, constraints=constraints)
        bad = problem.default_plan()
        with pytest.raises(InvalidDeploymentError):
            problem.check_plan(bad)
        good = constraints.repair(bad, costs.instance_ids)
        problem.check_plan(good)
