"""Cross-solver consistency: every solver agrees on tiny, brute-forceable instances."""

import pytest

from repro.core import CommunicationGraph, Objective
from repro.core.objectives import deployment_cost
from repro.solvers import (
    CPLongestLinkSolver,
    GreedyG1,
    GreedyG2,
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
    PortfolioSolver,
    RandomSearch,
    SearchBudget,
    SimulatedAnnealing,
    SwapLocalSearch,
)

from conftest import brute_force_optimum, deterministic_cost_matrix


@pytest.fixture(scope="module")
def tiny_ll():
    graph = CommunicationGraph.ring(4)
    costs = deterministic_cost_matrix(6, seed=31)
    _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
    return graph, costs, optimum


@pytest.fixture(scope="module")
def tiny_lp():
    graph = CommunicationGraph.aggregation_tree(2, 1)  # 3 nodes
    costs = deterministic_cost_matrix(5, seed=32)
    _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_PATH)
    return graph, costs, optimum


class TestLongestLinkConsistency:
    def test_exact_solvers_reach_optimum(self, tiny_ll):
        graph, costs, optimum = tiny_ll
        cp = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        mip = MIPLongestLinkSolver(backend="milp").solve(
            graph, costs, budget=SearchBudget.seconds(30)
        )
        assert cp.cost == pytest.approx(optimum, abs=1e-9)
        assert mip.cost == pytest.approx(optimum, abs=1e-6)

    def test_heuristics_never_beat_optimum(self, tiny_ll):
        graph, costs, optimum = tiny_ll
        solvers = [
            GreedyG1(),
            GreedyG2(),
            RandomSearch(num_samples=300, seed=0),
            SwapLocalSearch(seed=0),
            SimulatedAnnealing(seed=0),
            PortfolioSolver(seed=0),
        ]
        for solver in solvers:
            result = solver.solve(graph, costs, budget=SearchBudget.seconds(1))
            assert result.cost >= optimum - 1e-9
            # All returned costs are consistent with their own plan.
            assert result.cost == pytest.approx(
                deployment_cost(result.plan, graph, costs, Objective.LONGEST_LINK)
            )

    def test_exhaustive_random_search_reaches_optimum(self, tiny_ll):
        """With 6 instances and 4 nodes there are only 360 plans."""
        graph, costs, optimum = tiny_ll
        result = RandomSearch(num_samples=5000, seed=1).solve(graph, costs)
        assert result.cost == pytest.approx(optimum, abs=1e-9)


class TestLongestPathConsistency:
    def test_mip_reaches_optimum(self, tiny_lp):
        graph, costs, optimum = tiny_lp
        result = MIPLongestPathSolver(backend="milp").solve(
            graph, costs, budget=SearchBudget.seconds(30)
        )
        assert result.cost == pytest.approx(optimum, abs=1e-6)

    def test_bnb_not_worse_than_random_baseline(self, tiny_lp):
        graph, costs, optimum = tiny_lp
        bnb = MIPLongestPathSolver(backend="bnb").solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        assert bnb.cost >= optimum - 1e-9

    def test_heuristics_never_beat_optimum(self, tiny_lp):
        graph, costs, optimum = tiny_lp
        for solver in (GreedyG2(), RandomSearch(num_samples=200, seed=2),
                       SwapLocalSearch(seed=1)):
            result = solver.solve(graph, costs, objective=Objective.LONGEST_PATH,
                                  budget=SearchBudget.seconds(1))
            assert result.cost >= optimum - 1e-9
