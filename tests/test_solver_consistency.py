"""Cross-solver consistency: every solver agrees on tiny, brute-forceable instances."""

import numpy as np
import pytest

from repro.core import CommunicationGraph, DeploymentPlan, Objective, compile_problem
from repro.core.objectives import deployment_cost
from repro.solvers import (
    CPLongestLinkSolver,
    GreedyG1,
    GreedyG2,
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
    PortfolioSolver,
    RandomSearch,
    SearchBudget,
    SimulatedAnnealing,
    SwapLocalSearch,
)

from repro.testing import brute_force_optimum, deterministic_cost_matrix


@pytest.fixture(scope="module")
def tiny_ll():
    graph = CommunicationGraph.ring(4)
    costs = deterministic_cost_matrix(6, seed=31)
    _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
    return graph, costs, optimum


@pytest.fixture(scope="module")
def tiny_lp():
    graph = CommunicationGraph.aggregation_tree(2, 1)  # 3 nodes
    costs = deterministic_cost_matrix(5, seed=32)
    _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_PATH)
    return graph, costs, optimum


class TestLongestLinkConsistency:
    def test_exact_solvers_reach_optimum(self, tiny_ll):
        graph, costs, optimum = tiny_ll
        cp = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        mip = MIPLongestLinkSolver(backend="milp").solve(
            graph, costs, budget=SearchBudget.seconds(30)
        )
        assert cp.cost == pytest.approx(optimum, abs=1e-9)
        assert mip.cost == pytest.approx(optimum, abs=1e-6)

    def test_heuristics_never_beat_optimum(self, tiny_ll):
        graph, costs, optimum = tiny_ll
        solvers = [
            GreedyG1(),
            GreedyG2(),
            RandomSearch(num_samples=300, seed=0),
            SwapLocalSearch(seed=0),
            SimulatedAnnealing(seed=0),
            PortfolioSolver(seed=0),
        ]
        for solver in solvers:
            result = solver.solve(graph, costs, budget=SearchBudget.seconds(1))
            assert result.cost >= optimum - 1e-9
            # All returned costs are consistent with their own plan.
            assert result.cost == pytest.approx(
                deployment_cost(result.plan, graph, costs, Objective.LONGEST_LINK)
            )

    def test_exhaustive_random_search_reaches_optimum(self, tiny_ll):
        """With 6 instances and 4 nodes there are only 360 plans."""
        graph, costs, optimum = tiny_ll
        result = RandomSearch(num_samples=5000, seed=1).solve(graph, costs)
        assert result.cost == pytest.approx(optimum, abs=1e-9)


class TestLongestPathConsistency:
    def test_mip_reaches_optimum(self, tiny_lp):
        graph, costs, optimum = tiny_lp
        result = MIPLongestPathSolver(backend="milp").solve(
            graph, costs, budget=SearchBudget.seconds(30)
        )
        assert result.cost == pytest.approx(optimum, abs=1e-6)

    def test_bnb_not_worse_than_random_baseline(self, tiny_lp):
        graph, costs, optimum = tiny_lp
        bnb = MIPLongestPathSolver(backend="bnb").solve(
            graph, costs, budget=SearchBudget.seconds(10)
        )
        assert bnb.cost >= optimum - 1e-9

    def test_heuristics_never_beat_optimum(self, tiny_lp):
        graph, costs, optimum = tiny_lp
        for solver in (GreedyG2(), RandomSearch(num_samples=200, seed=2),
                       SwapLocalSearch(seed=1)):
            result = solver.solve(graph, costs, objective=Objective.LONGEST_PATH,
                                  budget=SearchBudget.seconds(1))
            assert result.cost >= optimum - 1e-9


class TestDeltaEvaluatorConsistency:
    """Every incremental move delta equals a full re-evaluation of the move."""

    CASES = [
        # (graph, num_instances): from single-edge up to meshes with slack.
        (CommunicationGraph.from_edges([(0, 1)]), 2),
        (CommunicationGraph.from_edges([(0, 1)]), 5),
        (CommunicationGraph.ring(5), 5),
        (CommunicationGraph.mesh_2d(2, 3), 9),
        (CommunicationGraph.aggregation_tree(2, 2), 10),
        (CommunicationGraph.star(4), 8),
    ]

    def _walk(self, graph, costs, objective, seed, moves=60):
        """Random move walk asserting peek == apply == oracle at every step."""
        problem = compile_problem(graph, costs)
        rng = np.random.default_rng(seed)
        plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
        evaluator = problem.delta_evaluator(plan, objective)
        assert evaluator.current_cost == deployment_cost(plan, graph, costs, objective)

        nodes = list(graph.nodes)
        for _ in range(moves):
            free = evaluator.free_instance_indices()
            if free.size and rng.random() < 0.5:
                node_idx = int(rng.integers(len(nodes)))
                inst_idx = int(free[int(rng.integers(free.size))])
                peeked = evaluator.relocate_cost(node_idx, inst_idx)
                plan = plan.with_relocation(nodes[node_idx],
                                            costs.instance_ids[inst_idx])
                applied = evaluator.apply_relocate(node_idx, inst_idx)
            else:
                a, b = rng.choice(len(nodes), size=2, replace=False)
                peeked = evaluator.swap_cost(int(a), int(b))
                plan = plan.with_swap(nodes[int(a)], nodes[int(b)])
                applied = evaluator.apply_swap(int(a), int(b))
            expected = deployment_cost(plan, graph, costs, objective)
            assert peeked == expected
            assert applied == expected
            assert evaluator.current_cost == expected
            assert evaluator.plan() == plan

    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_longest_link_deltas_match_full_reeval(self, case, seed):
        graph, m = self.CASES[case]
        costs = deterministic_cost_matrix(m, seed=40 + seed, symmetric=False)
        self._walk(graph, costs, Objective.LONGEST_LINK, seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_longest_path_deltas_match_full_reeval(self, seed):
        for graph, m in [
            (CommunicationGraph.from_edges([(0, 1)]), 4),
            (CommunicationGraph.aggregation_tree(2, 2), 10),
            (CommunicationGraph.random_dag(6, 0.5, seed=seed), 8),
        ]:
            costs = deterministic_cost_matrix(m, seed=50 + seed, symmetric=False)
            self._walk(graph, costs, Objective.LONGEST_PATH, seed, moves=40)

    def test_relocate_to_used_instance_rejected(self):
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(5, seed=60)
        problem = compile_problem(graph, costs)
        plan = DeploymentPlan.identity(graph.nodes, costs.instance_ids)
        evaluator = problem.delta_evaluator(plan, Objective.LONGEST_LINK)
        from repro.core import InvalidDeploymentError
        with pytest.raises(InvalidDeploymentError):
            evaluator.relocate_cost(0, problem.instance_idx(plan.instance_for(1)))

    def test_relocate_to_unused_instance_single_edge(self):
        """Relocate on a single-edge graph: the whole cost is one link."""
        graph = CommunicationGraph.from_edges([(0, 1)])
        costs = deterministic_cost_matrix(4, seed=61, symmetric=False)
        problem = compile_problem(graph, costs)
        plan = DeploymentPlan({0: 0, 1: 1})
        evaluator = problem.delta_evaluator(plan, Objective.LONGEST_LINK)
        assert evaluator.current_cost == costs.cost(0, 1)
        # Move node 1 onto each free instance in turn and check the delta.
        for target in (2, 3):
            assert evaluator.relocate_cost(1, target) == costs.cost(0, target)
        evaluator.apply_relocate(1, 3)
        assert evaluator.current_cost == costs.cost(0, 3)
        assert evaluator.plan() == DeploymentPlan({0: 0, 1: 3})
