"""Engine-vs-oracle agreement for the exact solvers (CP labeling, MIP B&B).

The CP labeling search and the MIP branch and bound route their bound
computation and incumbent scoring through the compiled evaluation engine
(:mod:`repro.core.evaluation`); the dict-walking implementations are kept as
the reference oracle.  These tests pin the contract the rewire relies on:

* labeling bounds (compatibility domains, feasibility pre-checks,
  per-assignment cost lower bounds) computed from ``CompiledProblem`` index
  arrays equal the oracle-derived bounds on random instances;
* the CP solver returns bit-identical plans, costs, iteration counts and
  lower bounds on both paths, seed for seed;
* branch and bound visits the same node sequence and produces the same
  incumbent trace whether roundings are scored one by one through the model
  or in engine batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    Objective,
    ParallelEvaluator,
    ProcessPoolEvaluator,
    compile_problem,
)
from repro.solvers import (
    CPLongestLinkSolver,
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
    SearchBudget,
)
from repro.solvers.registry import default_registry
from repro.solvers.cp.labeling import (
    assignment_cost_lower_bounds_reference,
    compatibility_domains,
    compatibility_domains_reference,
    longest_link_lower_bound_reference,
    quick_infeasibility_check,
    quick_infeasibility_check_reference,
)
from repro.solvers.mip import BranchAndBound, DeploymentRounder
from repro.solvers.mip.llndp_mip import LLNDPEncoding
from repro.solvers.mip.lpndp_mip import LPNDPEncoding


def random_problem(seed, min_nodes=3, max_nodes=8, extra=3, dag=False):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(min_nodes, max_nodes + 1))
    m = n + int(rng.integers(0, extra + 1))
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(m)), matrix)
    if dag:
        graph = CommunicationGraph.random_dag(n, 0.4, seed=seed)
    else:
        graph = CommunicationGraph.random_graph(n, 0.4, seed=seed)
    return graph, costs


# --------------------------------------------------------------------------- #
# Labeling bounds: engine index arrays vs the dict-walking oracle
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 2000), quantile=st.floats(0.2, 0.9))
@settings(max_examples=60, deadline=None)
def test_labeling_bounds_match_oracle_on_random_instances(seed, quantile):
    graph, costs = random_problem(seed)
    problem = compile_problem(graph, costs)
    matrix = costs.as_array()
    off_diagonal = matrix[~np.eye(costs.num_instances, dtype=bool)]
    threshold = float(np.quantile(off_diagonal, quantile))
    allowed = problem.threshold_adjacency(threshold)

    assert quick_infeasibility_check(graph, allowed) == \
        quick_infeasibility_check_reference(graph, allowed)
    # With and without the compiled problem supplying degree arrays.
    reference = compatibility_domains_reference(graph, allowed)
    assert compatibility_domains(graph, allowed, problem=problem) == reference
    assert compatibility_domains(graph, allowed) == reference
    assert compatibility_domains(graph, allowed, refine_neighborhood=False) == \
        compatibility_domains_reference(graph, allowed, refine_neighborhood=False)


@given(seed=st.integers(0, 2000))
@settings(max_examples=60, deadline=None)
def test_assignment_cost_lower_bounds_match_oracle(seed):
    graph, costs = random_problem(seed)
    problem = compile_problem(graph, costs)
    engine_bounds = problem.assignment_cost_lower_bounds()
    reference = assignment_cost_lower_bounds_reference(graph, costs.as_array())
    for node in graph.nodes:
        assert tuple(engine_bounds[problem.node_idx(node)]) == reference[node]
    assert problem.longest_link_lower_bound() == \
        longest_link_lower_bound_reference(graph, costs.as_array())


def test_lower_bound_is_sound_on_tiny_instances():
    """The degree-based bound never exceeds the brute-force optimum."""
    from repro.testing import brute_force_optimum

    for seed in range(8):
        graph, costs = random_problem(seed, min_nodes=3, max_nodes=4, extra=2)
        problem = compile_problem(graph, costs)
        _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        assert problem.longest_link_lower_bound() <= optimum + 1e-12


# --------------------------------------------------------------------------- #
# CP solver: engine path vs oracle path, seed for seed
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("k_clusters", [None, 4])
@pytest.mark.parametrize("seed", [0, 7, 19])
def test_cp_solver_engine_path_bit_identical(seed, k_clusters):
    graph, costs = random_problem(seed, min_nodes=4, max_nodes=7)
    budget = SearchBudget.seconds(15)
    engine = CPLongestLinkSolver(k_clusters=k_clusters, seed=0,
                                 use_engine=True).solve(graph, costs, budget=budget)
    oracle = CPLongestLinkSolver(k_clusters=k_clusters, seed=0,
                                 use_engine=False).solve(graph, costs, budget=budget)
    assert engine.plan.as_dict() == oracle.plan.as_dict()
    assert engine.cost == oracle.cost
    assert engine.iterations == oracle.iterations
    assert engine.optimal == oracle.optimal
    assert engine.lower_bound == oracle.lower_bound
    assert [c for _, c in engine.trace] == [c for _, c in oracle.trace]


def test_cp_solver_reports_valid_lower_bound():
    """The reported bound is proven against the *true* costs.

    The solver's default 0.01 rounding grid can round a cost upward, so a
    bound computed on the clustered matrix could exceed the true optimum;
    the reported bound must not (it gates only the clustered threshold loop
    internally).
    """
    from repro.testing import brute_force_optimum

    for seed in range(5):
        graph, costs = random_problem(seed, min_nodes=4, max_nodes=5, extra=2)
        result = CPLongestLinkSolver(k_clusters=None, seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(15)
        )
        _, optimum = brute_force_optimum(graph, costs, Objective.LONGEST_LINK)
        assert result.lower_bound is not None
        assert result.lower_bound <= optimum + 1e-12
        assert result.lower_bound <= result.cost + 1e-9


# --------------------------------------------------------------------------- #
# MIP branch and bound: batch rounding vs scalar rounding
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("seed", [1, 5, 11])
def test_branch_and_bound_same_node_sequence_llndp(seed):
    graph, costs = random_problem(seed, min_nodes=3, max_nodes=4, extra=2)
    scalar_encoding = LLNDPEncoding(graph, costs)
    scalar = BranchAndBound(
        scalar_encoding.model,
        rounding_callback=scalar_encoding.rounding_callback,
        record_nodes=True,
    ).solve(node_limit=150)

    batch_encoding = LLNDPEncoding(graph, costs)
    rounder = DeploymentRounder(batch_encoding, compile_problem(graph, costs),
                                Objective.LONGEST_LINK)
    batch = BranchAndBound(
        batch_encoding.model, batch_rounder=rounder, record_nodes=True,
    ).solve(node_limit=150)

    assert batch.node_sequence == scalar.node_sequence
    assert batch.nodes_explored == scalar.nodes_explored
    assert batch.proven_optimal == scalar.proven_optimal
    assert [c for _, c in batch.incumbent_trace] == \
        [c for _, c in scalar.incumbent_trace]
    assert batch.solution.objective_value == scalar.solution.objective_value
    assert np.array_equal(batch.solution.values, scalar.solution.values)


def test_branch_and_bound_same_node_sequence_lpndp():
    graph = CommunicationGraph.aggregation_tree(2, 1)
    rng = np.random.default_rng(23)
    m = graph.num_nodes + 2
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(m)), matrix)

    scalar_encoding = LPNDPEncoding(graph, costs)
    scalar = BranchAndBound(
        scalar_encoding.model,
        rounding_callback=scalar_encoding.rounding_callback,
        record_nodes=True,
    ).solve(node_limit=80)
    batch_encoding = LPNDPEncoding(graph, costs)
    rounder = DeploymentRounder(batch_encoding, compile_problem(graph, costs),
                                Objective.LONGEST_PATH)
    batch = BranchAndBound(
        batch_encoding.model, batch_rounder=rounder, record_nodes=True,
    ).solve(node_limit=80)

    assert batch.node_sequence == scalar.node_sequence
    assert [c for _, c in batch.incumbent_trace] == \
        [c for _, c in scalar.incumbent_trace]
    assert batch.solution.objective_value == scalar.solution.objective_value


@pytest.mark.parametrize("solver_cls,objective,graph", [
    (MIPLongestLinkSolver, Objective.LONGEST_LINK, CommunicationGraph.ring(4)),
    (MIPLongestPathSolver, Objective.LONGEST_PATH,
     CommunicationGraph.aggregation_tree(2, 1)),
])
def test_mip_solver_engine_path_bit_identical(solver_cls, objective, graph):
    rng = np.random.default_rng(42)
    m = graph.num_nodes + 1
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(m)), matrix)
    budget = SearchBudget.seconds(20)
    engine = solver_cls(backend="bnb", use_engine=True).solve(
        graph, costs, objective=objective, budget=budget)
    oracle = solver_cls(backend="bnb", use_engine=False).solve(
        graph, costs, objective=objective, budget=budget)
    assert engine.plan.as_dict() == oracle.plan.as_dict()
    assert engine.cost == oracle.cost
    assert engine.iterations == oracle.iterations
    assert [c for _, c in engine.trace] == [c for _, c in oracle.trace]


def test_deployment_rounder_costs_match_model_objective():
    """Batch costs equal what the model would report for the same roundings."""
    graph = CommunicationGraph.ring(5)
    rng = np.random.default_rng(9)
    m = 7
    matrix = rng.uniform(0.1, 2.0, size=(m, m))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(m)), matrix)
    encoding = LLNDPEncoding(graph, costs)
    rounder = DeploymentRounder(encoding, compile_problem(graph, costs),
                                Objective.LONGEST_LINK)
    candidates = [rng.random(encoding.model.num_variables) for _ in range(6)]
    batch_costs, assignments = rounder.round_batch(candidates)
    for cost, assignment, values in zip(batch_costs, assignments, candidates):
        vector = encoding.rounding_callback(values)
        assert encoding.model.is_feasible(vector)
        assert float(cost) == encoding.model.evaluate_objective(vector)
        assert np.array_equal(rounder.realize(assignment), vector)


# --------------------------------------------------------------------------- #
# Parallel batch evaluation and incremental longest-path vs serial oracles
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 2000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]),
       workers=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_parallel_evaluator_bit_identical_to_serial(seed, objective, workers):
    """Chunked evaluation equals serial ``evaluate_batch`` bit for bit.

    ``min_cells=1`` forces the pool past the serial-fallback cutoff even on
    these small instances, so the chunked code path is what actually runs.
    """
    graph, costs = random_problem(seed, dag=objective is Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    assignments = problem.random_assignments(17, seed)
    parallel = ParallelEvaluator(problem, workers=workers, min_cells=1)
    expected = problem.evaluate_batch(assignments, objective)
    chunked = parallel.evaluate_batch(assignments, objective)
    assert np.array_equal(expected, chunked)
    if workers > 1:
        assert parallel.parallel_calls == 1


@given(seed=st.integers(0, 2000))
@settings(max_examples=40, deadline=None)
def test_incremental_longest_path_walk_matches_full_rerelaxation(seed):
    """Peeked and applied LP deltas equal a full re-relaxation per move."""
    graph, costs = random_problem(seed, min_nodes=4, max_nodes=9, dag=True)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(seed)
    reference = problem.random_assignments(1, rng)[0].copy()
    evaluator = problem.delta_evaluator(reference,
                                        Objective.LONGEST_PATH)
    n = problem.num_nodes
    for _ in range(40):
        if rng.random() < 0.5 or n < 2:
            free = evaluator.free_instance_indices()
            if free.size == 0:
                continue
            node = int(rng.integers(n))
            instance = int(free[rng.integers(free.size)])
            peeked = evaluator.relocate_cost(node, instance)
            candidate = reference.copy()
            candidate[node] = instance
            expected = problem.evaluate(candidate, Objective.LONGEST_PATH)
            assert peeked == expected
            assert evaluator.apply_relocate(node, instance) == expected
            reference = candidate
        else:
            a, b = (int(x) for x in rng.choice(n, size=2, replace=False))
            peeked = evaluator.swap_cost(a, b)
            candidate = reference.copy()
            candidate[[a, b]] = candidate[[b, a]]
            expected = problem.evaluate(candidate, Objective.LONGEST_PATH)
            assert peeked == expected
            assert evaluator.apply_swap(a, b) == expected
            reference = candidate
        assert evaluator.current_cost == \
            problem.evaluate(reference, Objective.LONGEST_PATH)


@given(seed=st.integers(0, 2000),
       objective=st.sampled_from([Objective.LONGEST_LINK,
                                  Objective.LONGEST_PATH]),
       workers=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_process_pool_evaluator_bit_identical_to_serial(seed, objective,
                                                        workers):
    """Shared-memory process evaluation equals serial bit for bit.

    ``min_cells=1`` forces work past the serial cutoff; workers attach the
    parent's shared index/cost arrays and run the same unbound kernels, so
    every float is produced by the same instruction sequence.
    """
    graph, costs = random_problem(seed, dag=objective is Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    assignments = problem.random_assignments(11, seed)
    pooled = ProcessPoolEvaluator(problem, workers=workers, min_cells=1)
    expected = problem.evaluate_batch(assignments, objective)
    threaded = ParallelEvaluator(problem, workers=max(2, workers),
                                 min_cells=1).evaluate_batch(
                                     assignments, objective)
    chunked = pooled.evaluate_batch(assignments, objective)
    assert np.array_equal(expected, chunked)
    assert np.array_equal(expected, threaded)
    if workers > 1 and pooled.fallback_reason is None:
        assert pooled.parallel_calls == 1


def _registry_problem(key, spec, seed):
    """A small instance every registry solver can handle for ``key``."""
    objective = spec.objectives[0]
    graph, costs = random_problem(seed, min_nodes=4, max_nodes=5, extra=2,
                                  dag=objective is Objective.LONGEST_PATH)
    return DeploymentProblem(graph, costs, objective=objective)


@pytest.mark.parametrize("key", default_registry.available())
def test_registry_solvers_seed_identical_with_process_workers(key):
    """Every registered solver is seed-for-seed identical under ``procs``.

    The workers knob only swaps the batch-scoring backend; since the
    process pool is bit-identical to the serial engine, plan, cost and
    iteration count must not move for any solver in the registry.
    """
    spec = default_registry.spec(key)
    problem = _registry_problem(key, spec, seed=13)
    config = default_registry.seeded_config(key, 7)
    results = []
    for workers in (None, "procs:2"):
        solver = default_registry.make(key, **config)
        budget = SearchBudget(max_iterations=60, workers=workers)
        results.append(solver.solve(problem, budget=budget))
    serial, pooled = results
    assert pooled.cost == serial.cost
    assert pooled.plan.as_dict() == serial.plan.as_dict()
    assert pooled.iterations == serial.iterations


@pytest.mark.parametrize("seed", [1, 5, 11])
def test_branch_and_bound_same_node_sequence_with_workers(seed):
    """A workers-enabled DeploymentRounder replays the scalar decisions."""
    graph, costs = random_problem(seed, min_nodes=3, max_nodes=4, extra=2)
    scalar_encoding = LLNDPEncoding(graph, costs)
    scalar = BranchAndBound(
        scalar_encoding.model,
        rounding_callback=scalar_encoding.rounding_callback,
        record_nodes=True,
    ).solve(node_limit=150)

    batch_encoding = LLNDPEncoding(graph, costs)
    rounder = DeploymentRounder(batch_encoding, compile_problem(graph, costs),
                                Objective.LONGEST_LINK, workers=2)
    batch = BranchAndBound(
        batch_encoding.model, batch_rounder=rounder, record_nodes=True,
    ).solve(node_limit=150)

    assert batch.node_sequence == scalar.node_sequence
    assert [c for _, c in batch.incumbent_trace] == \
        [c for _, c in scalar.incumbent_trace]
    assert batch.solution.objective_value == scalar.solution.objective_value
