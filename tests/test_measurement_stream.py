"""The measurement→problem seam: streams, traces, and the problem round trip.

Covers the live pipeline's input side: ``MeasurementStream`` folding raw
measurements / trace windows into ``CostRevision`` objects behind a drift
detector, ``LatencyTrace.window_costs`` overlays, and the
``MeasurementResult.to_cost_matrix`` → ``DeploymentProblem`` → JSON round
trip with ``fingerprint()`` changing iff the revised costs change.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cloud.traces import collect_latency_trace, representative_links
from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    Objective,
)
from repro.core.errors import MeasurementError
from repro.netmeasure import (
    MeasurementResult,
    MeasurementStream,
    relative_link_drift,
)


def simple_costs(values=None) -> CostMatrix:
    matrix = np.array([
        [0.0, 1.0, 2.0],
        [1.5, 0.0, 3.0],
        [2.5, 3.5, 0.0],
    ]) if values is None else np.asarray(values, dtype=float)
    return CostMatrix([0, 1, 2], matrix)


def measured(samples) -> MeasurementResult:
    result = MeasurementResult(scheme="test", instance_ids=(0, 1, 2))
    for link, values in samples.items():
        for moment, value in enumerate(values):
            result.record(link, float(moment), float(value))
    return result


class TestRelativeLinkDrift:
    def test_zero_for_identical_matrices(self):
        costs = simple_costs()
        assert relative_link_drift(costs, costs).max() == 0.0

    def test_relative_per_link(self):
        base = simple_costs()
        revised = simple_costs([[0, 1.1, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        drift = relative_link_drift(base, revised)
        assert drift[0, 1] == pytest.approx(0.1)
        assert np.count_nonzero(drift) == 1

    def test_zero_cost_link_semantics(self):
        base = simple_costs([[0, 0.0, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        appearing = simple_costs([[0, 0.5, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        assert relative_link_drift(base, appearing)[0, 1] == np.inf
        assert relative_link_drift(base, base)[0, 1] == 0.0

    def test_rejects_mismatched_instances(self):
        base = simple_costs()
        other = CostMatrix([7, 8, 9], base.as_array())
        with pytest.raises(MeasurementError):
            relative_link_drift(base, other)


class TestMeasurementStreamFolding:
    def test_subthreshold_folds_are_absorbed(self):
        stream = MeasurementStream(simple_costs(), drift_threshold=0.05)
        nearly = simple_costs([[0, 1.01, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        assert stream.fold_costs(nearly) is None
        assert stream.folds_absorbed == 1
        assert stream.revisions_emitted == 0
        assert stream.current.cost(0, 1) == 1.0  # baseline unchanged

    def test_significant_folds_emit_and_advance(self):
        stream = MeasurementStream(simple_costs(), drift_threshold=0.05)
        revised = simple_costs([[0, 1.2, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        revision = stream.fold_costs(revised)
        assert revision is not None
        assert revision.index == 0
        assert revision.max_drift == pytest.approx(0.2)
        assert revision.worst_link == (0, 1)
        assert revision.num_changed == 1
        assert stream.current is revised
        # Drift is now measured against the new current matrix.
        assert stream.fold_costs(revised) is None

    def test_zero_threshold_emits_any_change_but_not_identity(self):
        stream = MeasurementStream(simple_costs())
        assert stream.fold_costs(simple_costs()) is None
        tweaked = simple_costs([[0, 1.0001, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        assert stream.fold_costs(tweaked) is not None

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            MeasurementStream(simple_costs(), drift_threshold=-0.1)

    def test_fold_measurement_updates_only_observed_links(self):
        stream = MeasurementStream(simple_costs())
        partial = measured({(0, 1): [2.0, 2.2], (2, 0): [5.0]})
        revision = stream.fold_measurement(partial)
        assert revision is not None
        assert revision.costs.cost(0, 1) == pytest.approx(2.1)  # mean
        assert revision.costs.cost(2, 0) == pytest.approx(5.0)
        assert revision.costs.cost(1, 2) == 3.0  # unobserved: kept

    def test_fold_measurement_respects_until_ms(self):
        stream = MeasurementStream(simple_costs())
        partial = measured({(0, 1): [2.0, 4.0]})  # observed at t=0 and t=1
        revision = stream.fold_measurement(partial, until_ms=0.5)
        assert revision.costs.cost(0, 1) == pytest.approx(2.0)

    def test_fold_measurement_rejects_unknown_instances(self):
        stream = MeasurementStream(simple_costs())
        foreign = MeasurementResult(scheme="test", instance_ids=(0, 9))
        foreign.record((0, 9), 0.0, 1.0)
        with pytest.raises(MeasurementError):
            stream.fold_measurement(foreign)

    def test_fold_all_replays_matrices_in_order(self):
        stream = MeasurementStream(simple_costs(), drift_threshold=0.05)
        quiet = simple_costs([[0, 1.01, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        loud = simple_costs([[0, 1.5, 2], [1.5, 0, 3], [2.5, 3.5, 0]])
        revisions = stream.fold_all([quiet, loud, loud])
        assert [revision.index for revision in revisions] == [0]
        assert stream.folds_absorbed == 2


class TestLatencyTraceWindows:
    @pytest.fixture(scope="class")
    def trace_setup(self):
        from repro.cloud import ProviderProfile, SimulatedCloud
        cloud = SimulatedCloud(profile=ProviderProfile.ec2(), seed=5)
        ids = [inst.instance_id for inst in cloud.allocate(6)]
        links = representative_links(cloud, count=3, instance_ids=ids)
        trace = collect_latency_trace(cloud, links, duration_hours=2.0,
                                      window_hours=1.0,
                                      samples_per_window=10, seed=5)
        baseline = cloud.true_cost_matrix(ids)
        return trace, baseline

    def test_window_costs_overlays_observed_links(self, trace_setup):
        trace, baseline = trace_setup
        window = trace.window_costs(0, baseline)
        assert window.instance_ids == baseline.instance_ids
        observed = set(trace.links)
        for row, (a, b) in enumerate(trace.links):
            assert window.cost(a, b) == pytest.approx(trace.means_ms[row, 0])
            if (b, a) not in observed:  # symmetric fallback
                assert window.cost(b, a) == pytest.approx(
                    trace.means_ms[row, 0])
        untouched = [
            (a, b) for a in baseline.instance_ids for b in baseline.instance_ids
            if a != b and (a, b) not in observed and (b, a) not in observed
        ]
        for a, b in untouched:
            assert window.cost(a, b) == baseline.cost(a, b)

    def test_window_costs_without_symmetric_fallback(self, trace_setup):
        trace, baseline = trace_setup
        window = trace.window_costs(0, baseline, symmetric_fallback=False)
        observed = set(trace.links)
        for a, b in observed:
            if (b, a) not in observed:
                assert window.cost(b, a) == baseline.cost(b, a)

    def test_window_index_bounds(self, trace_setup):
        trace, baseline = trace_setup
        assert trace.num_windows == 2
        with pytest.raises(IndexError):
            trace.window_costs(2, baseline)
        with pytest.raises(IndexError):
            trace.window_costs(-1, baseline)

    def test_fold_trace_runs_the_drift_detector_per_window(self, trace_setup):
        trace, baseline = trace_setup
        emit_all = MeasurementStream(baseline)
        revisions = emit_all.fold_trace(trace)
        assert len(revisions) == trace.num_windows
        # An impossibly high threshold absorbs every window.
        absorb_all = MeasurementStream(baseline, drift_threshold=1e9)
        assert absorb_all.fold_trace(trace) == []
        assert absorb_all.folds_absorbed == trace.num_windows


class TestMeasurementToProblemSeam:
    """Satellite: netmeasure → DeploymentProblem round trip."""

    def test_measurement_to_problem_json_round_trip(self):
        result = measured({
            (0, 1): [1.0, 1.2], (1, 0): [1.1],
            (0, 2): [2.0], (2, 0): [2.2],
            (1, 2): [3.0, 3.4], (2, 1): [3.3],
        })
        costs = result.to_cost_matrix()
        graph = CommunicationGraph.ring(3)
        problem = DeploymentProblem(graph, costs,
                                    metadata={"scheme": result.scheme})
        payload = json.loads(json.dumps(problem.to_dict()))
        restored = DeploymentProblem.from_dict(payload)
        assert restored.fingerprint() == problem.fingerprint()
        assert restored.instance_key() == problem.instance_key()
        plan = problem.default_plan()
        assert restored.evaluate(plan) == problem.evaluate(plan)

    def test_fingerprint_changes_iff_revised_costs_change(self):
        samples = {
            (0, 1): [1.0], (1, 0): [1.1],
            (0, 2): [2.0], (2, 0): [2.2],
            (1, 2): [3.0], (2, 1): [3.3],
        }
        graph = CommunicationGraph.ring(3)
        problem = DeploymentProblem(graph, measured(samples).to_cost_matrix())

        identical = problem.revise(
            costs=measured(samples).to_cost_matrix())
        assert identical.fingerprint() == problem.fingerprint()

        drifted_samples = dict(samples)
        drifted_samples[(0, 1)] = [1.5]
        revised = problem.revise(
            costs=measured(drifted_samples).to_cost_matrix())
        assert revised.fingerprint() != problem.fingerprint()

    def test_stream_revision_feeds_revise_directly(self):
        base = simple_costs()
        graph = CommunicationGraph.ring(3)
        problem = DeploymentProblem(graph, base,
                                    objective=Objective.LONGEST_LINK)
        stream = MeasurementStream(base, drift_threshold=0.05)
        revision = stream.fold_costs(
            simple_costs([[0, 1.4, 2], [1.5, 0, 3], [2.5, 3.5, 0]]))
        revised = problem.revise(costs=revision.costs)
        assert revised.costs is revision.costs
        assert revised.fingerprint() != problem.fingerprint()
