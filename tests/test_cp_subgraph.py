"""Tests for the subgraph-monomorphism satisfaction search."""

import time

import numpy as np
import pytest

from repro.core import CommunicationGraph
from repro.solvers.cp.subgraph import SubgraphMonomorphismSearch


def allowed_from_edges(n, edges, bidirectional=True):
    allowed = np.zeros((n, n), dtype=bool)
    for a, b in edges:
        allowed[a, b] = True
        if bidirectional:
            allowed[b, a] = True
    return allowed


class TestSubgraphSearch:
    def test_finds_embedding_in_complete_graph(self):
        graph = CommunicationGraph.mesh_2d(2, 3)
        n = 8
        allowed = np.ones((n, n), dtype=bool)
        outcome = SubgraphMonomorphismSearch(graph, list(range(n)), allowed).find()
        assert outcome.plan is not None
        assert outcome.plan.covers(graph)

    def test_respects_allowed_edges(self):
        # Communication graph: path of 3 nodes (bidirectional).
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 0), (1, 2), (2, 1)])
        # Instance graph: only the path 0-1-2-3 is allowed.
        allowed = allowed_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        outcome = SubgraphMonomorphismSearch(graph, [10, 11, 12, 13], allowed).find()
        assert outcome.plan is not None
        plan = outcome.plan
        # Every communication edge must land on an allowed instance link.
        index = {10: 0, 11: 1, 12: 2, 13: 3}
        for i, j in graph.edges:
            a, b = index[plan.instance_for(i)], index[plan.instance_for(j)]
            assert allowed[a, b]

    def test_detects_infeasibility(self):
        # A triangle cannot embed into a path.
        graph = CommunicationGraph([0, 1, 2],
                                   [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
        allowed = allowed_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        outcome = SubgraphMonomorphismSearch(graph, list(range(4)), allowed).find()
        assert outcome.plan is None
        assert outcome.proven_infeasible
        assert not outcome.timed_out

    def test_detects_infeasibility_by_count(self):
        graph = CommunicationGraph.mesh_2d(3, 3)
        allowed = allowed_from_edges(5, [(0, 1), (1, 2)])
        outcome = SubgraphMonomorphismSearch(graph, list(range(5)), allowed).find()
        assert outcome.proven_infeasible

    def test_directed_edges_respected(self):
        # One directed edge 0 -> 1; instance graph only allows 1 -> 0.
        graph = CommunicationGraph([0, 1], [(0, 1)])
        allowed = np.zeros((2, 2), dtype=bool)
        allowed[1, 0] = True
        outcome = SubgraphMonomorphismSearch(graph, [0, 1], allowed).find()
        assert outcome.plan is not None
        assert outcome.plan.instance_for(0) == 1
        assert outcome.plan.instance_for(1) == 0

    def test_deadline_reports_timeout(self):
        graph = CommunicationGraph.mesh_2d(4, 4)
        n = 20
        rng = np.random.default_rng(0)
        allowed = rng.random((n, n)) < 0.25
        allowed = allowed | allowed.T
        np.fill_diagonal(allowed, False)
        outcome = SubgraphMonomorphismSearch(
            graph, list(range(n)), allowed,
            deadline=time.perf_counter() - 1.0,  # already past
        ).find()
        # With an expired deadline the search cannot prove anything unless the
        # quick checks already settle it.
        assert outcome.plan is None or outcome.plan.covers(graph)

    def test_backtrack_limit(self):
        graph = CommunicationGraph.mesh_2d(3, 3)
        n = 12
        rng = np.random.default_rng(1)
        allowed = rng.random((n, n)) < 0.3
        allowed = allowed | allowed.T
        np.fill_diagonal(allowed, False)
        outcome = SubgraphMonomorphismSearch(
            graph, list(range(n)), allowed, max_backtracks=1
        ).find()
        # Either it got lucky immediately or it gave up without proving.
        if outcome.plan is None:
            assert outcome.timed_out or outcome.proven_infeasible

    def test_mesh_into_mesh_identity_exists(self):
        # A 2x2 mesh embeds into a 3x3 mesh-shaped instance graph.
        graph = CommunicationGraph.mesh_2d(2, 2)
        big = CommunicationGraph.mesh_2d(3, 3)
        allowed = allowed_from_edges(9, big.edges, bidirectional=False)
        outcome = SubgraphMonomorphismSearch(graph, list(range(9)), allowed).find()
        assert outcome.plan is not None
