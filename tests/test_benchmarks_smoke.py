"""Import smoke tests for the figure benchmarks.

``benchmarks/`` is deliberately excluded from tier-1 collection (see
``testpaths`` in pyproject.toml), which means plain API drift would only
surface when someone regenerates the figures.  These tests import every
``bench_*.py`` module — without running any benchmark — so bit-rot is
caught by ``pytest --run-bench`` (they are skipped by default because the
imports pull in the full advisor stack).

The benchmark modules do ``from conftest import ...`` expecting pytest to
have loaded *their* conftest; importing them from the tests context needs
that name temporarily rebound to ``benchmarks/conftest.py``.
"""

import importlib.util
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
BENCH_MODULES = sorted(BENCH_DIR.glob("bench_*.py"))


def _load_module(path: pathlib.Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


@pytest.fixture
def benchmarks_conftest():
    """Bind ``conftest`` to benchmarks/conftest.py for the test's duration."""
    previous = sys.modules.get("conftest")
    spec = importlib.util.spec_from_file_location("conftest",
                                                  BENCH_DIR / "conftest.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules["conftest"] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        if previous is not None:
            sys.modules["conftest"] = previous
        else:
            sys.modules.pop("conftest", None)


def test_bench_modules_exist():
    """The benchmark directory is present and non-trivial (fast, tier-1)."""
    assert len(BENCH_MODULES) >= 10


@pytest.mark.slow
@pytest.mark.parametrize("path", BENCH_MODULES, ids=lambda p: p.stem)
def test_bench_module_imports(path, benchmarks_conftest):
    module = _load_module(path, f"_bench_smoke_{path.stem}")
    # Every benchmark exposes at least one pytest-collectable test function.
    assert any(name.startswith("test_") for name in dir(module)), (
        f"{path.name} defines no test function"
    )
