"""Tests for the batch advisor session (compile dedup, pool, telemetry)."""

import json

import pytest

import repro.core.evaluation as evaluation
from repro.api import AdvisorSession, SolveRequest, SolverResponse
from repro.core import CommunicationGraph, DeploymentProblem, Objective
from repro.solvers import SearchBudget

from conftest import deterministic_cost_matrix


def _problem(num_instances=10, seed=0, graph=None, **kwargs):
    graph = graph if graph is not None else CommunicationGraph.ring(6)
    return DeploymentProblem(graph, deterministic_cost_matrix(num_instances,
                                                              seed=seed),
                             **kwargs)


def _roundtrip(problem):
    """A content-equal problem rebuilt from JSON (fresh objects)."""
    return DeploymentProblem.from_dict(json.loads(json.dumps(problem.to_dict())))


class TestSingleSolve:
    def test_solve_returns_ok_response(self):
        session = AdvisorSession()
        response = session.solve(SolveRequest(_problem(), solver="greedy"))
        assert response.ok
        assert response.solver == "greedy"
        assert response.request_id == "req-0000"
        assert response.plan.covers(CommunicationGraph.ring(6))
        assert response.telemetry is not None
        assert not response.telemetry.compile_cache_hit

    def test_auto_resolves_paper_default(self, tree_graph):
        session = AdvisorSession()
        link = session.solve(SolveRequest(
            _problem(), budget=SearchBudget.seconds(1)))
        path = session.solve(SolveRequest(
            _problem(graph=tree_graph, num_instances=8,
                     objective=Objective.LONGEST_PATH),
            budget=SearchBudget.seconds(1)))
        assert link.solver == "cp"
        assert path.solver == "mip"

    def test_solve_raises_on_bad_config(self):
        session = AdvisorSession()
        with pytest.raises(Exception, match="does not accept"):
            session.solve(SolveRequest(_problem(), solver="cp",
                                       config={"bogus": 1}))

    def test_custom_request_id_preserved(self):
        session = AdvisorSession()
        response = session.solve(SolveRequest(_problem(), solver="greedy",
                                              request_id="tenant-7/job-3"))
        assert response.request_id == "tenant-7/job-3"


class TestCompilationDedup:
    def test_distinct_pairs_compiled_exactly_once(self, monkeypatch):
        """Three requests over two distinct (graph, costs) pairs => exactly
        two CompiledProblem constructions, asserted both via telemetry and
        by counting actual constructor calls."""
        constructions = []
        original = evaluation.CompiledProblem.__init__

        def counting(self, graph, costs):
            constructions.append((graph, costs))
            return original(self, graph, costs)

        monkeypatch.setattr(evaluation.CompiledProblem, "__init__", counting)

        shared = _problem(seed=1)
        other = _problem(seed=2)
        session = AdvisorSession()
        responses = session.solve_many([
            SolveRequest(shared, solver="greedy"),
            SolveRequest(_roundtrip(shared), solver="g1"),
            SolveRequest(other, solver="greedy"),
        ])
        assert [response.ok for response in responses] == [True, True, True]
        assert len(constructions) == 2
        hits = [response.telemetry.compile_cache_hit for response in responses]
        assert hits == [False, True, False]
        stats = session.stats
        assert stats.compilations == 2
        assert stats.compile_cache_hits == 1
        assert stats.requests == 3

    def test_canonical_cache_is_bounded_lru(self):
        p1, p2 = _problem(seed=1), _problem(seed=2)
        session = AdvisorSession(max_cached_problems=1)
        session.solve(SolveRequest(p1, solver="greedy"))
        session.solve(SolveRequest(p1, solver="greedy"))  # hit
        session.solve(SolveRequest(p2, solver="greedy"))  # evicts p1
        session.solve(SolveRequest(p1, solver="greedy"))  # recompiled
        stats = session.stats
        assert stats.compilations == 3
        assert stats.compile_cache_hits == 1

    def test_batch_exactly_once_despite_tiny_cache(self):
        """A batch with more distinct instances than the LRU bound must
        still compile each distinct instance exactly once: the per-batch
        memo outlives the session cache's evictions."""
        p1, p2, p3 = (_problem(seed=s) for s in (1, 2, 3))
        session = AdvisorSession(max_cached_problems=1)
        responses = session.solve_many([
            SolveRequest(p, solver="greedy")
            for p in (p1, p2, p3, p1, p2)
        ])
        assert all(r.ok for r in responses)
        assert session.stats.compilations == 3
        assert session.stats.compile_cache_hits == 2
        hits = [r.telemetry.compile_cache_hit for r in responses]
        assert hits == [False, False, False, True, True]

    def test_clear_cache_forces_recompilation(self):
        problem = _problem(seed=1)
        session = AdvisorSession()
        session.solve(SolveRequest(problem, solver="greedy"))
        session.clear_cache()
        session.solve(SolveRequest(problem, solver="greedy"))
        assert session.stats.compilations == 2

    def test_dedup_spans_objectives(self, tree_graph):
        """Same (graph, costs) under different objectives shares one
        compilation: the instance key ignores the objective."""
        costs = deterministic_cost_matrix(8, seed=3)
        link = DeploymentProblem(tree_graph, costs)
        path = DeploymentProblem(tree_graph, costs,
                                 objective=Objective.LONGEST_PATH)
        session = AdvisorSession()
        session.solve_many([
            SolveRequest(link, solver="greedy"),
            SolveRequest(path, solver="greedy"),
        ])
        assert session.stats.compilations == 1
        assert session.stats.compile_cache_hits == 1

    def test_deduped_solve_is_bit_identical(self):
        """A request deserialized from JSON produces the same plan as the
        original in-memory problem."""
        problem = _problem(seed=4)
        session = AdvisorSession()
        direct, replayed = session.solve_many([
            SolveRequest(problem, solver="r1",
                         config={"num_samples": 100, "seed": 0}),
            SolveRequest(_roundtrip(problem), solver="r1",
                         config={"num_samples": 100, "seed": 0}),
        ])
        assert direct.plan == replayed.plan
        assert direct.cost == replayed.cost


class TestBatches:
    def test_order_preserved_with_worker_pool(self):
        problems = [_problem(seed=s) for s in range(6)]
        session = AdvisorSession(max_workers=4)
        responses = session.solve_many([
            SolveRequest(p, solver="greedy", request_id=f"job-{i}")
            for i, p in enumerate(problems)
        ])
        assert [r.request_id for r in responses] == [
            f"job-{i}" for i in range(6)
        ]
        assert all(r.ok for r in responses)

    def test_pool_matches_sequential_results(self):
        problems = [_problem(seed=s) for s in range(4)]
        requests = [SolveRequest(p, solver="r1",
                                 config={"num_samples": 50, "seed": 1})
                    for p in problems]
        parallel = AdvisorSession(max_workers=4).solve_many(requests)
        sequential = AdvisorSession(max_workers=1).solve_many(requests)
        for fast, slow in zip(parallel, sequential):
            assert fast.plan == slow.plan
            assert fast.cost == slow.cost

    def test_errors_captured_per_request(self):
        session = AdvisorSession()
        responses = session.solve_many([
            SolveRequest(_problem(), solver="greedy"),
            SolveRequest(_problem(), solver="cp", config={"bogus": 1}),
        ])
        assert responses[0].ok
        assert not responses[1].ok
        assert "bogus" in responses[1].error
        assert responses[1].result is None

    def test_empty_batch(self):
        assert AdvisorSession().solve_many([]) == []

    def test_batch_responses_serialize(self, tmp_path):
        session = AdvisorSession()
        responses = session.solve_many([
            SolveRequest(_problem(), solver="greedy"),
        ])
        path = tmp_path / "responses.json"
        path.write_text(json.dumps([r.to_dict() for r in responses]))
        restored = [SolverResponse.from_dict(entry)
                    for entry in json.loads(path.read_text())]
        assert restored[0].plan == responses[0].plan
        assert restored[0].cost == responses[0].cost
        assert restored[0].telemetry.compile_cache_hit is False


class TestStatsSerialization:
    def test_stats_to_dict_covers_every_layer(self):
        session = AdvisorSession()
        request = SolveRequest(_problem(), solver="greedy")
        session.solve(request)
        session.solve(SolveRequest(_problem(), solver="local-search",
                                   config={"seed": 3},
                                   budget=SearchBudget(max_iterations=50)))
        payload = session.stats.to_dict()
        assert payload["requests"] == 2
        assert payload["compilations"] == 1
        assert payload["compile_cache_hits"] == 1
        assert payload["compile_hit_rate"] == 0.5
        engine = payload["engine_cache"]
        assert {"hits", "misses", "evictions", "size", "max_entries",
                "hit_rate"} <= set(engine)
        # The snapshot must be JSON-clean as-is (the /metrics endpoint
        # serialises it verbatim).
        json.dumps(payload, allow_nan=False)

    def test_stats_to_dict_on_fresh_session(self):
        payload = AdvisorSession().stats.to_dict()
        assert payload["requests"] == 0
        assert payload["compile_hit_rate"] == 0.0
        json.dumps(payload, allow_nan=False)
