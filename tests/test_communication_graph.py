"""Tests for communication graphs and their templates."""

import pytest

from repro.core import CommunicationGraph, InvalidGraphError
from repro.core.communication_graph import augment_with_dummy_nodes


class TestConstruction:
    def test_basic_graph(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(InvalidGraphError):
            CommunicationGraph([0, 0, 1], [])

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidGraphError):
            CommunicationGraph([], [])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError):
            CommunicationGraph([0, 1], [(0, 0)])

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(InvalidGraphError):
            CommunicationGraph([0, 1], [(0, 2)])

    def test_duplicate_edges_deduplicated(self):
        graph = CommunicationGraph([0, 1], [(0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_from_edges_infers_nodes(self):
        graph = CommunicationGraph.from_edges([(3, 5), (5, 7)])
        assert set(graph.nodes) == {3, 5, 7}

    def test_equality_and_hash(self):
        a = CommunicationGraph([0, 1], [(0, 1)])
        b = CommunicationGraph([1, 0], [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestAccessors:
    def test_successors_predecessors_neighbors(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (2, 1)])
        assert graph.successors(0) == (1,)
        assert graph.predecessors(1) == (0, 2)
        assert set(graph.neighbors(1)) == {0, 2}

    def test_degrees(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 0), (1, 2)])
        assert graph.out_degree(1) == 2
        assert graph.in_degree(1) == 1
        assert graph.degree(1) == 2  # undirected neighbors {0, 2}

    def test_undirected_edges_collapse_directions(self):
        graph = CommunicationGraph([0, 1], [(0, 1), (1, 0)])
        assert graph.undirected_edges() == ((0, 1),)

    def test_sources_and_sinks(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 2)])
        assert graph.sources() == [0]
        assert graph.sinks() == [2]

    def test_relabeled(self):
        graph = CommunicationGraph([0, 1], [(0, 1)])
        relabeled = graph.relabeled({0: 10, 1: 20})
        assert relabeled.has_edge(10, 20)

    def test_relabel_missing_node_rejected(self):
        graph = CommunicationGraph([0, 1], [(0, 1)])
        with pytest.raises(InvalidGraphError):
            graph.relabeled({0: 10})


class TestStructure:
    def test_dag_detection(self):
        dag = CommunicationGraph([0, 1, 2], [(0, 1), (1, 2)])
        cyclic = CommunicationGraph([0, 1], [(0, 1), (1, 0)])
        assert dag.is_dag()
        assert not cyclic.is_dag()

    def test_topological_order_respects_edges(self):
        graph = CommunicationGraph([0, 1, 2, 3], [(0, 2), (1, 2), (2, 3)])
        order = graph.topological_order()
        assert order.index(0) < order.index(2) < order.index(3)

    def test_topological_order_on_cycle_raises(self):
        graph = CommunicationGraph([0, 1], [(0, 1), (1, 0)])
        with pytest.raises(InvalidGraphError):
            graph.topological_order()

    def test_connectivity(self):
        connected = CommunicationGraph.ring(5)
        disconnected = CommunicationGraph([0, 1, 2], [(0, 1)])
        assert connected.is_connected()
        assert not disconnected.is_connected()


class TestTemplates:
    def test_mesh_2d_size_and_degree(self):
        mesh = CommunicationGraph.mesh_2d(3, 4)
        assert mesh.num_nodes == 12
        # Interior node of a 3x4 mesh has 4 neighbors; corner has 2.
        corner_degree = mesh.degree(0)
        interior_degree = mesh.degree(5)
        assert corner_degree == 2
        assert interior_degree == 4
        # All edges bidirectional.
        for i, j in mesh.edges:
            assert mesh.has_edge(j, i)

    def test_mesh_2d_torus_is_regular(self):
        torus = CommunicationGraph.mesh_2d(3, 3, wrap=True)
        assert all(torus.degree(n) == 4 for n in torus.nodes)

    def test_mesh_3d(self):
        mesh = CommunicationGraph.mesh_3d(2, 2, 2)
        assert mesh.num_nodes == 8
        assert all(mesh.degree(n) == 3 for n in mesh.nodes)

    def test_invalid_mesh_dimensions(self):
        with pytest.raises(InvalidGraphError):
            CommunicationGraph.mesh_2d(0, 3)

    def test_ring(self):
        ring = CommunicationGraph.ring(6)
        assert ring.num_nodes == 6
        assert all(ring.degree(n) == 2 for n in ring.nodes)

    def test_star(self):
        star = CommunicationGraph.star(5)
        assert star.degree(0) == 5
        assert all(star.degree(n) == 1 for n in range(1, 6))

    def test_complete(self):
        complete = CommunicationGraph.complete(4)
        assert complete.num_edges == 12

    def test_hypercube(self):
        cube = CommunicationGraph.hypercube(3)
        assert cube.num_nodes == 8
        assert all(cube.degree(n) == 3 for n in cube.nodes)

    def test_aggregation_tree_structure(self):
        tree = CommunicationGraph.aggregation_tree(branching=3, depth=2)
        assert tree.num_nodes == 1 + 3 + 9
        assert tree.is_dag()
        # Edges point towards the root (node 0), which is the only sink.
        assert tree.sinks() == [0]
        assert len(tree.sources()) == 9

    def test_aggregation_tree_root_to_leaves(self):
        tree = CommunicationGraph.aggregation_tree(2, 2, leaves_to_root=False)
        assert tree.sources() == [0]

    def test_bipartite(self):
        graph = CommunicationGraph.bipartite(2, 3)
        assert graph.num_nodes == 5
        assert graph.num_edges == 2 * 2 * 3
        assert graph.has_edge(0, 2) and graph.has_edge(2, 0)

    def test_random_graph_determinism(self):
        a = CommunicationGraph.random_graph(10, 0.3, seed=7)
        b = CommunicationGraph.random_graph(10, 0.3, seed=7)
        assert a == b

    def test_random_dag_is_acyclic(self):
        dag = CommunicationGraph.random_dag(12, 0.4, seed=3)
        assert dag.is_dag()

    def test_random_graph_probability_bounds(self):
        with pytest.raises(InvalidGraphError):
            CommunicationGraph.random_graph(5, 1.5)


class TestDummyAugmentation:
    def test_padding_adds_isolated_nodes(self):
        graph = CommunicationGraph([0, 1], [(0, 1)])
        padded = augment_with_dummy_nodes(graph, 5)
        assert padded.num_nodes == 5
        assert padded.num_edges == 1
        for node in padded.nodes:
            if node not in (0, 1):
                assert padded.degree(node) == 0

    def test_padding_noop_when_equal(self):
        graph = CommunicationGraph([0, 1], [(0, 1)])
        assert augment_with_dummy_nodes(graph, 2) is graph

    def test_padding_rejects_too_few_instances(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1)])
        with pytest.raises(InvalidGraphError):
            augment_with_dummy_nodes(graph, 2)
