"""Tests for the solver registry and its typed configuration."""

import pytest

from repro.core import DeploymentProblem, Objective
from repro.solvers import (
    CPLongestLinkSolver,
    DeploymentSolver,
    MIPLongestPathSolver,
    SearchBudget,
)
from repro.solvers.registry import (
    SolverConfigError,
    SolverRegistry,
    UnknownSolverError,
    default_registry,
)

from conftest import deterministic_cost_matrix


class TestResolution:
    def test_all_keys_resolve_to_solvers(self):
        for key in default_registry.available():
            solver = default_registry.make(key)
            assert isinstance(solver, DeploymentSolver), key

    def test_expected_keys_present(self):
        available = set(default_registry.available())
        assert {"cp", "mip", "mip-ll", "greedy", "g1", "random", "r1", "r2",
                "local-search", "annealing", "portfolio"} <= available

    def test_make_with_typed_config(self):
        solver = default_registry.make("cp", seed=7, k_clusters=None)
        assert isinstance(solver, CPLongestLinkSolver)
        assert solver._seed == 7
        assert solver.k_clusters is None

    def test_unknown_key_raises_with_available_list(self):
        with pytest.raises(UnknownSolverError, match="cp"):
            default_registry.make("cplex")

    def test_unknown_config_field_lists_accepted(self):
        with pytest.raises(SolverConfigError, match="seed"):
            default_registry.make("cp", sead=3)

    def test_config_rejected_for_factory_without_field(self):
        with pytest.raises(SolverConfigError):
            default_registry.make("greedy", seed=3)

    def test_accepts_probes_config_fields(self):
        assert default_registry.accepts("cp", "seed")
        assert default_registry.accepts("mip", "seed")
        assert not default_registry.accepts("greedy", "seed")


class TestSeedRouting:
    def test_mip_solvers_accept_seed(self):
        lp = default_registry.make("mip", seed=11)
        ll = default_registry.make("mip-ll", seed=11)
        assert lp._seed == 11
        assert ll._seed == 11

    def test_cli_build_solver_routes_seed_to_mip(self):
        from repro.cli import build_solver

        solver = build_solver("mip", 42)
        assert isinstance(solver, MIPLongestPathSolver)
        assert solver._seed == 42

    def test_mip_seed_draws_deterministic_warm_start(self, tree_graph):
        costs = deterministic_cost_matrix(8, seed=5)
        problem = DeploymentProblem(tree_graph, costs,
                                    objective=Objective.LONGEST_PATH)
        budget = SearchBudget(max_iterations=1)
        a = default_registry.make("mip", seed=3).solve(problem, budget=budget)
        b = default_registry.make("mip", seed=3).solve(problem, budget=budget)
        assert a.plan == b.plan
        assert a.cost == b.cost

    def test_mip_warm_start_seeds_the_incumbent(self, tree_graph):
        """The warm start must reach branch and bound as an incumbent, so a
        seeded run can only explore fewer-or-equal nodes and never returns
        a plan worse than the warm start."""
        from repro.core import CommunicationGraph
        from repro.solvers import RandomSearch

        graph = CommunicationGraph.aggregation_tree(2, 1)  # 3 nodes
        costs = deterministic_cost_matrix(4, seed=5)
        problem = DeploymentProblem(graph, costs,
                                    objective=Objective.LONGEST_PATH)
        warm = RandomSearch(num_samples=200, seed=0).solve(problem)
        budget = SearchBudget.seconds(30)
        cold = MIPLongestPathSolver(backend="bnb").solve(problem,
                                                         budget=budget)
        hot = MIPLongestPathSolver(backend="bnb").solve(
            problem, budget=budget, initial_plan=warm.plan)
        assert cold.optimal and hot.optimal
        assert hot.cost == pytest.approx(cold.cost)
        assert hot.cost <= warm.cost + 1e-12
        # The incumbent is live from node zero, so the seeded search can
        # only prune more, never explore more.
        assert hot.iterations <= cold.iterations

    def test_mip_without_seed_keeps_historical_behaviour(self, tree_graph):
        costs = deterministic_cost_matrix(8, seed=5)
        problem = DeploymentProblem(tree_graph, costs,
                                    objective=Objective.LONGEST_PATH)
        # A node budget (not wall-clock) keeps both runs deterministic.
        budget = SearchBudget(max_iterations=40)
        via_registry = default_registry.make("mip").solve(problem,
                                                          budget=budget)
        direct = MIPLongestPathSolver(backend="bnb").solve(problem,
                                                           budget=budget)
        assert via_registry.plan == direct.plan
        assert via_registry.cost == direct.cost


class TestCapabilities:
    def test_supporting_filters_by_objective(self):
        link = default_registry.supporting(Objective.LONGEST_LINK)
        path = default_registry.supporting(Objective.LONGEST_PATH)
        assert "cp" in link and "cp" not in path
        assert "mip" in path and "mip" not in link
        assert "greedy" in link and "greedy" in path

    def test_supporting_filters_by_size(self):
        small = default_registry.supporting(Objective.LONGEST_LINK,
                                            num_nodes=10)
        large = default_registry.supporting(Objective.LONGEST_LINK,
                                            num_nodes=500)
        assert "mip-ll" in small
        assert "mip-ll" not in large
        assert "cp" in large

    def test_for_problem(self, mesh_graph):
        problem = DeploymentProblem(mesh_graph, deterministic_cost_matrix(10))
        keys = default_registry.for_problem(problem)
        assert "cp" in keys and "mip" not in keys

    def test_default_keys_match_paper(self):
        assert default_registry.default_key(Objective.LONGEST_LINK) == "cp"
        assert default_registry.default_key(Objective.LONGEST_PATH) == "mip"

    def test_resolve_handles_auto_and_none(self):
        assert default_registry.resolve("auto", Objective.LONGEST_LINK) == "cp"
        assert default_registry.resolve(None, Objective.LONGEST_PATH) == "mip"
        assert default_registry.resolve("greedy", Objective.LONGEST_LINK) == "greedy"
        with pytest.raises(UnknownSolverError):
            default_registry.resolve("nope", Objective.LONGEST_LINK)

    def test_advisor_config_accepts_auto_and_key(self):
        from repro.core.advisor import AdvisorConfig

        auto = AdvisorConfig(solver="auto", seed=5).build_solver()
        default = AdvisorConfig(seed=5).build_solver()
        assert type(auto) is type(default)
        assert isinstance(AdvisorConfig(solver="greedy").build_solver(),
                          DeploymentSolver)

    def test_advisor_config_rejects_config_with_instance(self):
        """The conflict must surface at construction, before an advisor run
        has paid for allocation and measurement."""
        from repro.core.advisor import AdvisorConfig

        with pytest.raises(ValueError, match="solver_config"):
            AdvisorConfig(solver=CPLongestLinkSolver(),
                          solver_config={"seed": 7})


class TestRegistration:
    def test_duplicate_key_refused(self):
        registry = SolverRegistry()
        registry.register("cp", CPLongestLinkSolver, summary="x")
        with pytest.raises(Exception, match="already registered"):
            registry.register("cp", CPLongestLinkSolver, summary="y")
        registry.register("cp", CPLongestLinkSolver, summary="y", replace=True)
        assert registry.spec("cp").summary == "y"

    def test_objectives_inferred_from_class(self):
        registry = SolverRegistry()
        spec = registry.register("cp", CPLongestLinkSolver, summary="x")
        assert spec.objectives == (Objective.LONGEST_LINK,)


class TestWarmStartCapability:
    def test_every_builtin_declares_warm_start(self):
        for spec in default_registry.specs():
            assert spec.supports_warm_start, \
                f"{spec.key} should declare warm-start support"

    def test_supporting_filters_on_warm_start(self):
        registry = SolverRegistry()
        registry.register("cp", CPLongestLinkSolver, summary="warm")

        def legacy_factory():
            return CPLongestLinkSolver()

        registry.register("legacy", legacy_factory, summary="cold",
                          objectives=(Objective.LONGEST_LINK,))
        assert registry.spec("legacy").supports_warm_start is False
        assert registry.supporting(Objective.LONGEST_LINK) == ("cp", "legacy")
        assert registry.supporting(Objective.LONGEST_LINK,
                                   warm_start=True) == ("cp",)
        # warm_start=None / False do not filter, mirroring `constrained`.
        assert registry.supporting(Objective.LONGEST_LINK,
                                   warm_start=False) == ("cp", "legacy")

    def test_for_problem_warm_start_filter(self, mesh_graph):
        costs = deterministic_cost_matrix(12, seed=31)
        problem = DeploymentProblem(mesh_graph, costs)
        registry = SolverRegistry()
        registry.register("cp", CPLongestLinkSolver, summary="warm")

        def legacy_factory():
            return CPLongestLinkSolver()

        registry.register("legacy", legacy_factory, summary="cold",
                          objectives=(Objective.LONGEST_LINK,))
        assert "legacy" in registry.for_problem(problem)
        assert registry.for_problem(problem, warm_start=True) == ("cp",)

    def test_explicit_registration_overrides_factory_attribute(self):
        registry = SolverRegistry()
        spec = registry.register("cp", CPLongestLinkSolver, summary="x",
                                 supports_warm_start=False)
        assert spec.supports_warm_start is False
