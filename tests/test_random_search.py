"""Tests for the R1 / R2 randomized deployment search."""

import pytest

from repro.core import CommunicationGraph, Objective
from repro.core.objectives import deployment_cost
from repro.solvers import RandomSearch, SearchBudget

from conftest import deterministic_cost_matrix


@pytest.fixture
def problem():
    graph = CommunicationGraph.mesh_2d(3, 3)
    costs = deterministic_cost_matrix(11, seed=2)
    return graph, costs


class TestRandomSearch:
    def test_result_cost_matches_plan(self, problem):
        graph, costs = problem
        result = RandomSearch(num_samples=100, seed=0).solve(graph, costs)
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, graph, costs, Objective.LONGEST_LINK)
        )
        assert result.iterations == 100
        assert not result.optimal

    def test_deterministic_given_seed(self, problem):
        graph, costs = problem
        a = RandomSearch(num_samples=50, seed=7).solve(graph, costs)
        b = RandomSearch(num_samples=50, seed=7).solve(graph, costs)
        assert a.plan == b.plan
        assert a.cost == b.cost

    def test_more_samples_never_worse(self, problem):
        graph, costs = problem
        small = RandomSearch(num_samples=10, seed=3).solve(graph, costs)
        large = RandomSearch(num_samples=500, seed=3).solve(graph, costs)
        assert large.cost <= small.cost

    def test_trace_is_monotone_decreasing(self, problem):
        graph, costs = problem
        result = RandomSearch(num_samples=200, seed=1).solve(graph, costs)
        costs_in_trace = [cost for _, cost in result.trace]
        assert costs_in_trace == sorted(costs_in_trace, reverse=True)

    def test_initial_plan_used_as_incumbent(self, problem):
        graph, costs = problem
        warm = RandomSearch(num_samples=2000, seed=9).solve(graph, costs).plan
        warm_cost = deployment_cost(warm, graph, costs, Objective.LONGEST_LINK)
        result = RandomSearch(num_samples=1, seed=0).solve(graph, costs,
                                                           initial_plan=warm)
        assert result.cost <= warm_cost

    def test_longest_path_objective(self):
        graph = CommunicationGraph.aggregation_tree(2, 2)
        costs = deterministic_cost_matrix(8, seed=5)
        result = RandomSearch(num_samples=100, seed=0).solve(
            graph, costs, objective=Objective.LONGEST_PATH
        )
        assert result.cost == pytest.approx(
            deployment_cost(result.plan, graph, costs, Objective.LONGEST_PATH)
        )

    def test_iteration_budget_respected(self, problem):
        graph, costs = problem
        result = RandomSearch(num_samples=None, seed=0).solve(
            graph, costs, budget=SearchBudget(max_iterations=25)
        )
        assert result.iterations == 25

    def test_time_budget_respected(self, problem):
        graph, costs = problem
        result = RandomSearch.r2(seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(0.2)
        )
        assert result.solve_time_s <= 1.0
        assert result.iterations > 0

    def test_unbounded_time_search_rejected(self, problem):
        graph, costs = problem
        with pytest.raises(ValueError):
            RandomSearch(num_samples=None).solve(graph, costs,
                                                 budget=SearchBudget.unlimited())

    def test_target_cost_stops_early(self, problem):
        graph, costs = problem
        # A target equal to the max possible cost is met by the first plan.
        result = RandomSearch(num_samples=10_000, seed=0).solve(
            graph, costs, budget=SearchBudget(target_cost=costs.max_cost())
        )
        assert result.iterations < 10_000

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomSearch(num_samples=0)
        with pytest.raises(ValueError):
            RandomSearch(parallel_factor=0)

    def test_r1_r2_names(self):
        assert RandomSearch.r1().name == "R1"
        assert RandomSearch.r2().name == "R2"
