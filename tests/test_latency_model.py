"""Tests for provider profiles and the latency model."""

import numpy as np
import pytest

from repro.cloud import DatacenterTopology, LatencyModel, ProviderProfile


@pytest.fixture
def topology():
    return DatacenterTopology(num_pods=3, racks_per_pod=3, hosts_per_rack=6, seed=0)


@pytest.fixture
def model(topology):
    return LatencyModel(topology, ProviderProfile.ec2(), seed=0)


class TestProviderProfile:
    def test_builtin_profiles(self):
        for name in ("ec2", "gce", "rackspace"):
            profile = ProviderProfile.by_name(name)
            assert profile.name == name
            assert profile.same_rack_ms[0] < profile.cross_pod_ms[1]

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            ProviderProfile.by_name("azure-classic")

    def test_ec2_wider_spread_than_gce(self):
        """The paper observes more heterogeneity in EC2 than in GCE."""
        ec2 = ProviderProfile.ec2()
        gce = ProviderProfile.gce()
        ec2_spread = ec2.cross_pod_ms[1] / ec2.same_rack_ms[0]
        gce_spread = gce.cross_pod_ms[1] / gce.same_rack_ms[0]
        assert ec2_spread > gce_spread


class TestLatencyModel:
    def test_self_latency_zero(self, model):
        assert model.base_mean_latency(0, 0) == 0.0
        assert model.mean_latency(0, 0) == 0.0

    def test_base_latency_symmetric_and_stable(self, model):
        a, b = 0, 20
        first = model.base_mean_latency(a, b)
        second = model.base_mean_latency(b, a)
        third = model.base_mean_latency(a, b)
        assert first == second == third
        assert first > 0

    def test_same_model_seed_reproducible(self, topology):
        a = LatencyModel(topology, ProviderProfile.ec2(), seed=7)
        b = LatencyModel(topology, ProviderProfile.ec2(), seed=7)
        assert a.base_mean_latency(1, 30) == b.base_mean_latency(1, 30)

    def test_different_seed_changes_latencies(self, topology):
        a = LatencyModel(topology, ProviderProfile.ec2(), seed=1)
        b = LatencyModel(topology, ProviderProfile.ec2(), seed=2)
        values_a = [a.base_mean_latency(0, h) for h in range(1, 20)]
        values_b = [b.base_mean_latency(0, h) for h in range(1, 20)]
        assert values_a != values_b

    def test_locality_orders_average_latency(self, model, topology):
        """Same-rack pairs are cheaper than cross-pod pairs on average."""
        same_rack, cross_pod = [], []
        for a in range(topology.num_hosts):
            for b in range(a + 1, topology.num_hosts):
                locality = topology.locality(a, b)
                if locality == "same_rack":
                    same_rack.append(model.base_mean_latency(a, b))
                elif locality == "cross_pod":
                    cross_pod.append(model.base_mean_latency(a, b))
        assert np.mean(same_rack) < np.mean(cross_pod)

    def test_drift_is_small(self, model):
        """Mean latency drifts by at most ~2x the configured amplitude."""
        base = model.mean_latency(0, 30, at_hours=0.0)
        drifted = [model.mean_latency(0, 30, at_hours=t) for t in range(0, 200, 10)]
        max_deviation = max(abs(value - base) / base for value in drifted)
        assert max_deviation < 3 * model.profile.drift_amplitude

    def test_sample_mean_converges_to_model_mean(self, model):
        rng = np.random.default_rng(0)
        a, b = 0, 40
        target = model.mean_latency(a, b, at_hours=0.0)
        samples = [model.sample_rtt(a, b, rng, message_bytes=0) for _ in range(4000)]
        # Jitter has unit mean, spikes add a small positive bias; 15 % slack.
        assert np.mean(samples) == pytest.approx(target, rel=0.15)

    def test_samples_are_positive_and_jittery(self, model):
        rng = np.random.default_rng(1)
        samples = [model.sample_rtt(0, 50, rng) for _ in range(100)]
        assert all(value > 0 for value in samples)
        assert np.std(samples) > 0

    def test_message_size_increases_latency(self, model):
        small = model.message_size_term(1024)
        large = model.message_size_term(64 * 1024)
        assert large > small > 0

    def test_host_factor_known_for_all_hosts(self, model, topology):
        factors = [model.host_factor(h.host_id) for h in topology.hosts()]
        assert all(factor > 0.9 for factor in factors)
        assert max(factors) <= 2.1
