"""Tests for deployment plans (injective node -> instance mappings)."""

import numpy as np
import pytest

from repro.core import CommunicationGraph, DeploymentPlan, InvalidDeploymentError


class TestConstruction:
    def test_basic_mapping(self):
        plan = DeploymentPlan({0: 10, 1: 11})
        assert plan.instance_for(0) == 10
        assert plan.node_for(11) == 1
        assert plan.node_for(99) is None

    def test_rejects_non_injective(self):
        with pytest.raises(InvalidDeploymentError):
            DeploymentPlan({0: 10, 1: 10})

    def test_rejects_empty(self):
        with pytest.raises(InvalidDeploymentError):
            DeploymentPlan({})

    def test_identity_uses_provider_order(self):
        plan = DeploymentPlan.identity([0, 1, 2], [30, 20, 10, 5])
        assert plan.instance_for(0) == 30
        assert plan.instance_for(2) == 10

    def test_identity_rejects_too_few_instances(self):
        with pytest.raises(InvalidDeploymentError):
            DeploymentPlan.identity([0, 1, 2], [7])

    def test_random_is_injective_and_seedable(self):
        nodes = list(range(10))
        instances = list(range(100, 115))
        a = DeploymentPlan.random(nodes, instances, rng=5)
        b = DeploymentPlan.random(nodes, instances, rng=5)
        assert a == b
        assert len(set(a.used_instances())) == 10
        assert set(a.used_instances()) <= set(instances)

    def test_random_rejects_too_few_instances(self):
        with pytest.raises(InvalidDeploymentError):
            DeploymentPlan.random([0, 1, 2], [7, 8], rng=0)

    def test_from_permutation(self):
        plan = DeploymentPlan.from_permutation([0, 1], [5, 6, 7], [2, 0])
        assert plan.instance_for(0) == 7
        assert plan.instance_for(1) == 5

    def test_from_permutation_length_mismatch(self):
        with pytest.raises(InvalidDeploymentError):
            DeploymentPlan.from_permutation([0, 1], [5, 6], [0])


class TestAccessors:
    def test_unused_instances(self):
        plan = DeploymentPlan({0: 10, 1: 12})
        assert plan.unused_instances([10, 11, 12, 13]) == [11, 13]

    def test_missing_node_raises(self):
        plan = DeploymentPlan({0: 10})
        with pytest.raises(InvalidDeploymentError):
            plan.instance_for(5)

    def test_covers(self):
        graph = CommunicationGraph([0, 1, 2], [(0, 1), (1, 2)])
        assert DeploymentPlan({0: 5, 1: 6, 2: 7}).covers(graph)
        assert not DeploymentPlan({0: 5, 1: 6}).covers(graph)

    def test_as_dict_is_copy(self):
        plan = DeploymentPlan({0: 10})
        mapping = plan.as_dict()
        mapping[0] = 99
        assert plan.instance_for(0) == 10

    def test_equality_and_hash(self):
        a = DeploymentPlan({0: 1, 1: 2})
        b = DeploymentPlan({1: 2, 0: 1})
        assert a == b
        assert hash(a) == hash(b)


class TestDerivedPlans:
    def test_swap_exchanges_instances(self):
        plan = DeploymentPlan({0: 10, 1: 11})
        swapped = plan.with_swap(0, 1)
        assert swapped.instance_for(0) == 11
        assert swapped.instance_for(1) == 10
        # The original plan is unchanged.
        assert plan.instance_for(0) == 10

    def test_relocation_to_unused_instance(self):
        plan = DeploymentPlan({0: 10, 1: 11})
        moved = plan.with_relocation(0, 15)
        assert moved.instance_for(0) == 15
        assert moved.instance_for(1) == 11

    def test_relocation_to_used_instance_rejected(self):
        plan = DeploymentPlan({0: 10, 1: 11})
        with pytest.raises(InvalidDeploymentError):
            plan.with_relocation(0, 11)

    def test_relocation_to_own_instance_is_noop(self):
        plan = DeploymentPlan({0: 10, 1: 11})
        same = plan.with_relocation(0, 10)
        assert same == plan

    def test_restricted_to(self):
        plan = DeploymentPlan({0: 10, 1: 11, 2: 12})
        restricted = plan.restricted_to([0, 2])
        assert restricted.num_nodes == 2
        assert restricted.instance_for(2) == 12
