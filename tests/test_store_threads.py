"""One ``SQLiteResultCache`` hammered by many threads in one process —
the serving layer's worker pool shares exactly one store connection, so
no write may be lost and the busy-timeout contract must hold."""

from __future__ import annotations

import threading

import pytest

from repro.core import CommunicationGraph, DeploymentProblem, Objective
from repro.core.errors import StoreError
from repro.solvers import SolverResult
from repro.store import SQLiteResultCache, connect
from repro.store.connection import pragma_value
from repro.testing import deterministic_cost_matrix

THREADS = 16
WRITES_PER_THREAD = 8


@pytest.fixture
def problem():
    costs = deterministic_cost_matrix(9, seed=31, symmetric=False)
    graph = CommunicationGraph.ring(6)
    return DeploymentProblem(graph, costs)


def make_result(problem, cost=1.25):
    return SolverResult(
        plan=problem.default_plan(), cost=cost,
        objective=Objective.LONGEST_LINK, solver_name="G2",
        solve_time_s=0.1, iterations=3, optimal=False,
    )


def hammer(count, worker):
    """Run ``worker(index)`` on ``count`` threads; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(count)

    def run(index):
        try:
            barrier.wait(10.0)
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
    if errors:
        raise errors[0]


class TestConcurrentWrites:
    def test_distinct_keys_lose_no_writes(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()

        def worker(index):
            for write in range(WRITES_PER_THREAD):
                tag = f"solver-{index}-{write}"
                store.put(fingerprint, tag,
                          make_result(problem, cost=index + write / 100.0))

        hammer(THREADS, worker)
        assert len(store) == THREADS * WRITES_PER_THREAD
        assert store.stats.writes == THREADS * WRITES_PER_THREAD
        # Every write is readable back with its own payload.
        for index in range(THREADS):
            for write in range(WRITES_PER_THREAD):
                result = store.get(fingerprint, f"solver-{index}-{write}")
                assert result is not None
                assert result.cost == index + write / 100.0

    def test_contended_upserts_converge_to_one_row(self, tmp_path, problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()
        costs = [float(index) for index in range(THREADS)]

        def worker(index):
            store.put(fingerprint, "greedy",
                      make_result(problem, cost=costs[index]))

        hammer(THREADS, worker)
        assert len(store) == 1
        result = store.get(fingerprint, "greedy")
        # Last-writer-wins upsert: whichever thread landed last, the row
        # is one of the written payloads, never a torn mix.
        assert result.cost in costs

    def test_interleaved_readers_see_complete_results(self, tmp_path,
                                                      problem):
        store = SQLiteResultCache(tmp_path / "store.db")
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "seed", make_result(problem, cost=0.5))

        def worker(index):
            if index % 2:
                store.put(fingerprint, f"tag-{index}",
                          make_result(problem, cost=float(index)))
            else:
                for _ in range(20):
                    result = store.get(fingerprint, "seed")
                    assert result is not None
                    assert result.cost == 0.5

        hammer(THREADS, worker)
        assert len(store) == 1 + THREADS // 2


class TestBusyTimeout:
    def test_store_connection_pins_busy_timeout(self, tmp_path):
        store = SQLiteResultCache(tmp_path / "store.db")
        assert pragma_value(store._conn, "busy_timeout") == 30_000
        custom = SQLiteResultCache(tmp_path / "custom.db",
                                   busy_timeout_ms=100)
        assert pragma_value(custom._conn, "busy_timeout") == 100

    def test_held_write_lock_blocks_then_admits_writer(self, tmp_path,
                                                       problem):
        path = tmp_path / "store.db"
        store = SQLiteResultCache(path)
        blocker = connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        released = threading.Event()

        def release():
            released.wait(10.0)
            blocker.execute("COMMIT")
            blocker.close()

        thread = threading.Thread(target=release)
        thread.start()
        released.set()
        # The 30 s busy timeout queues the writer behind the lock.
        store.put(problem.fingerprint(), "greedy", make_result(problem))
        thread.join(10.0)
        assert len(store) == 1

    def test_short_timeout_raises_store_error_under_lock(self, tmp_path,
                                                         problem):
        path = tmp_path / "store.db"
        store = SQLiteResultCache(path, busy_timeout_ms=50)
        blocker = connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            with pytest.raises(StoreError):
                store.put(problem.fingerprint(), "greedy",
                          make_result(problem))
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
        # The store stays usable once the lock is gone.
        store.put(problem.fingerprint(), "greedy", make_result(problem))
        assert len(store) == 1
