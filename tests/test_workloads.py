"""Tests for the three application workloads and deployment comparisons."""

import numpy as np
import pytest

from repro.core import DeploymentPlan, Objective
from repro.solvers import CPLongestLinkSolver, SearchBudget, default_plan
from repro.workloads import (
    AggregationQueryWorkload,
    BehavioralSimulationWorkload,
    KeyValueStoreWorkload,
    compare_deployments,
    evaluate_deployment,
)
from repro.core.errors import InvalidDeploymentError


@pytest.fixture
def sim_workload():
    return BehavioralSimulationWorkload(rows=3, cols=3, ticks=30)


@pytest.fixture
def agg_workload():
    return AggregationQueryWorkload(branching=2, depth=2, num_queries=40)


@pytest.fixture
def kv_workload():
    return KeyValueStoreWorkload(num_frontends=3, num_storage=6, num_queries=60,
                                 keys_per_query=3)


def plan_for(workload, cloud, count):
    ids = [inst.instance_id for inst in cloud.allocate(count)]
    graph = workload.communication_graph()
    return DeploymentPlan.identity(graph.nodes, ids), ids


class TestBehavioralSimulation:
    def test_graph_is_mesh(self, sim_workload):
        graph = sim_workload.communication_graph()
        assert graph.num_nodes == 9
        assert sim_workload.objective is Objective.LONGEST_LINK

    def test_evaluate_returns_positive_time(self, sim_workload, small_cloud):
        plan, _ = plan_for(sim_workload, small_cloud, 9)
        result = sim_workload.evaluate(plan, small_cloud, seed=0)
        assert result.value > 0
        assert result.metric == "time_to_solution_ms"
        assert result.details["ticks"] == 30

    def test_time_scales_with_ticks(self, small_cloud):
        short = BehavioralSimulationWorkload(rows=3, cols=3, ticks=20)
        long = BehavioralSimulationWorkload(rows=3, cols=3, ticks=80)
        plan, _ = plan_for(short, small_cloud, 9)
        short_time = short.evaluate(plan, small_cloud, seed=1).value
        long_time = long.evaluate(plan, small_cloud, seed=1).value
        assert long_time == pytest.approx(4 * short_time, rel=0.35)

    def test_compute_time_adds_up(self, small_cloud):
        no_compute = BehavioralSimulationWorkload(rows=3, cols=3, ticks=20)
        with_compute = BehavioralSimulationWorkload(rows=3, cols=3, ticks=20,
                                                    compute_ms_per_tick=2.0)
        plan, _ = plan_for(no_compute, small_cloud, 9)
        base = no_compute.evaluate(plan, small_cloud, seed=2).value
        loaded = with_compute.evaluate(plan, small_cloud, seed=2).value
        assert loaded == pytest.approx(base + 40.0, rel=0.3)

    def test_plan_must_cover_graph(self, sim_workload, small_cloud):
        ids = [inst.instance_id for inst in small_cloud.allocate(4)]
        partial = DeploymentPlan.identity([0, 1, 2, 3], ids)
        with pytest.raises(InvalidDeploymentError):
            sim_workload.evaluate(partial, small_cloud)

    def test_invalid_ticks(self):
        with pytest.raises(ValueError):
            BehavioralSimulationWorkload(ticks=0)


class TestAggregationQuery:
    def test_graph_is_tree_toward_root(self, agg_workload):
        graph = agg_workload.communication_graph()
        assert graph.is_dag()
        assert agg_workload.objective is Objective.LONGEST_PATH
        assert agg_workload.num_nodes == 7
        assert len(agg_workload.leaves()) == 4

    def test_evaluate_reports_mean_and_percentiles(self, agg_workload, small_cloud):
        plan, _ = plan_for(agg_workload, small_cloud, 7)
        result = agg_workload.evaluate(plan, small_cloud, seed=0)
        assert result.value > 0
        assert result.details["p99_ms"] >= result.details["p50_ms"]

    def test_response_time_at_least_single_hop(self, agg_workload, small_cloud):
        """A two-level tree response includes at least two network hops."""
        plan, ids = plan_for(agg_workload, small_cloud, 7)
        result = agg_workload.evaluate(plan, small_cloud, seed=0)
        cheapest_link = small_cloud.true_cost_matrix(ids).min_cost()
        assert result.value >= 2 * cheapest_link * 0.5

    def test_invalid_queries(self):
        with pytest.raises(ValueError):
            AggregationQueryWorkload(num_queries=0)


class TestKeyValueStore:
    def test_graph_is_bipartite(self, kv_workload):
        graph = kv_workload.communication_graph()
        assert graph.num_nodes == 9
        frontends = kv_workload.frontends()
        storage = kv_workload.storage_nodes()
        # No edges within a side.
        for a in frontends:
            for b in frontends:
                assert not graph.has_edge(a, b)
        for a in storage:
            for b in storage:
                assert not graph.has_edge(a, b)

    def test_evaluate(self, kv_workload, small_cloud):
        plan, _ = plan_for(kv_workload, small_cloud, 9)
        result = kv_workload.evaluate(plan, small_cloud, seed=0)
        assert result.value > 0
        assert result.details["keys_per_query"] == 3

    def test_more_keys_per_query_is_slower(self, small_cloud):
        few = KeyValueStoreWorkload(num_frontends=3, num_storage=6, num_queries=80,
                                    keys_per_query=1)
        many = KeyValueStoreWorkload(num_frontends=3, num_storage=6, num_queries=80,
                                     keys_per_query=6)
        plan, _ = plan_for(few, small_cloud, 9)
        assert many.evaluate(plan, small_cloud, seed=3).value > \
            few.evaluate(plan, small_cloud, seed=3).value

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KeyValueStoreWorkload(keys_per_query=0)
        with pytest.raises(ValueError):
            KeyValueStoreWorkload(num_storage=4, keys_per_query=5)


class TestComparisons:
    def test_optimized_deployment_improves_simulation(self, small_cloud):
        workload = BehavioralSimulationWorkload(rows=3, cols=3, ticks=40)
        graph = workload.communication_graph()
        ids = [inst.instance_id for inst in small_cloud.allocate(11)]
        costs = small_cloud.true_cost_matrix(ids)
        baseline = default_plan(graph, costs)
        optimized = CPLongestLinkSolver(seed=0).solve(
            graph, costs, budget=SearchBudget.seconds(5)
        ).plan
        comparison = compare_deployments(workload, baseline, optimized, small_cloud,
                                         seed=0, repetitions=2)
        assert comparison.reduction > 0.0
        assert comparison.reduction_percent == pytest.approx(
            comparison.reduction * 100.0
        )

    def test_identical_plans_have_near_zero_reduction(self, small_cloud):
        workload = BehavioralSimulationWorkload(rows=3, cols=3, ticks=30)
        plan, _ = plan_for(workload, small_cloud, 9)
        comparison = compare_deployments(workload, plan, plan, small_cloud, seed=1)
        assert abs(comparison.reduction) < 0.05

    def test_evaluate_deployment_helper(self, small_cloud, sim_workload):
        plan, _ = plan_for(sim_workload, small_cloud, 9)
        result = evaluate_deployment(sim_workload, plan, small_cloud, seed=0)
        assert result.workload == sim_workload.name

    def test_invalid_repetitions(self, small_cloud, sim_workload):
        plan, _ = plan_for(sim_workload, small_cloud, 9)
        with pytest.raises(ValueError):
            compare_deployments(sim_workload, plan, plan, small_cloud, repetitions=0)
