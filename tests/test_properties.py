"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentPlan,
    Objective,
    compile_problem,
    deployment_cost,
    kmeans_1d,
    longest_link_cost,
    longest_path_cost,
)
from repro.core.clustering import cluster_costs
from repro.solvers.cp.alldifferent import matching_feasible
from repro.analysis import normalized


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

def cost_matrices(min_size=3, max_size=7):
    """Random symmetric-free cost matrices with positive off-diagonal costs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=min_size, max_value=max_size))
        values = draw(
            st.lists(st.floats(min_value=0.01, max_value=10.0,
                               allow_nan=False, allow_infinity=False),
                     min_size=n * n, max_size=n * n)
        )
        matrix = np.array(values).reshape(n, n)
        np.fill_diagonal(matrix, 0.0)
        return CostMatrix(list(range(n)), matrix)

    return build()


def dags(min_nodes=2, max_nodes=6):
    """Random DAG communication graphs (edges from lower to higher ids)."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
        edges = []
        for i in range(n):
            for j in range(i + 1, n):
                if draw(st.booleans()):
                    edges.append((i, j))
        return CommunicationGraph(range(n), edges)

    return build()


# --------------------------------------------------------------------------- #
# Deployment plans
# --------------------------------------------------------------------------- #

@given(n_nodes=st.integers(2, 8), extra=st.integers(0, 4), seed=st.integers(0, 1000))
def test_random_plan_always_injective(n_nodes, extra, seed):
    nodes = list(range(n_nodes))
    instances = list(range(100, 100 + n_nodes + extra))
    plan = DeploymentPlan.random(nodes, instances, rng=seed)
    used = plan.used_instances()
    assert len(used) == len(set(used)) == n_nodes
    assert set(used) <= set(instances)


@given(n_nodes=st.integers(2, 8), seed=st.integers(0, 100),
       swaps=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=6))
def test_swaps_preserve_injectivity_and_instances(n_nodes, seed, swaps):
    nodes = list(range(n_nodes))
    instances = list(range(50, 50 + n_nodes))
    plan = DeploymentPlan.random(nodes, instances, rng=seed)
    original_used = set(plan.used_instances())
    for a, b in swaps:
        plan = plan.with_swap(a % n_nodes, b % n_nodes)
    assert set(plan.used_instances()) == original_used


# --------------------------------------------------------------------------- #
# Objectives
# --------------------------------------------------------------------------- #

@given(costs=cost_matrices(), seed=st.integers(0, 500))
def test_longest_path_at_least_longest_link_on_chains(costs, seed):
    n = min(costs.num_instances, 4)
    graph = CommunicationGraph(range(n), [(i, i + 1) for i in range(n - 1)])
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=seed)
    link = longest_link_cost(plan, graph, costs)
    path = longest_path_cost(plan, graph, costs)
    assert path >= link - 1e-12


@given(graph=dags(), costs=cost_matrices(min_size=6, max_size=8),
       seed=st.integers(0, 500))
def test_longest_path_cost_nonnegative_and_bounded(graph, costs, seed):
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=seed)
    value = longest_path_cost(plan, graph, costs)
    assert value >= 0.0
    # A path can visit each node at most once, so its cost is bounded by
    # (|V| - 1) times the worst link cost.
    assert value <= (graph.num_nodes - 1) * costs.max_cost() + 1e-9


@given(costs=cost_matrices(min_size=4, max_size=6), seed=st.integers(0, 300))
def test_deployment_cost_invariant_under_node_relabeling(costs, seed):
    """Deployment cost depends on where nodes land, not on node names."""
    graph = CommunicationGraph.ring(4)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=seed)
    mapping = {0: 10, 1: 11, 2: 12, 3: 13}
    relabeled_graph = graph.relabeled(mapping)
    relabeled_plan = DeploymentPlan({mapping[n]: plan.instance_for(n)
                                     for n in graph.nodes})
    original = deployment_cost(plan, graph, costs, Objective.LONGEST_LINK)
    relabeled = deployment_cost(relabeled_plan, relabeled_graph, costs,
                                Objective.LONGEST_LINK)
    assert original == relabeled


@given(costs=cost_matrices(min_size=4, max_size=7), seed=st.integers(0, 300))
def test_longest_link_is_max_over_used_edges(costs, seed):
    graph = CommunicationGraph.mesh_2d(2, 2)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=seed)
    expected = max(
        costs.cost(plan.instance_for(i), plan.instance_for(j)) for i, j in graph.edges
    )
    assert longest_link_cost(plan, graph, costs) == expected


# --------------------------------------------------------------------------- #
# Clustering
# --------------------------------------------------------------------------- #

@given(values=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                       max_size=40),
       k=st.integers(1, 8))
@settings(max_examples=60)
def test_kmeans_labels_and_centers_consistent(values, k):
    result = kmeans_1d(values, k)
    assert len(result.labels) == len(values)
    assert result.num_clusters <= k
    assert result.cost >= -1e-9
    # Every value's cluster center lies within the overall value range.
    assert result.centers.min() >= min(values) - 1e-9
    assert result.centers.max() <= max(values) + 1e-9
    # Labels index valid centers.
    assert result.labels.max() < result.num_clusters


@given(values=st.lists(st.floats(0.01, 10.0, allow_nan=False), min_size=2,
                       max_size=30),
       k=st.integers(2, 6))
@settings(max_examples=60)
def test_clustering_never_increases_distinct_values(values, k):
    clustered = cluster_costs(values, k, round_to=None)
    assert len(np.unique(clustered)) <= min(k, len(np.unique(values)))
    # The overall mean is preserved exactly (cluster means are weighted means).
    assert float(np.mean(clustered)) == np.mean(values) or abs(
        float(np.mean(clustered)) - float(np.mean(values))
    ) < 1e-6


@given(costs=cost_matrices(min_size=4, max_size=7), k=st.integers(2, 5),
       seed=st.integers(0, 200))
@settings(max_examples=40)
def test_clustered_cost_error_bounded_by_cluster_width(costs, k, seed):
    """Clustering changes any deployment's cost by at most the largest cluster width."""
    graph = CommunicationGraph.ring(4)
    clustered = costs.clustered(k, round_to=None)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=seed)
    original = longest_link_cost(plan, graph, costs)
    approximated = longest_link_cost(plan, graph, clustered)
    # Bound: the largest absolute difference between a cost and its cluster mean.
    max_shift = float(np.abs(clustered.as_array() - costs.as_array()).max())
    assert abs(original - approximated) <= max_shift + 1e-9


# --------------------------------------------------------------------------- #
# Vectorized evaluation engine vs. the pure-Python oracle
# --------------------------------------------------------------------------- #

@given(graph=dags(), costs=cost_matrices(min_size=6, max_size=8),
       seed=st.integers(0, 500))
@settings(max_examples=60)
def test_vectorized_engine_agrees_with_oracle_on_dags(graph, costs, seed):
    """Single and batch evaluation equal the oracle for both objectives."""
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(seed)
    plans = [DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
             for _ in range(4)]
    for objective in (Objective.LONGEST_LINK, Objective.LONGEST_PATH):
        oracle = [deployment_cost(p, graph, costs, objective) for p in plans]
        assert [problem.evaluate_plan(p, objective) for p in plans] == oracle
        assert list(problem.evaluate_plans(plans, objective)) == oracle


@given(costs=cost_matrices(min_size=5, max_size=8), seed=st.integers(0, 500),
       moves=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                      min_size=1, max_size=8))
@settings(max_examples=60)
def test_delta_evaluator_tracks_oracle_through_swaps(costs, seed, moves):
    """A chain of swap deltas never drifts from full re-evaluation."""
    n = min(costs.num_instances - 1, 4)
    graph = CommunicationGraph(range(n), [(i, i + 1) for i in range(n - 1)])
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=seed)
    evaluator = compile_problem(graph, costs).delta_evaluator(
        plan, Objective.LONGEST_LINK
    )
    for a, b in moves:
        a, b = a % n, b % n
        plan = plan.with_swap(a, b)
        assert evaluator.apply_swap(a, b) == longest_link_cost(plan, graph, costs)


# --------------------------------------------------------------------------- #
# Matching feasibility (alldifferent)
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 500), n_vars=st.integers(1, 6), n_vals=st.integers(1, 6))
def test_matching_feasible_iff_permutation_exists(seed, n_vars, n_vals):
    rng = np.random.default_rng(seed)
    domains = {
        v: [int(x) for x in np.nonzero(rng.random(n_vals) < 0.5)[0]]
        for v in range(n_vars)
    }
    feasible = matching_feasible(domains)
    # Cross-check with a brute-force search over assignments.
    def brute(vars_left, used):
        if not vars_left:
            return True
        var = vars_left[0]
        return any(
            value not in used and brute(vars_left[1:], used | {value})
            for value in domains[var]
        )
    assert feasible == brute(list(domains), set())


# --------------------------------------------------------------------------- #
# Normalization
# --------------------------------------------------------------------------- #

@given(values=st.lists(st.floats(0.001, 100.0, allow_nan=False), min_size=1,
                       max_size=50),
       scale=st.floats(0.1, 10.0, allow_nan=False))
def test_normalization_removes_uniform_scaling(values, scale):
    """A uniform measurement bias disappears after unit-norm normalisation."""
    base = normalized(values)
    scaled = normalized([v * scale for v in values])
    assert np.allclose(base, scaled, rtol=1e-9, atol=1e-12)
