"""Tests for the longest-link and longest-path deployment cost functions."""

import numpy as np
import pytest

from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentPlan,
    InvalidDeploymentError,
    InvalidGraphError,
    Objective,
    critical_path,
    deployment_cost,
    improvement_ratio,
    longest_link_cost,
    longest_path_cost,
    worst_link,
)


def matrix_from(rows):
    rows = np.asarray(rows, dtype=float)
    return CostMatrix(list(range(rows.shape[0])), rows)


@pytest.fixture
def line_graph():
    return CommunicationGraph([0, 1, 2], [(0, 1), (1, 2)])


@pytest.fixture
def simple_costs():
    # Instances 0..2 with asymmetric costs.
    return matrix_from([
        [0.0, 1.0, 5.0],
        [2.0, 0.0, 3.0],
        [4.0, 6.0, 0.0],
    ])


class TestLongestLink:
    def test_longest_link_value(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2})
        # Edges: (0,1) -> cost(0,1)=1, (1,2) -> cost(1,2)=3.
        assert longest_link_cost(plan, line_graph, simple_costs) == 3.0

    def test_longest_link_uses_direction(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 2, 1: 1, 2: 0})
        # Edges: (0,1) -> cost(2,1)=6, (1,2) -> cost(1,0)=2.
        assert longest_link_cost(plan, line_graph, simple_costs) == 6.0

    def test_worst_link_identifies_edge(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2})
        element = worst_link(plan, line_graph, simple_costs)
        assert element.cost == 3.0
        assert element.edges == ((1, 2),)

    def test_edgeless_graph_costs_zero(self, simple_costs):
        graph = CommunicationGraph([0, 1], [])
        plan = DeploymentPlan({0: 0, 1: 1})
        assert longest_link_cost(plan, graph, simple_costs) == 0.0
        assert worst_link(plan, graph, simple_costs).edges == ()

    def test_uncovered_plan_rejected(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 0, 1: 1})
        with pytest.raises(InvalidDeploymentError):
            longest_link_cost(plan, line_graph, simple_costs)


class TestLongestPath:
    def test_path_cost_sums_edges(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2})
        # Path 0 -> 1 -> 2 costs 1 + 3.
        assert longest_path_cost(plan, line_graph, simple_costs) == 4.0

    def test_critical_path_edges(self, simple_costs):
        graph = CommunicationGraph([0, 1, 2], [(0, 2), (1, 2)])
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2})
        element = critical_path(plan, graph, simple_costs)
        # cost(0,2)=5 beats cost(1,2)=3.
        assert element.cost == 5.0
        assert element.edges == ((0, 2),)

    def test_diamond_takes_heavier_branch(self):
        graph = CommunicationGraph([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        costs = matrix_from([
            [0.0, 1.0, 4.0, 9.0],
            [1.0, 0.0, 1.0, 1.0],
            [4.0, 1.0, 0.0, 2.0],
            [9.0, 1.0, 2.0, 0.0],
        ])
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2, 3: 3})
        # Branch through node 2 costs 4 + 2 = 6; through node 1 costs 1 + 1 = 2.
        assert longest_path_cost(plan, graph, costs) == 6.0

    def test_cyclic_graph_rejected(self, simple_costs):
        graph = CommunicationGraph([0, 1], [(0, 1), (1, 0)])
        plan = DeploymentPlan({0: 0, 1: 1})
        with pytest.raises(InvalidGraphError):
            longest_path_cost(plan, graph, simple_costs)

    def test_path_at_least_longest_link(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 1, 1: 2, 2: 0})
        link = longest_link_cost(plan, line_graph, simple_costs)
        path = longest_path_cost(plan, line_graph, simple_costs)
        assert path >= link


class TestDispatchAndRatios:
    def test_deployment_cost_dispatch(self, line_graph, simple_costs):
        plan = DeploymentPlan({0: 0, 1: 1, 2: 2})
        assert deployment_cost(plan, line_graph, simple_costs,
                               Objective.LONGEST_LINK) == 3.0
        assert deployment_cost(plan, line_graph, simple_costs,
                               Objective.LONGEST_PATH) == 4.0

    def test_improvement_ratio(self):
        assert improvement_ratio(2.0, 1.0) == pytest.approx(0.5)
        assert improvement_ratio(0.0, 1.0) == 0.0
        # A worse "optimised" cost never reports negative improvement.
        assert improvement_ratio(1.0, 2.0) == 0.0
