"""The vectorized evaluation engine agrees with the pure-Python oracle.

``repro.core.objectives`` stays the reference implementation; every path
through ``repro.core.evaluation`` (single plan, batch, incremental deltas)
must produce exactly the same costs.  Randomized cases are generated with
both plain seeds and hypothesis strategies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunicationGraph,
    CompiledProblem,
    DeploymentPlan,
    IndexedPlan,
    InvalidDeploymentError,
    InvalidGraphError,
    Objective,
    compile_problem,
    deployment_cost,
)
from repro.testing import deterministic_cost_matrix


def random_problem(seed: int, objective: Objective, min_nodes: int = 2,
                   max_nodes: int = 12, extra_instances: int = 4):
    """A random (graph, costs) pair suitable for the given objective."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(min_nodes, max_nodes + 1))
    m = n + int(rng.integers(0, extra_instances + 1))
    costs = deterministic_cost_matrix(m, seed=seed + 1, symmetric=False)
    if objective is Objective.LONGEST_PATH:
        graph = CommunicationGraph.random_dag(n, 0.5, seed=seed + 2)
    else:
        graph = CommunicationGraph.random_graph(n, 0.4, seed=seed + 2)
    return graph, costs


class TestCompiledProblem:
    def test_index_roundtrip(self):
        graph = CommunicationGraph.mesh_2d(2, 3)
        costs = deterministic_cost_matrix(8, seed=3)
        problem = compile_problem(graph, costs)
        plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=0)
        assignment = problem.index_plan(plan)
        assert problem.plan_from_assignment(assignment) == plan

    def test_compile_cache_shares_instances(self):
        graph = CommunicationGraph.ring(4)
        costs = deterministic_cost_matrix(6, seed=4)
        assert compile_problem(graph, costs) is compile_problem(graph, costs)

    def test_incomplete_plan_rejected(self):
        graph = CommunicationGraph.ring(4)
        costs = deterministic_cost_matrix(6, seed=5)
        problem = compile_problem(graph, costs)
        partial = DeploymentPlan({0: 0, 1: 1})
        with pytest.raises(InvalidDeploymentError):
            problem.index_plan(partial)

    def test_longest_path_rejects_cycles(self):
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(4, seed=6)
        problem = compile_problem(graph, costs)
        plan = DeploymentPlan.identity(graph.nodes, costs.instance_ids)
        with pytest.raises(InvalidGraphError):
            problem.longest_path(problem.index_plan(plan))

    def test_edgeless_graph_costs_zero(self):
        graph = CommunicationGraph([0, 1, 2], [])
        costs = deterministic_cost_matrix(5, seed=7)
        problem = compile_problem(graph, costs)
        plan = DeploymentPlan.identity(graph.nodes, costs.instance_ids)
        assignment = problem.index_plan(plan)
        assert problem.longest_link(assignment) == 0.0
        assert problem.longest_path(assignment) == 0.0

    @pytest.mark.parametrize("objective", list(Objective))
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_oracle_on_random_problems(self, objective, seed):
        graph, costs = random_problem(seed, objective)
        problem = compile_problem(graph, costs)
        rng = np.random.default_rng(seed + 10)
        for _ in range(5):
            plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
            expected = deployment_cost(plan, graph, costs, objective)
            assert problem.evaluate_plan(plan, objective) == expected


class TestIndexedPlan:
    def test_from_plan_and_back(self):
        graph = CommunicationGraph.star(4)
        costs = deterministic_cost_matrix(7, seed=8)
        problem = compile_problem(graph, costs)
        plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=1)
        indexed = IndexedPlan.from_plan(problem, plan)
        assert indexed.to_plan() == plan
        assert indexed.cost(Objective.LONGEST_LINK) == deployment_cost(
            plan, graph, costs, Objective.LONGEST_LINK
        )

    def test_rejects_non_injective_assignment(self):
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(4, seed=9)
        problem = compile_problem(graph, costs)
        with pytest.raises(InvalidDeploymentError):
            IndexedPlan(problem, np.array([0, 0, 1]))

    def test_rejects_out_of_range_instance(self):
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(4, seed=10)
        problem = compile_problem(graph, costs)
        with pytest.raises(InvalidDeploymentError):
            IndexedPlan(problem, np.array([0, 1, 7]))


class TestBatchEvaluation:
    @pytest.mark.parametrize("objective", list(Objective))
    @pytest.mark.parametrize("seed", range(8))
    def test_batch_equals_per_plan_oracle(self, objective, seed):
        graph, costs = random_problem(seed + 100, objective)
        problem = compile_problem(graph, costs)
        rng = np.random.default_rng(seed)
        plans = [
            DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
            for _ in range(17)
        ]
        batch = problem.evaluate_plans(plans, objective)
        oracle = [deployment_cost(p, graph, costs, objective) for p in plans]
        assert batch.shape == (17,)
        assert list(batch) == oracle

    def test_batch_chunking_matches_unchunked(self, monkeypatch):
        """Chunked gathers (tiny memory budget) agree with one-shot gathers."""
        import repro.core.evaluation as evaluation
        graph, costs = random_problem(42, Objective.LONGEST_LINK)
        problem = CompiledProblem(graph, costs)
        assignments = problem.random_assignments(50, rng=0)
        full = problem.evaluate_batch(assignments, Objective.LONGEST_LINK)
        monkeypatch.setattr(evaluation, "_BATCH_GATHER_BUDGET", 1)
        chunked = problem.evaluate_batch(assignments, Objective.LONGEST_LINK)
        assert np.array_equal(full, chunked)

    def test_empty_plan_list(self):
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(4, seed=11)
        problem = compile_problem(graph, costs)
        assert problem.evaluate_plans([], Objective.LONGEST_LINK).size == 0

    def test_batch_shape_validation(self):
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(4, seed=12)
        problem = compile_problem(graph, costs)
        with pytest.raises(ValueError):
            problem.evaluate_batch(np.zeros((2, 5), dtype=np.intp),
                                   Objective.LONGEST_LINK)

    def test_random_assignments_are_injective_and_in_range(self):
        graph = CommunicationGraph.mesh_2d(2, 3)
        costs = deterministic_cost_matrix(9, seed=13)
        problem = compile_problem(graph, costs)
        assignments = problem.random_assignments(200, rng=5)
        assert assignments.shape == (200, graph.num_nodes)
        assert assignments.min() >= 0
        assert assignments.max() < costs.num_instances
        for row in assignments:
            assert len(set(row.tolist())) == graph.num_nodes

    def test_random_assignments_cover_instance_space(self):
        """Every instance index shows up somewhere across many draws."""
        graph = CommunicationGraph.ring(3)
        costs = deterministic_cost_matrix(6, seed=14)
        problem = compile_problem(graph, costs)
        assignments = problem.random_assignments(500, rng=6)
        assert set(np.unique(assignments).tolist()) == set(range(6))


# --------------------------------------------------------------------------- #
# Hypothesis: engine == oracle on arbitrary graphs / matrices / plans
# --------------------------------------------------------------------------- #

@given(seed=st.integers(0, 10_000), plan_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_engine_matches_oracle_longest_link(seed, plan_seed):
    graph, costs = random_problem(seed, Objective.LONGEST_LINK)
    problem = compile_problem(graph, costs)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=plan_seed)
    assert problem.evaluate_plan(plan, Objective.LONGEST_LINK) == deployment_cost(
        plan, graph, costs, Objective.LONGEST_LINK
    )


@given(seed=st.integers(0, 10_000), plan_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_engine_matches_oracle_longest_path(seed, plan_seed):
    graph, costs = random_problem(seed, Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng=plan_seed)
    assert problem.evaluate_plan(plan, Objective.LONGEST_PATH) == deployment_cost(
        plan, graph, costs, Objective.LONGEST_PATH
    )
