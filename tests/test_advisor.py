"""Tests for the end-to-end ClouDiA advisor pipeline."""

import pytest

from repro import (
    AdvisorConfig,
    ClouDiA,
    CommunicationGraph,
    MeasurementConfig,
    Objective,
    RandomSearch,
    SimulatedCloud,
)
from repro.core import LatencyMetric
from repro.core.errors import AllocationError, ClouDiAError
from repro.core.objectives import deployment_cost


@pytest.fixture
def advisor_cloud():
    return SimulatedCloud(seed=17)


@pytest.fixture
def small_mesh():
    return CommunicationGraph.mesh_2d(3, 3)


def fast_config(**overrides):
    defaults = dict(
        objective=Objective.LONGEST_LINK,
        over_allocation_ratio=0.2,
        solver_time_limit_s=2.0,
        measurement=MeasurementConfig(target_samples_per_link=4),
        seed=0,
    )
    defaults.update(overrides)
    return AdvisorConfig(**defaults)


class TestMeasurementConfig:
    def test_builds_each_scheme(self):
        for name in ("staged", "uncoordinated", "token-passing"):
            scheme = MeasurementConfig(scheme=name).build_scheme()
            assert scheme.name == name

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ClouDiAError):
            MeasurementConfig(scheme="carrier-pigeon").build_scheme()


class TestAdvisorConfig:
    def test_default_solver_per_objective(self):
        assert AdvisorConfig(objective=Objective.LONGEST_LINK).build_solver().name == "CP"
        assert AdvisorConfig(objective=Objective.LONGEST_PATH).build_solver().name == "MIP-LP"

    def test_custom_solver_passthrough(self):
        solver = RandomSearch(num_samples=10)
        assert AdvisorConfig(solver=solver).build_solver() is solver


class TestRecommend:
    def test_full_pipeline_improves_over_default(self, advisor_cloud, small_mesh):
        advisor = ClouDiA(advisor_cloud, fast_config())
        report = advisor.recommend(small_mesh)
        assert report.plan.covers(small_mesh)
        assert report.predicted_cost <= report.default_predicted_cost + 1e-9
        assert 0.0 <= report.predicted_improvement <= 1.0
        assert report.measurement_time_ms > 0
        assert report.search_time_s >= 0

    def test_over_allocation_and_termination(self, advisor_cloud, small_mesh):
        advisor = ClouDiA(advisor_cloud, fast_config(over_allocation_ratio=0.5))
        report = advisor.recommend(small_mesh)
        # ceil(1.5 * 9) = 14 allocated, 9 used, 5 terminated.
        assert len(report.allocated_instances) == 14
        assert len(report.terminated_instances) == 5
        active = {inst.instance_id for inst in advisor_cloud.active_instances()}
        assert set(report.plan.used_instances()) <= active
        assert not (set(report.terminated_instances) & active)

    def test_terminate_disabled_keeps_instances(self, advisor_cloud, small_mesh):
        advisor = ClouDiA(advisor_cloud, fast_config(terminate_unused=False,
                                                     over_allocation_ratio=0.3))
        report = advisor.recommend(small_mesh)
        active = {inst.instance_id for inst in advisor_cloud.active_instances()}
        assert set(report.terminated_instances) <= active

    def test_max_instances_cap(self, advisor_cloud, small_mesh):
        advisor = ClouDiA(advisor_cloud, fast_config(over_allocation_ratio=1.0))
        report = advisor.recommend(small_mesh, max_instances=10)
        assert len(report.allocated_instances) == 10

    def test_max_instances_below_nodes_rejected(self, advisor_cloud, small_mesh):
        advisor = ClouDiA(advisor_cloud, fast_config())
        with pytest.raises(AllocationError):
            advisor.recommend(small_mesh, max_instances=5)

    def test_recommend_on_existing_instances(self, advisor_cloud, small_mesh):
        ids = [inst.instance_id for inst in advisor_cloud.allocate(11)]
        advisor = ClouDiA(advisor_cloud, fast_config(terminate_unused=False))
        report = advisor.recommend_on_instances(small_mesh, ids)
        assert set(report.plan.used_instances()) <= set(ids)
        assert report.predicted_cost == pytest.approx(
            deployment_cost(report.plan, small_mesh, report.cost_matrix,
                            Objective.LONGEST_LINK)
        )

    def test_too_few_instances_rejected(self, advisor_cloud, small_mesh):
        ids = [inst.instance_id for inst in advisor_cloud.allocate(5)]
        advisor = ClouDiA(advisor_cloud, fast_config())
        with pytest.raises(AllocationError):
            advisor.recommend_on_instances(small_mesh, ids)

    def test_longest_path_pipeline(self, advisor_cloud):
        tree = CommunicationGraph.aggregation_tree(2, 2)
        config = fast_config(objective=Objective.LONGEST_PATH,
                             solver=RandomSearch.r2(seed=0),
                             solver_time_limit_s=1.0)
        advisor = ClouDiA(advisor_cloud, config)
        report = advisor.recommend(tree)
        assert report.objective is Objective.LONGEST_PATH
        assert report.predicted_cost <= report.default_predicted_cost + 1e-9

    def test_alternative_metric(self, advisor_cloud, small_mesh):
        config = fast_config(metric=LatencyMetric.MEAN_PLUS_STD)
        advisor = ClouDiA(advisor_cloud, config)
        report = advisor.recommend(small_mesh)
        assert report.plan.covers(small_mesh)

    def test_stage_helpers_reusable(self, advisor_cloud, small_mesh):
        ids = [inst.instance_id for inst in advisor_cloud.allocate(10)]
        advisor = ClouDiA(advisor_cloud, fast_config())
        measurement = advisor.measure(ids)
        costs = measurement.to_cost_matrix()
        result = advisor.search(small_mesh, costs)
        assert result.plan.covers(small_mesh)
