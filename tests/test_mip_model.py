"""Tests for the MIP modelling layer and its SciPy backends."""

import numpy as np
import pytest

from repro.core.errors import SolverError
from repro.solvers.mip.branch_and_bound import BranchAndBound
from repro.solvers.mip.model import MipModel
from repro.solvers.mip.scipy_backend import solve_lp_relaxation, solve_milp


def knapsack_model():
    """max 3a + 4b + 2c s.t. 2a + 3b + c <= 4  (as a minimisation model)."""
    model = MipModel()
    a = model.add_binary("a")
    b = model.add_binary("b")
    c = model.add_binary("c")
    model.add_constraint({a: 2.0, b: 3.0, c: 1.0}, upper=4.0)
    model.set_objective({a: -3.0, b: -4.0, c: -2.0})
    return model, (a, b, c)


class TestMipModel:
    def test_variable_and_constraint_counts(self):
        model, _ = knapsack_model()
        assert model.num_variables == 3
        assert model.num_constraints == 1
        assert model.integer_indices() == [0, 1, 2]

    def test_empty_bounds_rejected(self):
        model = MipModel()
        with pytest.raises(SolverError):
            model.add_variable("x", lower=2.0, upper=1.0)

    def test_constraint_unknown_variable_rejected(self):
        model = MipModel()
        model.add_binary("x")
        with pytest.raises(SolverError):
            model.add_constraint({5: 1.0}, upper=1.0)

    def test_empty_constraint_rejected(self):
        model = MipModel()
        with pytest.raises(SolverError):
            model.add_constraint({}, upper=1.0)

    def test_objective_evaluation(self):
        model, (a, b, c) = knapsack_model()
        assert model.evaluate_objective(np.array([1.0, 0.0, 1.0])) == pytest.approx(-5.0)

    def test_feasibility_check(self):
        model, _ = knapsack_model()
        assert model.is_feasible(np.array([1.0, 0.0, 1.0]))
        assert not model.is_feasible(np.array([1.0, 1.0, 1.0]))  # violates capacity
        assert not model.is_feasible(np.array([0.5, 0.0, 0.0]))  # fractional binary

    def test_constraint_matrix_shapes(self):
        model, _ = knapsack_model()
        matrix, lower, upper = model.constraint_matrix()
        assert matrix.shape == (1, 3)
        assert np.isneginf(lower[0])
        assert upper[0] == 4.0


class TestScipyBackend:
    def test_lp_relaxation_bound(self):
        model, _ = knapsack_model()
        solution = solve_lp_relaxation(model)
        assert solution.status == "optimal"
        # The LP bound is at least as good (low) as the best integer solution (-6).
        assert solution.objective_value <= -6.0 + 1e-9

    def test_lp_relaxation_with_branching_bounds(self):
        model, (a, b, c) = knapsack_model()
        solution = solve_lp_relaxation(model, extra_bounds={b: (1.0, 1.0)})
        assert solution.status == "optimal"
        assert solution.values[b] == pytest.approx(1.0)

    def test_lp_relaxation_detects_infeasible_bounds(self):
        model, (a, _, _) = knapsack_model()
        solution = solve_lp_relaxation(model, extra_bounds={a: (2.0, 3.0)})
        assert solution.status == "infeasible"

    def test_milp_solves_knapsack(self):
        model, _ = knapsack_model()
        solution = solve_milp(model)
        assert solution.optimal
        # Optimal: pick a and c? value 5; or b alone value 4; or a+b capacity 5 > 4.
        # Best is a + c = 5? No: b + c uses 4 exactly and is worth 6.
        assert solution.objective_value == pytest.approx(-6.0)

    def test_milp_infeasible_model(self):
        model = MipModel()
        x = model.add_binary("x")
        model.add_constraint({x: 1.0}, lower=2.0)
        model.set_objective({x: 1.0})
        solution = solve_milp(model)
        assert not solution.feasible


class TestBranchAndBound:
    def test_solves_knapsack_to_optimality(self):
        model, _ = knapsack_model()
        result = BranchAndBound(model).solve(time_limit_s=10.0)
        assert result.solution.optimal
        assert result.solution.objective_value == pytest.approx(-6.0)

    def test_agrees_with_scipy_milp(self):
        rng = np.random.default_rng(0)
        model = MipModel()
        variables = [model.add_binary(f"x{i}") for i in range(6)]
        weights = rng.integers(1, 5, size=6).astype(float)
        values = rng.integers(1, 9, size=6).astype(float)
        model.add_constraint({v: w for v, w in zip(variables, weights)}, upper=8.0)
        model.set_objective({v: -val for v, val in zip(variables, values)})
        own = BranchAndBound(model).solve(time_limit_s=10.0)
        reference = solve_milp(model)
        assert own.solution.objective_value == pytest.approx(
            reference.objective_value, abs=1e-6
        )

    def test_incumbent_trace_monotone(self):
        model, _ = knapsack_model()
        result = BranchAndBound(model).solve(time_limit_s=10.0)
        objectives = [value for _, value in result.incumbent_trace]
        assert objectives == sorted(objectives, reverse=True)

    def test_rounding_callback_provides_incumbent(self):
        model, (a, b, c) = knapsack_model()

        def round_greedy(values):
            # Always propose the feasible solution {b, c}.
            proposal = np.zeros(model.num_variables)
            proposal[b] = 1.0
            proposal[c] = 1.0
            return proposal

        result = BranchAndBound(model, rounding_callback=round_greedy).solve(
            time_limit_s=10.0
        )
        assert result.incumbent_trace
        assert result.solution.objective_value == pytest.approx(-6.0)

    def test_node_limit_respected(self):
        model, _ = knapsack_model()
        result = BranchAndBound(model).solve(node_limit=1)
        assert result.nodes_explored <= 1

    def test_infeasible_model(self):
        model = MipModel()
        x = model.add_binary("x")
        model.add_constraint({x: 1.0}, lower=2.0)
        model.set_objective({x: 1.0})
        result = BranchAndBound(model).solve(time_limit_s=5.0)
        assert result.solution.status == "infeasible"
        assert result.proven_optimal
