"""In-place cost refresh: the engine side of the live re-deployment loop.

Pins the acceptance contract of ``CompiledProblem.refresh_costs`` /
``DeploymentProblem.revise``: for randomized drifts, a refreshed engine —
including its ``DeltaEvaluator`` after re-prime, its bound caches and any
``CompiledConstraints`` built against it — scores bit-identical to a
from-scratch ``compile_problem`` of the revised matrix, and stale
incremental state can never leak across a refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentProblem,
    Objective,
    PlacementConstraints,
    compile_cache_stats,
    compile_problem,
    configure_compile_cache,
    peek_compiled,
)
from repro.core.errors import InvalidDeploymentError, SolverError
from repro.core.evaluation import CompiledProblem
from repro.testing import deterministic_cost_matrix


@pytest.fixture(autouse=True)
def _restore_compile_cache():
    """Keep cache reconfiguration local to each test."""
    stats = compile_cache_stats()
    yield
    configure_compile_cache(max_entries=stats.max_entries)


def drifted(costs: CostMatrix, seed: int, sigma: float = 0.05) -> CostMatrix:
    rng = np.random.default_rng(seed)
    matrix = costs.as_array()
    m = matrix.shape[0]
    off_diagonal = ~np.eye(m, dtype=bool)
    matrix[off_diagonal] *= rng.lognormal(0.0, sigma, size=(m, m))[off_diagonal]
    return CostMatrix(list(costs.instance_ids), matrix)


def make_problem(seed: int, objective: Objective, num_nodes: int = 7,
                 num_instances: int = 10):
    costs = deterministic_cost_matrix(num_instances, seed=seed,
                                      symmetric=False)
    if objective is Objective.LONGEST_PATH:
        graph = CommunicationGraph.random_dag(num_nodes, 0.5, seed=seed)
    else:
        graph = CommunicationGraph.random_graph(num_nodes, 0.5, seed=seed)
    return graph, costs


class TestRefreshAgreement:
    @pytest.mark.parametrize("objective", list(Objective))
    @pytest.mark.parametrize("seed", range(4))
    def test_refresh_matches_from_scratch_compile(self, objective, seed):
        graph, costs = make_problem(seed, objective)
        live = CompiledProblem(graph, costs)
        for round_number in range(3):
            revised = drifted(costs, seed=100 * seed + round_number)
            assert live.refresh_costs(revised) is live
            fresh = CompiledProblem(graph, revised)
            batch = fresh.random_assignments(32, rng=seed)
            assert np.array_equal(live.evaluate_batch(batch, objective),
                                  fresh.evaluate_batch(batch, objective))
            single = batch[0]
            assert live.evaluate(single, objective) == \
                fresh.evaluate(single, objective)
            costs = revised

    @pytest.mark.parametrize("seed", range(3))
    def test_refreshed_bounds_match_fresh_compile(self, seed):
        graph, costs = make_problem(seed, Objective.LONGEST_LINK)
        live = CompiledProblem(graph, costs)
        live.assignment_cost_lower_bounds()  # populate the caches pre-drift
        live.sorted_link_costs()
        revised = drifted(costs, seed=seed + 50)
        live.refresh_costs(revised)
        fresh = CompiledProblem(graph, revised)
        assert np.array_equal(live.assignment_cost_lower_bounds(),
                              fresh.assignment_cost_lower_bounds())
        for side in (0, 1):
            assert np.array_equal(live.sorted_link_costs()[side],
                                  fresh.sorted_link_costs()[side])
        assert live.longest_link_lower_bound() == \
            fresh.longest_link_lower_bound()
        threshold = float(np.median(revised.link_costs()))
        assert np.array_equal(live.threshold_adjacency(threshold),
                              fresh.threshold_adjacency(threshold))

    def test_refresh_preserves_graph_side_lowering(self):
        graph, costs = make_problem(1, Objective.LONGEST_PATH)
        live = CompiledProblem(graph, costs)
        levels = live._level_groups()
        degrees = live.node_degrees()
        revised = drifted(costs, seed=9)
        live.refresh_costs(revised)
        assert live._level_groups() is levels
        assert live.node_degrees() is degrees
        assert live.costs is revised

    def test_refresh_rejects_different_instances(self):
        graph, costs = make_problem(2, Objective.LONGEST_LINK)
        other = deterministic_cost_matrix(costs.num_instances + 1, seed=3)
        live = CompiledProblem(graph, costs)
        with pytest.raises(InvalidDeploymentError):
            live.refresh_costs(other)
        relabeled = costs.relabeled({i: i + 100 for i in costs.instance_ids})
        with pytest.raises(InvalidDeploymentError):
            live.refresh_costs(relabeled)

    def test_refresh_same_matrix_is_a_noop(self):
        graph, costs = make_problem(3, Objective.LONGEST_LINK)
        live = CompiledProblem(graph, costs)
        epoch = live.cost_epoch
        live.refresh_costs(costs)
        assert live.cost_epoch == epoch


class TestDeltaEvaluatorReprime:
    def test_stale_evaluator_refuses_every_scoring_entry_point(self):
        graph, costs = make_problem(4, Objective.LONGEST_LINK)
        live = CompiledProblem(graph, costs)
        evaluator = live.delta_evaluator(
            live.random_assignments(1, rng=0)[0], Objective.LONGEST_LINK)
        free = evaluator.free_instance_indices()
        live.refresh_costs(drifted(costs, seed=11))
        with pytest.raises(SolverError):
            evaluator.swap_cost(0, 1)
        with pytest.raises(SolverError):
            evaluator.apply_swap(0, 1)
        with pytest.raises(SolverError):
            evaluator.relocate_cost(0, int(free[0]))
        with pytest.raises(SolverError):
            _ = evaluator.current_cost

    @pytest.mark.parametrize("objective", list(Objective))
    def test_reprimed_evaluator_matches_fresh_evaluator(self, objective):
        graph, costs = make_problem(5, objective)
        live = CompiledProblem(graph, costs)
        assignment = live.random_assignments(1, rng=1)[0]
        evaluator = live.delta_evaluator(assignment, objective)
        evaluator.swap_cost(0, 1)  # populate the peek cache pre-refresh
        revised = drifted(costs, seed=12)
        live.refresh_costs(revised)
        evaluator.reprime()
        fresh = CompiledProblem(graph, revised)
        twin = fresh.delta_evaluator(assignment, objective)
        assert evaluator.current_cost == twin.current_cost
        for a, b in ((0, 1), (1, 2), (0, 2)):
            assert evaluator.swap_cost(a, b) == twin.swap_cost(a, b)
        assert evaluator.apply_swap(0, 1) == twin.apply_swap(0, 1)
        free = evaluator.free_instance_indices()
        if free.size:
            target = int(free[0])
            assert evaluator.relocate_cost(0, target) == \
                twin.relocate_cost(0, target)

    def test_reprime_can_reposition_in_the_same_call(self):
        graph, costs = make_problem(6, Objective.LONGEST_LINK)
        live = CompiledProblem(graph, costs)
        first, second = live.random_assignments(2, rng=2)
        evaluator = live.delta_evaluator(first, Objective.LONGEST_LINK)
        live.refresh_costs(drifted(costs, seed=13))
        cost = evaluator.reprime(second)
        assert cost == live.longest_link(second)
        assert np.array_equal(evaluator.assignment, second)
        evaluator.apply_swap(0, 1)  # the inverse index was rebuilt too


class TestRefreshWithConstraints:
    def test_compiled_constraints_survive_a_refresh(self):
        graph, costs = make_problem(7, Objective.LONGEST_LINK)
        constraints = PlacementConstraints(pinned={0: 3},
                                           forbidden={1: {0, 4}})
        problem = DeploymentProblem(graph, costs, constraints=constraints)
        view = problem.compiled_constraints()
        engine = problem.compiled()
        revised_problem = problem.revise(costs=drifted(costs, seed=14))
        assert revised_problem.compiled() is engine
        assert revised_problem.compiled_constraints() is view
        # The mask still indexes the same engine, and constrained scoring
        # agrees bit-for-bit with a from-scratch compile of the revision.
        fresh = CompiledProblem(graph, revised_problem.costs)
        assignments = view.random_assignments(16, rng=3)
        assert np.array_equal(
            engine.evaluate_batch(assignments, Objective.LONGEST_LINK),
            fresh.evaluate_batch(assignments, Objective.LONGEST_LINK))
        assert engine.longest_link_lower_bound(view.allowed_mask) == \
            fresh.longest_link_lower_bound(view.allowed_mask)


class TestCompileCacheRehoming:
    def test_refresh_rehomes_the_shared_compilation(self):
        graph, costs = make_problem(8, Objective.LONGEST_LINK)
        live = compile_problem(graph, costs)
        revised = drifted(costs, seed=15)
        live.refresh_costs(revised)
        assert peek_compiled(graph, revised) is live
        assert peek_compiled(graph, costs) is None
        assert compile_problem(graph, revised) is live
        # The superseded matrix honestly recompiles (fresh object, old costs).
        recompiled = compile_problem(graph, costs)
        assert recompiled is not live
        assert recompiled.longest_link(
            recompiled.random_assignments(1, rng=4)[0]) == \
            CompiledProblem(graph, costs).longest_link(
                recompiled.random_assignments(1, rng=4)[0])

    def test_private_compilations_stay_out_of_the_cache(self):
        graph, costs = make_problem(9, Objective.LONGEST_LINK)
        private = CompiledProblem(graph, costs)
        revised = drifted(costs, seed=16)
        private.refresh_costs(revised)
        assert peek_compiled(graph, revised) is None


class TestBoundedCompileCache:
    def test_lru_bound_and_counters(self):
        graph = CommunicationGraph.ring(4)
        configure_compile_cache(max_entries=2, reset_stats=True)
        matrices = [deterministic_cost_matrix(6, seed=20 + k)
                    for k in range(3)]
        compiled = [compile_problem(graph, costs) for costs in matrices]
        stats = compile_cache_stats()
        assert stats.misses == 3 and stats.size == 2
        assert stats.evictions == 1
        # The oldest entry was evicted; the newest two still hit.
        assert compile_problem(graph, matrices[2]) is compiled[2]
        assert compile_problem(graph, matrices[1]) is compiled[1]
        assert compile_problem(graph, matrices[0]) is not compiled[0]
        stats = compile_cache_stats()
        assert stats.hits == 2 and stats.misses == 4
        assert 0.0 < stats.hit_rate < 1.0

    def test_shrinking_the_bound_evicts_immediately(self):
        graph = CommunicationGraph.ring(3)
        configure_compile_cache(max_entries=4, reset_stats=True)
        matrices = [deterministic_cost_matrix(5, seed=30 + k)
                    for k in range(4)]
        for costs in matrices:
            compile_problem(graph, costs)
        stats = configure_compile_cache(max_entries=1)
        assert stats.size == 1
        assert peek_compiled(graph, matrices[-1]) is not None

    def test_dead_cost_matrices_leave_the_cache(self):
        graph = CommunicationGraph.ring(3)
        configure_compile_cache(reset_stats=True)
        before = compile_cache_stats().size
        costs = deterministic_cost_matrix(5, seed=40)
        compile_problem(graph, costs)
        assert compile_cache_stats().size == before + 1
        del costs
        assert compile_cache_stats().size == before

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            configure_compile_cache(max_entries=0)


class TestRevise:
    def test_revise_changes_fingerprint_iff_costs_change(self):
        graph, costs = make_problem(10, Objective.LONGEST_LINK)
        problem = DeploymentProblem(graph, costs)
        same_content = CostMatrix(list(costs.instance_ids), costs.as_array())
        assert problem.revise(costs=same_content).fingerprint() == \
            problem.fingerprint()
        changed = problem.revise(costs=drifted(costs, seed=17))
        assert changed.fingerprint() != problem.fingerprint()
        assert changed.instance_key() != problem.instance_key()

    def test_revise_with_identical_object_returns_self(self):
        graph, costs = make_problem(11, Objective.LONGEST_LINK)
        problem = DeploymentProblem(graph, costs)
        assert problem.revise(costs=costs) is problem

    def test_revise_carries_objective_constraints_and_metadata(self):
        graph, costs = make_problem(12, Objective.LONGEST_PATH)
        constraints = PlacementConstraints(pinned={0: 2})
        problem = DeploymentProblem(graph, costs,
                                    objective=Objective.LONGEST_PATH,
                                    constraints=constraints,
                                    metadata={"tenant": "t1"})
        revised = problem.revise(costs=drifted(costs, seed=18))
        assert revised.objective is Objective.LONGEST_PATH
        assert revised.constraints == constraints
        assert dict(revised.metadata) == {"tenant": "t1"}
        overridden = problem.revise(costs=drifted(costs, seed=19),
                                    metadata={"tenant": "t2"})
        assert dict(overridden.metadata) == {"tenant": "t2"}

    def test_revise_without_a_live_engine_compiles_lazily(self):
        graph, costs = make_problem(13, Objective.LONGEST_LINK)
        problem = DeploymentProblem(graph, costs)
        revised_costs = drifted(costs, seed=20)
        revised = problem.revise(costs=revised_costs)  # nothing compiled yet
        assert peek_compiled(graph, revised_costs) is None
        plan = revised.default_plan()
        assert revised.evaluate(plan) == \
            CompiledProblem(graph, revised_costs).evaluate_plan(
                plan, Objective.LONGEST_LINK)

    def test_unrevised_problems_keep_their_engine_behaviour(self):
        # A problem that never revises must not notice the refresh
        # machinery at all: same engine object, epoch 0, same scores.
        graph, costs = make_problem(14, Objective.LONGEST_LINK)
        problem = DeploymentProblem(graph, costs)
        engine = problem.compiled()
        assert engine.cost_epoch == 0
        assert problem.compiled() is engine
