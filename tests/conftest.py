"""Shared fixtures and helpers for the ClouDiA reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cloud import DatacenterTopology, ProviderProfile, SimulatedCloud
from repro.core import CommunicationGraph
# Re-exported so legacy `from conftest import ...` keeps working; new code
# should import these from repro.testing directly.
from repro.testing import brute_force_optimum, deterministic_cost_matrix

__all__ = ["brute_force_optimum", "deterministic_cost_matrix"]


def pytest_addoption(parser):
    parser.addoption(
        "--run-bench", action="store_true", default=False,
        help="also run tests marked slow (benchmark smoke tests)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-bench"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --run-bench to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_litter():
    """The whole suite must leave ``/dev/shm`` exactly as it found it.

    Process-pool evaluators export engine arrays into named shared-memory
    segments (token ``repro-<pid>-...``); every one of them must be
    unlinked by the finalizers / sweepers by the time the session ends.
    """
    import glob
    import os

    yield
    from repro.core.parallel import close_shared_engines, shutdown_process_pool
    shutdown_process_pool()
    close_shared_engines()
    if os.path.isdir("/dev/shm"):
        litter = glob.glob(f"/dev/shm/repro-{os.getpid()}-*")
        assert not litter, f"leaked shared-memory segments: {litter}"


@pytest.fixture
def small_cloud() -> SimulatedCloud:
    """A compact EC2-profile cloud used across integration-style tests."""
    topology = DatacenterTopology(num_pods=3, racks_per_pod=4, hosts_per_rack=8, seed=11)
    return SimulatedCloud(profile=ProviderProfile.ec2(), topology=topology, seed=11)


@pytest.fixture
def allocated_ids(small_cloud: SimulatedCloud):
    """Twelve instances allocated from the small cloud."""
    return [inst.instance_id for inst in small_cloud.allocate(12)]


@pytest.fixture
def mesh_graph() -> CommunicationGraph:
    """A 3x3 bidirectional mesh, the smallest interesting HPC-style graph."""
    return CommunicationGraph.mesh_2d(3, 3)


@pytest.fixture
def tree_graph() -> CommunicationGraph:
    """A small aggregation tree (binary, depth 2 => 7 nodes)."""
    return CommunicationGraph.aggregation_tree(branching=2, depth=2)
