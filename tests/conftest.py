"""Shared fixtures and helpers for the ClouDiA reproduction test suite."""

from __future__ import annotations

from itertools import permutations
from typing import Tuple

import numpy as np
import pytest

from repro.cloud import DatacenterTopology, ProviderProfile, SimulatedCloud
from repro.core import CommunicationGraph, CostMatrix, DeploymentPlan, Objective
from repro.core.objectives import deployment_cost


@pytest.fixture
def small_cloud() -> SimulatedCloud:
    """A compact EC2-profile cloud used across integration-style tests."""
    topology = DatacenterTopology(num_pods=3, racks_per_pod=4, hosts_per_rack=8, seed=11)
    return SimulatedCloud(profile=ProviderProfile.ec2(), topology=topology, seed=11)


@pytest.fixture
def allocated_ids(small_cloud: SimulatedCloud):
    """Twelve instances allocated from the small cloud."""
    return [inst.instance_id for inst in small_cloud.allocate(12)]


@pytest.fixture
def mesh_graph() -> CommunicationGraph:
    """A 3x3 bidirectional mesh, the smallest interesting HPC-style graph."""
    return CommunicationGraph.mesh_2d(3, 3)


@pytest.fixture
def tree_graph() -> CommunicationGraph:
    """A small aggregation tree (binary, depth 2 => 7 nodes)."""
    return CommunicationGraph.aggregation_tree(branching=2, depth=2)


def deterministic_cost_matrix(num_instances: int, seed: int = 0,
                              low: float = 0.2, high: float = 1.4,
                              symmetric: bool = True) -> CostMatrix:
    """A reproducible random cost matrix with EC2-like latency ranges."""
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(low, high, size=(num_instances, num_instances))
    if symmetric:
        matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    return CostMatrix(list(range(num_instances)), matrix)


def brute_force_optimum(graph: CommunicationGraph, costs: CostMatrix,
                        objective: Objective) -> Tuple[DeploymentPlan, float]:
    """Exhaustively enumerate all injective deployments (tiny instances only)."""
    nodes = list(graph.nodes)
    instances = list(costs.instance_ids)
    assert len(instances) <= 8, "brute force is only meant for tiny problems"
    best_plan = None
    best_cost = float("inf")
    for assignment in permutations(instances, len(nodes)):
        plan = DeploymentPlan(dict(zip(nodes, assignment)))
        cost = deployment_cost(plan, graph, costs, objective)
        if cost < best_cost:
            best_plan, best_cost = plan, cost
    assert best_plan is not None
    return best_plan, best_cost
