#!/usr/bin/env python3
"""Comparing latency heterogeneity across cloud providers (Appendix 3).

Allocates instances on the simulated EC2, Google Compute Engine and
Rackspace regions, prints each provider's latency spread, and shows how much
a deployment optimised by ClouDiA improves the longest link on each —
heterogeneous providers leave more room for improvement.

Run it with ``python examples/provider_comparison.py``.
"""

import os

from repro import (CommunicationGraph, CPLongestLinkSolver, DeploymentProblem,
                   SearchBudget, SimulatedCloud)
from repro.analysis import empirical_cdf, format_table
from repro.cloud import ProviderProfile
from repro.core.objectives import longest_link_cost
from repro.solvers import default_plan



def _time_limit(default: float) -> float:
    """Solver time budget, overridable for CI smoke runs.

    The ``EXAMPLE_TIME_LIMIT`` environment variable caps every solver
    budget in the examples so the CI ``examples-smoke`` job can run them
    in seconds; unset, each example keeps its illustrative default.
    """
    override = os.environ.get("EXAMPLE_TIME_LIMIT")
    return min(default, float(override)) if override else default


def main() -> None:
    graph = CommunicationGraph.mesh_2d(4, 5)
    rows = []
    for provider in ("ec2", "gce", "rackspace"):
        cloud = SimulatedCloud(profile=ProviderProfile.by_name(provider), seed=41)
        ids = [instance.instance_id for instance in cloud.allocate(24)]
        costs = cloud.true_cost_matrix(ids)
        cdf = empirical_cdf(costs.link_costs())

        baseline = longest_link_cost(default_plan(graph, costs), graph, costs)
        optimized = CPLongestLinkSolver(seed=0).solve(
            DeploymentProblem(graph, costs),
            budget=SearchBudget.seconds(_time_limit(4.0))).cost
        improvement = 100.0 * (baseline - optimized) / baseline
        rows.append((provider, cdf.quantile(0.10), cdf.quantile(0.90),
                     cdf.spread(0.1, 0.9), baseline, optimized,
                     f"{improvement:.1f}%"))

    print(format_table(
        ["provider", "p10 latency [ms]", "p90 latency [ms]", "p90/p10 spread",
         "default longest link [ms]", "ClouDiA longest link [ms]", "improvement"],
        rows,
        title="Latency heterogeneity and deployment improvement per provider",
    ))
    print("\nProviders with wider latency spread (EC2) leave ClouDiA more room "
          "to improve the deployment; tighter providers (Rackspace) benefit "
          "less, matching Appendix 3 of the paper.")


if __name__ == "__main__":
    main()
