#!/usr/bin/env python3
"""Deploying a top-k aggregation service (service-oriented workload).

A two-level aggregation tree answers search-style queries; response time is
governed by the slowest leaf-to-root path.  This example optimises the
deployment under the longest-path objective and compares the MIP branch and
bound against time-bounded random search (the paper's R2), illustrating the
Fig. 15 finding that R2 is surprisingly competitive for this objective.

Run it with ``python examples/aggregation_service_deployment.py``.
"""

import os

from repro import (
    AggregationQueryWorkload,
    DeploymentProblem,
    MIPLongestPathSolver,
    Objective,
    RandomSearch,
    SearchBudget,
    SimulatedCloud,
    StagedMeasurement,
    compare_deployments,
    default_plan,
)
from repro.core.objectives import critical_path



def _time_limit(default: float) -> float:
    """Solver time budget, overridable for CI smoke runs.

    The ``EXAMPLE_TIME_LIMIT`` environment variable caps every solver
    budget in the examples so the CI ``examples-smoke`` job can run them
    in seconds; unset, each example keeps its illustrative default.
    """
    override = os.environ.get("EXAMPLE_TIME_LIMIT")
    return min(default, float(override)) if override else default


def main() -> None:
    cloud = SimulatedCloud(seed=23)

    # A ternary aggregation tree of depth 2: 1 root, 3 aggregators, 9 leaves.
    workload = AggregationQueryWorkload(branching=3, depth=2, num_queries=300)
    graph = workload.communication_graph()

    # Allocate with 15 % head-room and measure pairwise latencies explicitly,
    # to show the pipeline stages can also be driven by hand.
    instances = cloud.allocate(int(graph.num_nodes * 1.15))
    ids = [instance.instance_id for instance in instances]
    measurement = StagedMeasurement(seed=0).measure(cloud, ids,
                                                    target_samples_per_link=10)
    costs = measurement.to_cost_matrix()
    print(f"measured {measurement.num_probes} probes in "
          f"{measurement.elapsed_ms:.0f} simulated ms")

    budget = SearchBudget.seconds(_time_limit(6.0))
    problem = DeploymentProblem(graph, costs, objective=Objective.LONGEST_PATH)
    mip = MIPLongestPathSolver(backend="bnb").solve(problem, budget=budget)
    r2 = RandomSearch.r2(seed=0).solve(problem, budget=budget)
    best = min((mip, r2), key=lambda result: result.cost)
    baseline = default_plan(graph, costs)

    print(f"MIP longest path: {mip.cost:.3f} ms   "
          f"R2 longest path: {r2.cost:.3f} ms   (lower is better)")
    path = critical_path(best.plan, graph, costs)
    print(f"critical path of the chosen plan: {path.edges} ({path.cost:.3f} ms)")

    comparison = compare_deployments(workload, baseline, best.plan, cloud, seed=9)
    print(f"\nmean query response (default): {comparison.baseline.value:.3f} ms")
    print(f"mean query response (ClouDiA): {comparison.optimized.value:.3f} ms")
    print(f"reduction: {comparison.reduction_percent:.1f} %")

    cloud.terminate(best.plan.unused_instances(ids))


if __name__ == "__main__":
    main()
