#!/usr/bin/env python3
"""Quickstart: optimise the deployment of a small mesh application.

This example walks through the full ClouDiA pipeline (Fig. 3 of the paper)
on the simulated public cloud, then replays the same search through the
serializable service API:

1. describe the application as a communication graph (a 4x5 mesh),
2. let the advisor allocate instances with 10 % over-allocation,
3. measure pairwise latencies with the staged scheme,
4. search for a deployment minimising the longest link, and
5. terminate the spare instances and report the expected improvement;
6. finally, wrap the measured problem in a ``DeploymentProblem`` and solve
   it again through an ``AdvisorSession`` with solvers resolved from the
   registry — the API every serialized (JSON / CLI) workflow uses.

Run it with ``python examples/quickstart.py``.
"""

import os

from repro import (
    AdvisorConfig,
    AdvisorSession,
    ClouDiA,
    CommunicationGraph,
    DeploymentProblem,
    MeasurementConfig,
    Objective,
    SimulatedCloud,
    SolveRequest,
)



def _time_limit(default: float) -> float:
    """Solver time budget, overridable for CI smoke runs.

    The ``EXAMPLE_TIME_LIMIT`` environment variable caps every solver
    budget in the examples so the CI ``examples-smoke`` job can run them
    in seconds; unset, each example keeps its illustrative default.
    """
    override = os.environ.get("EXAMPLE_TIME_LIMIT")
    return min(default, float(override)) if override else default


def main() -> None:
    # A simulated EC2-like region.  In the paper this is the real EC2 US East
    # region; the library replaces it with a latency-calibrated simulator.
    cloud = SimulatedCloud(seed=7)

    # The application: 20 components exchanging boundary data on a 4x5 mesh.
    graph = CommunicationGraph.mesh_2d(4, 5)
    print(f"application graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    config = AdvisorConfig(
        objective=Objective.LONGEST_LINK,
        over_allocation_ratio=0.10,
        solver="cp",  # a registry key; "auto" / None picks the paper default
        solver_time_limit_s=_time_limit(5.0),
        measurement=MeasurementConfig(scheme="staged", target_samples_per_link=10),
        seed=0,
    )
    advisor = ClouDiA(cloud, config)
    report = advisor.recommend(graph)

    print(f"instances allocated: {len(report.allocated_instances)}")
    print(f"instances terminated after planning: {len(report.terminated_instances)}")
    print(f"simulated measurement time: {report.measurement_time_ms:.0f} ms")
    print(f"search time: {report.search_time_s:.2f} s "
          f"({report.solver_result.solver_name})")
    print(f"default deployment longest link: {report.default_predicted_cost:.3f} ms")
    print(f"ClouDiA deployment longest link: {report.predicted_cost:.3f} ms")
    print(f"predicted improvement: {report.predicted_improvement:.1%}")

    print("\nnode -> instance mapping (first 10 nodes):")
    for node in list(graph.nodes)[:10]:
        print(f"  node {node:3d} -> instance {report.plan.instance_for(node)}")

    # ------------------------------------------------------------------ #
    # The same search through the service API.  A DeploymentProblem is a
    # frozen, validated value object that serializes to JSON
    # (problem.to_dict()); the session deduplicates compilations across
    # requests and records per-request telemetry.
    # ------------------------------------------------------------------ #
    problem = DeploymentProblem(graph, report.cost_matrix,
                                metadata={"example": "quickstart"})
    session = AdvisorSession()
    responses = session.solve_many([
        SolveRequest(problem, solver="greedy"),
        SolveRequest(problem, solver="cp", config={"seed": 0}),
    ])
    print("\nservice API on the measured cost matrix:")
    for response in responses:
        cache = "hit" if response.telemetry.compile_cache_hit else "miss"
        print(f"  {response.solver:>6s}: {response.cost:.3f} ms "
              f"(compile cache {cache}, "
              f"{response.telemetry.total_time_s:.2f} s)")


if __name__ == "__main__":
    main()
