#!/usr/bin/env python3
"""Deploying a behavioral simulation (HPC workload, time-to-solution goal).

Reproduces the paper's flagship scenario at laptop scale: a fish-school
simulation partitioned over a 2-D mesh is deployed twice — once with the
default provider ordering and once with ClouDiA's longest-link-optimised
plan — and the resulting time-to-solution is compared.

Run it with ``python examples/behavioral_simulation_deployment.py``.
"""

import os

from repro import (
    AdvisorConfig,
    BehavioralSimulationWorkload,
    ClouDiA,
    MeasurementConfig,
    Objective,
    SimulatedCloud,
    compare_deployments,
)
from repro.core.objectives import worst_link



def _time_limit(default: float) -> float:
    """Solver time budget, overridable for CI smoke runs.

    The ``EXAMPLE_TIME_LIMIT`` environment variable caps every solver
    budget in the examples so the CI ``examples-smoke`` job can run them
    in seconds; unset, each example keeps its illustrative default.
    """
    override = os.environ.get("EXAMPLE_TIME_LIMIT")
    return min(default, float(override)) if override else default


def main() -> None:
    cloud = SimulatedCloud(seed=11)

    # 36 simulation partitions on a 6x6 mesh, 200 synchronised ticks.
    workload = BehavioralSimulationWorkload(rows=6, cols=6, ticks=200)
    graph = workload.communication_graph()

    advisor = ClouDiA(cloud, AdvisorConfig(
        objective=Objective.LONGEST_LINK,
        over_allocation_ratio=0.15,
        solver_time_limit_s=_time_limit(8.0),
        measurement=MeasurementConfig(target_samples_per_link=10),
        terminate_unused=False,   # keep instances so we can also run the baseline
        seed=1,
    ))
    report = advisor.recommend(graph)

    slowest = worst_link(report.plan, graph, report.cost_matrix)
    print(f"predicted longest link (default):  {report.default_predicted_cost:.3f} ms")
    print(f"predicted longest link (ClouDiA):  {report.predicted_cost:.3f} ms")
    print(f"worst link in the chosen plan: edge {slowest.edges[0]} at "
          f"{slowest.cost:.3f} ms")

    comparison = compare_deployments(workload, report.default_plan, report.plan,
                                     cloud, seed=5, repetitions=2)
    print(f"\ntime-to-solution (default): {comparison.baseline.value:,.0f} ms")
    print(f"time-to-solution (ClouDiA): {comparison.optimized.value:,.0f} ms")
    print(f"reduction: {comparison.reduction_percent:.1f} % "
          f"(paper reports 15-55 % across allocations)")

    # Now that both deployments have been evaluated, release the spares.
    cloud.terminate(report.terminated_instances)
    print(f"\nterminated {len(report.terminated_instances)} spare instances; "
          f"{len(cloud.active_instances())} still running the application")


if __name__ == "__main__":
    main()
