#!/usr/bin/env python3
"""Deploying a key-value store whose objective is only approximately modelled.

The key-value store's mean multiget response time is governed by many links
at once, so neither longest link nor longest path matches it exactly
(Sect. 6.1.3).  The paper still optimises it with the longest-link objective
and obtains a 15–31 % improvement.  This example reproduces that experiment
and also reports what the improvement would have been with a plain random
search, to show the value of the exact solver even under objective mismatch.

Run it with ``python examples/keyvalue_store_deployment.py``.
"""

import os

from repro import (
    AdvisorConfig,
    ClouDiA,
    KeyValueStoreWorkload,
    MeasurementConfig,
    Objective,
    RandomSearch,
    SimulatedCloud,
    compare_deployments,
)


def run_once(cloud, workload, solver, label, seed):
    advisor = ClouDiA(cloud, AdvisorConfig(
        objective=Objective.LONGEST_LINK,
        over_allocation_ratio=0.20,
        solver=solver,
        solver_time_limit_s=_time_limit(5.0),
        measurement=MeasurementConfig(target_samples_per_link=8),
        terminate_unused=False,
        seed=seed,
    ))
    report = advisor.recommend(workload.communication_graph())
    comparison = compare_deployments(workload, report.default_plan, report.plan,
                                     cloud, seed=seed + 100, repetitions=2)
    print(f"{label:>22}: predicted link improvement "
          f"{report.predicted_improvement:6.1%}, "
          f"measured response-time reduction {comparison.reduction_percent:5.1f} %")
    cloud.terminate(report.allocated_instances)
    return comparison



def _time_limit(default: float) -> float:
    """Solver time budget, overridable for CI smoke runs.

    The ``EXAMPLE_TIME_LIMIT`` environment variable caps every solver
    budget in the examples so the CI ``examples-smoke`` job can run them
    in seconds; unset, each example keeps its illustrative default.
    """
    override = os.environ.get("EXAMPLE_TIME_LIMIT")
    return min(default, float(override)) if override else default


def main() -> None:
    workload = KeyValueStoreWorkload(num_frontends=6, num_storage=18,
                                     num_queries=400, keys_per_query=8)
    print(f"key-value store: {workload.num_frontends} front-ends, "
          f"{workload.num_storage} storage nodes, "
          f"{workload.keys_per_query} keys per multiget\n")

    # Default solver (CP on the longest-link objective), as ClouDiA would run.
    run_once(SimulatedCloud(seed=31), workload, solver=None,
             label="ClouDiA (CP solver)", seed=0)

    # A cheap baseline: keep the best of 1,000 random deployments.
    run_once(SimulatedCloud(seed=31), workload,
             solver=RandomSearch.r1(num_samples=1000, seed=0),
             label="random search (R1)", seed=0)


if __name__ == "__main__":
    main()
