"""Figure 9: MIP convergence for LPNDP under cost clustering.

The paper solves a 50-instance aggregation-tree instance with the LPNDP MIP
and k ∈ {5, 20, no clustering}: k = 5 performs poorly, and — unlike the
longest-link case — clustering does *not* speed up the search, because path
costs are sums and the solver cannot exploit having fewer distinct values.
The benchmark uses a depth-2 ternary tree (13 nodes) on 15 instances.
"""

from repro.core import CommunicationGraph, DeploymentProblem, Objective
from repro.analysis import format_table
from repro.solvers import MIPLongestPathSolver, SearchBudget, default_plan
from repro.core.objectives import longest_path_cost

from conftest import allocate_ids, make_cloud

TIME_LIMIT_S = 10.0
CONFIGURATIONS = [("k=5", 5), ("k=20", 20), ("no clustering", None)]


def build_figure():
    cloud = make_cloud("ec2", seed=9)
    ids = allocate_ids(cloud, 15)
    costs = cloud.true_cost_matrix(ids)
    graph = CommunicationGraph.aggregation_tree(branching=3, depth=2)
    baseline = longest_path_cost(default_plan(graph, costs), graph, costs)

    results = {}
    problem = DeploymentProblem(graph, costs, objective=Objective.LONGEST_PATH)
    for label, k in CONFIGURATIONS:
        solver = MIPLongestPathSolver(backend="bnb", k_clusters=k)
        results[label] = solver.solve(problem,
                                      budget=SearchBudget.seconds(TIME_LIMIT_S))
    return baseline, results


def test_fig09_lpndp_clustering(benchmark, emit):
    baseline, results = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        for elapsed, cost in result.trace:
            rows.append((label, elapsed, cost))
    trace_table = format_table(
        ["configuration", "time [s]", "longest-path latency [ms]"], rows,
        title="Figure 9 — MIP convergence for LPNDP under cost clustering "
              "(15 instances, depth-2 ternary aggregation tree)",
    )
    summary = format_table(
        ["configuration", "final cost [ms]", "B&B nodes", "vs. default"],
        [
            (label, result.cost, result.iterations,
             f"{result.cost / baseline:.2f}x")
            for label, result in results.items()
        ] + [("default deployment", baseline, 0, "1.00x")],
        title="Figure 9 summary (paper: clustering does not improve LPNDP)",
    )
    emit("fig09_lpndp_clustering", trace_table + "\n\n" + summary)

    # Clustering does not help: the unclustered run is at least as good as k=5.
    assert results["no clustering"].cost <= results["k=5"].cost + 1e-9
