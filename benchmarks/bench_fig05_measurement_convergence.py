"""Figure 5: convergence of the staged latency measurement over time.

The paper measures 100 instances for 30 minutes and shows the root-mean-
square error of partial estimates (against the full measurement) dropping
quickly within the first five minutes.  The benchmark reproduces the curve
at reduced scale and asserts the same monotone-decreasing shape.
"""

import numpy as np

from repro.analysis import format_series
from repro.netmeasure import StagedMeasurement, rmse_convergence

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=5)
    ids = allocate_ids(cloud, 40)
    result = StagedMeasurement(seed=0, samples_per_stage=10).measure(
        cloud, ids, target_samples_per_link=60)
    reference = result.to_cost_matrix()
    checkpoints = np.linspace(result.elapsed_ms * 0.05, result.elapsed_ms, 12)
    curve = rmse_convergence(result, reference, checkpoints)
    return result, curve


def test_fig05_measurement_convergence(benchmark, emit):
    result, curve = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    xs = [when / 1000.0 for when, _ in curve]
    ys = [value for _, value in curve]
    table = format_series(
        "Figure 5 — RMSE of partial mean-latency estimates vs. full measurement "
        "(staged, 40 instances)",
        xs, ys, x_label="measurement time [s]", y_label="RMSE [ms]",
    )
    emit("fig05_measurement_convergence", table)

    assert len(curve) >= 6
    # The error decreases (strongly) with measurement time and ends at zero.
    assert ys[0] > ys[len(ys) // 2] >= ys[-1]
    assert ys[-1] < 1e-9
    # Most of the error disappears in the first third of the measurement.
    assert ys[len(ys) // 3] < ys[0] * 0.6
