"""Figure 1: CDF of pairwise mean latencies among 100 EC2 instances.

The paper observes that roughly 10 % of instance pairs exceed 0.7 ms while
the bottom 10 % stay below 0.4 ms.  This benchmark allocates 100 instances
from the simulated EC2 region and prints the CDF of ground-truth mean link
latencies together with the 10th/90th-percentile spread.
"""

from repro.analysis import cdf_points, empirical_cdf, format_series, format_table

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=1)
    ids = allocate_ids(cloud, 100)
    costs = cloud.true_cost_matrix(ids)
    return costs.link_costs()


def test_fig01_latency_heterogeneity(benchmark, emit):
    latencies = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    cdf = empirical_cdf(latencies)
    xs, qs = cdf_points(latencies, num_points=21)
    table = format_series("Figure 1 — CDF of mean pairwise latency (EC2 profile, "
                          "100 instances)", xs, qs,
                          x_label="mean latency [ms]", y_label="CDF")
    summary = format_table(
        ["statistic", "value"],
        [
            ("p10 latency [ms]", cdf.quantile(0.10)),
            ("p50 latency [ms]", cdf.quantile(0.50)),
            ("p90 latency [ms]", cdf.quantile(0.90)),
            ("p90 / p10 spread", cdf.spread(0.1, 0.9)),
            ("fraction of links above 0.7 ms", float((latencies > 0.7).mean())),
        ],
        title="Figure 1 summary (paper: ~10 % of links above 0.7 ms, "
              "bottom 10 % below 0.4 ms)",
    )
    emit("fig01_latency_heterogeneity", table + "\n\n" + summary)
    # The headline property: pronounced latency heterogeneity.
    assert cdf.spread(0.1, 0.9) > 1.4
