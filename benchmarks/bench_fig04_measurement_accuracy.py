"""Figure 4: normalized relative error of staged / uncoordinated measurement.

Token passing (probes strictly serialised) is the accuracy baseline; the
staged scheme should track it closely while the uncoordinated scheme shows
much larger errors because colliding probes inflate observed RTTs.
"""

import numpy as np

from repro.analysis import format_table
from repro.netmeasure import (
    StagedMeasurement,
    TokenPassingMeasurement,
    UncoordinatedMeasurement,
    relative_error_cdf_input,
)

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=4)
    ids = allocate_ids(cloud, 30)
    samples_per_link = 30
    token = TokenPassingMeasurement(seed=0).measure(
        cloud, ids, target_samples_per_link=samples_per_link)
    staged = StagedMeasurement(seed=0).measure(
        cloud, ids, target_samples_per_link=samples_per_link)
    uncoordinated = UncoordinatedMeasurement(seed=0).measure(
        cloud, ids, target_samples_per_link=samples_per_link)
    reference = token.to_cost_matrix()
    staged_errors = relative_error_cdf_input(staged.to_cost_matrix(), reference)
    uncoordinated_errors = relative_error_cdf_input(
        uncoordinated.to_cost_matrix(), reference)
    return staged_errors, uncoordinated_errors, token, staged, uncoordinated


def test_fig04_measurement_accuracy(benchmark, emit):
    staged_errors, uncoordinated_errors, token, staged, uncoordinated = \
        benchmark.pedantic(build_figure, rounds=1, iterations=1)

    quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0]
    rows = [
        (f"p{int(q * 100)}",
         float(np.quantile(staged_errors, q)),
         float(np.quantile(uncoordinated_errors, q)))
        for q in quantiles
    ]
    table = format_table(
        ["error quantile", "staged", "uncoordinated"], rows,
        title="Figure 4 — normalized relative error vs. token passing "
              "(30 instances; paper: staged is markedly more accurate)",
    )
    timing = format_table(
        ["scheme", "probes", "simulated time [ms]"],
        [
            ("token-passing", token.num_probes, token.elapsed_ms),
            ("staged", staged.num_probes, staged.elapsed_ms),
            ("uncoordinated", uncoordinated.num_probes, uncoordinated.elapsed_ms),
        ],
        title="Measurement cost",
    )
    emit("fig04_measurement_accuracy", table + "\n\n" + timing)

    # Qualitative claim: staged is more accurate than uncoordinated at every
    # reported quantile above the median.
    assert float(np.quantile(staged_errors, 0.9)) < \
        float(np.quantile(uncoordinated_errors, 0.9))
    # And far cheaper than token passing in simulated wall-clock time.
    assert staged.elapsed_ms < token.elapsed_ms
