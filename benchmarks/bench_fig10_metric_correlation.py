"""Figure 10: correlation between candidate communication cost metrics.

The paper plots, for one representative 110-instance allocation, each link's
mean latency against its mean-plus-standard-deviation and its 99th
percentile: the metrics are positively related but not perfectly correlated.
The benchmark reproduces the scatter at 40 instances and reports the
correlation coefficients.
"""

import numpy as np

from repro.core import LatencyMetric
from repro.analysis import format_table, pearson, spearman

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=10)
    ids = allocate_ids(cloud, 40)
    mean_matrix = cloud.true_cost_matrix(ids, metric=LatencyMetric.MEAN)
    mean_std_matrix = cloud.true_cost_matrix(ids, metric=LatencyMetric.MEAN_PLUS_STD,
                                             num_samples=48)
    p99_matrix = cloud.true_cost_matrix(ids, metric=LatencyMetric.P99,
                                        num_samples=48)
    return (mean_matrix.link_costs(), mean_std_matrix.link_costs(),
            p99_matrix.link_costs())


def test_fig10_metric_correlation(benchmark, emit):
    mean_values, mean_std_values, p99_values = benchmark.pedantic(
        build_figure, rounds=1, iterations=1)

    # A scatter sample: 20 links spread across the mean-latency range.
    order = np.argsort(mean_values)
    picks = order[np.linspace(0, len(order) - 1, 20).astype(int)]
    scatter_rows = [
        (float(mean_values[i]), float(mean_std_values[i]), float(p99_values[i]))
        for i in picks
    ]
    scatter = format_table(
        ["mean [ms]", "mean+SD [ms]", "p99 [ms]"], scatter_rows,
        title="Figure 10 — sample of links: mean vs. mean+SD vs. p99 "
              "(40 instances)",
    )
    correlation = format_table(
        ["metric pair", "Pearson", "Spearman"],
        [
            ("mean vs mean+SD", pearson(mean_values, mean_std_values),
             spearman(mean_values, mean_std_values)),
            ("mean vs p99", pearson(mean_values, p99_values),
             spearman(mean_values, p99_values)),
        ],
        title="Figure 10 summary (paper: related but not perfectly correlated)",
    )
    emit("fig10_metric_correlation", scatter + "\n\n" + correlation)

    # Positively correlated…
    assert pearson(mean_values, mean_std_values) > 0.3
    assert pearson(mean_values, p99_values) > 0.2
    # …but not perfectly (jitter decouples the tails from the mean).
    assert spearman(mean_values, p99_values) < 0.999
