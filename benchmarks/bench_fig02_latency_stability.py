"""Figure 2: mean latency stability of four representative EC2 links over time.

The paper tracks four links for ten days with two-hour averaging windows and
finds that mean latencies barely move.  This benchmark reproduces the trace
at reduced length (100 hours, 4-hour windows) and reports each link's
coefficient of variation.
"""

from repro.analysis import format_table
from repro.cloud import collect_latency_trace, representative_links

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=2)
    ids = allocate_ids(cloud, 30)
    links = representative_links(cloud, count=4, instance_ids=ids)
    trace = collect_latency_trace(cloud, links, duration_hours=100.0,
                                  window_hours=4.0, samples_per_window=150, seed=0)
    return links, trace


def test_fig02_latency_stability(benchmark, emit):
    links, trace = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    series_rows = []
    for index, link in enumerate(links):
        series = trace.series(link)
        for when, value in zip(trace.times_hours, series):
            series_rows.append((f"link {index + 1}", when, value))
    table = format_table(["link", "time [h]", "mean latency [ms]"], series_rows,
                         title="Figure 2 — mean latency over time "
                               "(EC2 profile, 4 links)")
    stability_rows = [
        (f"link {index + 1}", float(trace.series(link).mean()),
         trace.stability(link), trace.max_relative_drift(link))
        for index, link in enumerate(links)
    ]
    summary = format_table(
        ["link", "overall mean [ms]", "coeff. of variation", "max relative drift"],
        stability_rows,
        title="Figure 2 summary (paper: mean latencies are stable over days)",
    )
    emit("fig02_latency_stability", table + "\n\n" + summary)
    assert all(trace.stability(link) < 0.15 for link in links)
