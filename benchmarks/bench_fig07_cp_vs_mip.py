"""Figure 7: CP versus MIP convergence for LLNDP (k = 20 cost clusters).

The paper finds that the MIP formulation "performs poorly at the scale of
100 instances" while CP finds a significantly better deployment in the same
time: the MIP encoding needs |E| * |S|^2 constraints and its LP relaxation is
weak.  The benchmark reproduces the comparison at 20 instances / 16 nodes —
already enough for the gap to be visible — giving both solvers the same
wall-clock budget.
"""

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.solvers import (
    CPLongestLinkSolver,
    MIPLongestLinkSolver,
    SearchBudget,
    default_plan,
)
from repro.core.objectives import longest_link_cost

from conftest import allocate_ids, make_cloud

TIME_LIMIT_S = 10.0


def build_figure():
    cloud = make_cloud("ec2", seed=7)
    ids = allocate_ids(cloud, 20)
    costs = cloud.true_cost_matrix(ids)
    graph = CommunicationGraph.mesh_2d(4, 4)
    baseline = longest_link_cost(default_plan(graph, costs), graph, costs)

    problem = DeploymentProblem(graph, costs)
    cp = CPLongestLinkSolver(k_clusters=20, seed=0).solve(
        problem, budget=SearchBudget.seconds(TIME_LIMIT_S))
    mip = MIPLongestLinkSolver(backend="bnb", k_clusters=20).solve(
        problem, budget=SearchBudget.seconds(TIME_LIMIT_S))
    return baseline, cp, mip


def test_fig07_cp_vs_mip(benchmark, emit):
    baseline, cp, mip = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    rows = []
    for label, result in (("CP", cp), ("MIP", mip)):
        for elapsed, cost in result.trace:
            rows.append((label, elapsed, cost))
    trace_table = format_table(
        ["solver", "time [s]", "longest-link latency [ms]"], rows,
        title="Figure 7 — CP vs. MIP convergence for LLNDP with k=20 "
              "(20 instances, 4x4 mesh)",
    )
    summary = format_table(
        ["solver", "final cost [ms]", "vs. default deployment"],
        [
            ("default deployment", baseline, "1.00x"),
            ("CP", cp.cost, f"{cp.cost / baseline:.2f}x"),
            ("MIP", mip.cost, f"{mip.cost / baseline:.2f}x"),
        ],
        title="Figure 7 summary (paper: CP finds a significantly better solution)",
    )
    emit("fig07_cp_vs_mip", trace_table + "\n\n" + summary)

    # The qualitative claim: within the same budget CP is at least as good as
    # MIP, and strictly better than the default deployment.
    assert cp.cost <= mip.cost + 1e-9
    assert cp.cost < baseline
