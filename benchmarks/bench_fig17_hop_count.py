"""Figure 17: mean latency of links grouped by hop count (negative result).

Hop count is a slightly better-informed proxy than IP distance (it reflects
the physical topology) but the paper still finds many link pairs ordered
inconsistently by hop count and by measured latency.  The benchmark prints
per-group latency statistics and the ordering-violation rate.
"""

import numpy as np

from repro.analysis import format_table
from repro.netmeasure import (
    group_overlap_fraction,
    hop_count_matrix,
    links_grouped_by_proxy,
    proxy_quality,
)

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=17)
    ids = allocate_ids(cloud, 60)
    latency = cloud.true_cost_matrix(ids)
    proxy = hop_count_matrix(cloud, ids)
    groups = links_grouped_by_proxy(proxy, latency)
    quality = proxy_quality(proxy, latency)
    return groups, quality


def test_fig17_hop_count(benchmark, emit):
    groups, quality = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    rows = [
        (f"hop count = {int(value)}", len(latencies),
         float(np.min(latencies)), float(np.median(latencies)),
         float(np.max(latencies)))
        for value, latencies in groups.items()
    ]
    table = format_table(
        ["group", "links", "min latency [ms]", "median [ms]", "max [ms]"],
        rows,
        title="Figure 17 — link latency grouped by hop count "
              "(paper: a significant number of pairs are ordered inconsistently)",
    )
    summary = format_table(
        ["statistic", "value"],
        [
            ("Spearman correlation", quality.spearman),
            ("Pearson correlation", quality.pearson),
            ("pairwise ordering violations", quality.ordering_violations),
            ("adjacent group overlap fraction", group_overlap_fraction(groups)),
        ],
        title="Figure 17 summary",
    )
    emit("fig17_hop_count", table + "\n\n" + summary)

    # Hop count carries some signal but leaves a substantial violation rate,
    # so it cannot replace actual latency measurements.
    assert quality.ordering_violations > 0.05
    if len(groups) >= 2:
        assert group_overlap_fraction(groups) > 0.0
