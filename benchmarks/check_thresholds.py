"""Fail when a tracked evaluation-engine speedup regresses below its floor.

Reads the ``speedup <key> <value>`` lines that
``benchmarks/bench_evaluation_engine.py`` appends to
``benchmarks/results/evaluation_engine.txt`` and compares each tracked key
against the floor committed in ``benchmarks/thresholds.json``.  The CI
``bench`` job runs the benchmark and then this script; a missing key or a
ratio below its floor exits non-zero so the regression blocks the PR.

Usage::

    python benchmarks/bench_evaluation_engine.py   # writes the results file
    python benchmarks/check_thresholds.py
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent
RESULTS_PATH = BENCH_DIR / "results" / "evaluation_engine.txt"
THRESHOLDS_PATH = BENCH_DIR / "thresholds.json"


def parse_speedups(text: str) -> dict:
    """Extract the ``speedup <key> <value>`` lines from a results file."""
    speedups = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 3 and parts[0] == "speedup":
            speedups[parts[1]] = float(parts[2])
    return speedups


def parse_skipped(text: str) -> dict:
    """Extract the ``skipped <key> <reason>`` lines from a results file.

    A benchmark emits one when its key cannot be measured meaningfully on
    the current host (e.g. ``parallel_batch`` on a single-CPU machine);
    the key is then exempt from its floor instead of reported MISSING.
    """
    skipped = {}
    for line in text.splitlines():
        parts = line.split(maxsplit=2)
        if len(parts) >= 2 and parts[0] == "skipped":
            skipped[parts[1]] = parts[2] if len(parts) == 3 else ""
    return skipped


def main() -> int:
    if not RESULTS_PATH.exists():
        print(f"error: {RESULTS_PATH} not found — run "
              "benchmarks/bench_evaluation_engine.py first")
        return 1
    thresholds = json.loads(THRESHOLDS_PATH.read_text())
    results_text = RESULTS_PATH.read_text()
    speedups = parse_speedups(results_text)
    skipped = parse_skipped(results_text)

    failures = []
    for key, floor in sorted(thresholds.items()):
        value = speedups.get(key)
        if value is None and key in skipped:
            reason = skipped[key] or "no reason given"
            status = f"SKIP ({reason})"
        elif value is None:
            status = "MISSING"
            failures.append(key)
        elif value < floor:
            status = "FAIL"
            failures.append(key)
        else:
            status = "ok"
        shown = "—" if value is None else f"{value:.1f}x"
        print(f"{key:<28} {shown:>8}  (floor {floor:.1f}x)  {status}")

    if failures:
        print(f"\nspeedup regression in: {', '.join(failures)}")
        return 1
    print("\nall tracked speedups clear their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
