"""Speed of the vectorized evaluation engine on paper-scale instances.

Not a figure from the paper: this benchmark quantifies the engine that makes
the lightweight solvers viable at the paper's scale (100+ application nodes,
over-allocated instance pools).  It compares, on an n = 100 problem:

* scoring 10,000 random plans through the batch evaluator versus looping
  ``deployment_cost`` over the same plans (both objectives);
* scoring 10,000 swap moves through the incremental ``DeltaEvaluator``
  versus full re-evaluation of each candidate plan (longest link).

Every comparison also asserts the costs agree exactly, so the speedup is
never bought with a drifting objective.

Run via pytest (``python -m pytest benchmarks/bench_evaluation_engine.py -s``)
or directly (``PYTHONPATH=src python benchmarks/bench_evaluation_engine.py``).
"""

import time

import numpy as np

from repro.core import (
    CommunicationGraph,
    CostMatrix,
    DeploymentPlan,
    Objective,
    compile_problem,
    deployment_cost,
)

NUM_NODES = 100
NUM_INSTANCES = 110  # 10 % over-allocation, as in the paper's experiments
NUM_PLANS = 10_000
NUM_MOVES = 10_000
SEED = 2012


def build_problem(objective):
    rng = np.random.default_rng(SEED)
    matrix = rng.uniform(0.2, 1.4, size=(NUM_INSTANCES, NUM_INSTANCES))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(NUM_INSTANCES)), matrix)
    if objective is Objective.LONGEST_PATH:
        graph = CommunicationGraph.random_dag(NUM_NODES, 0.05, seed=SEED)
    else:
        graph = CommunicationGraph.random_graph(NUM_NODES, 0.05, seed=SEED)
    return graph, costs


def _best_of(repeats, fn):
    """Fastest of ``repeats`` timed runs (standard noise suppression)."""
    best_s, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, result


def bench_batch(objective, repeats=3):
    """(loop_s, batch_s, speedup) for scoring NUM_PLANS random plans."""
    graph, costs = build_problem(objective)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(SEED + 1)
    plans = [DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
             for _ in range(NUM_PLANS)]

    loop_s, looped = _best_of(1, lambda: [
        deployment_cost(plan, graph, costs, objective) for plan in plans
    ])
    batch_s, batched = _best_of(repeats,
                                lambda: problem.evaluate_plans(plans, objective))

    assert looped == list(batched), "batch evaluator disagrees with oracle"
    return graph, loop_s, batch_s, loop_s / batch_s


def bench_deltas():
    """(full_s, delta_s, speedup) for scoring NUM_MOVES swap candidates."""
    graph, costs = build_problem(Objective.LONGEST_LINK)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(SEED + 2)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
    swaps = [tuple(rng.choice(NUM_NODES, size=2, replace=False))
             for _ in range(NUM_MOVES)]

    start = time.perf_counter()
    full_costs = []
    reference = plan
    for a, b in swaps:
        reference = reference.with_swap(int(a), int(b))
        full_costs.append(
            deployment_cost(reference, graph, costs, Objective.LONGEST_LINK))
    full_s = time.perf_counter() - start

    def run_deltas():
        evaluator = problem.delta_evaluator(plan, Objective.LONGEST_LINK)
        return [evaluator.apply_swap(int(a), int(b)) for a, b in swaps]

    delta_s, delta_costs = _best_of(3, run_deltas)

    assert full_costs == delta_costs, "delta evaluator disagrees with oracle"
    return full_s, delta_s, full_s / delta_s


def build_report():
    lines = [
        f"Evaluation engine benchmark — n={NUM_NODES} nodes, "
        f"m={NUM_INSTANCES} instances, {NUM_PLANS} plans / {NUM_MOVES} moves",
        "-" * 72,
    ]
    for objective in (Objective.LONGEST_LINK, Objective.LONGEST_PATH):
        graph, loop_s, batch_s, speedup = bench_batch(objective)
        lines.append(
            f"batch {objective.value:<13} ({graph.num_edges:>4} edges): "
            f"looped {loop_s:7.3f} s   batch {batch_s:7.3f} s   "
            f"speedup {speedup:7.1f}x"
        )
    full_s, delta_s, speedup = bench_deltas()
    lines.append(
        f"delta longest_link  (swap moves):  "
        f"full   {full_s:7.3f} s   delta {delta_s:7.3f} s   "
        f"speedup {speedup:7.1f}x"
    )
    return "\n".join(lines)


def test_evaluation_engine_speedup(emit):
    report = build_report()
    emit("evaluation_engine", report)
    # Acceptance bar: batch longest-link evaluation of 10,000 plans on an
    # n=100 problem must beat the looped oracle by >= 10x.
    _, loop_s, batch_s, speedup = bench_batch(Objective.LONGEST_LINK)
    assert speedup >= 10.0, f"batch speedup only {speedup:.1f}x"


if __name__ == "__main__":
    print(build_report())
