"""Speed of the vectorized evaluation engine on paper-scale instances.

Not a figure from the paper: this benchmark quantifies the engine that makes
the solvers viable at the paper's scale (100+ application nodes,
over-allocated instance pools).  It compares, on an n = 100 problem:

* scoring random plans through the batch evaluator versus looping
  ``deployment_cost`` over the same plans (both objectives);
* scoring swap moves through the incremental ``DeltaEvaluator`` versus full
  re-evaluation of each candidate plan (longest link);
* an applied longest-path swap walk on a deep layered DAG through the
  incremental level-window delta versus a full vectorized re-relaxation
  per move;
* chunked multi-core batch evaluation through ``ParallelEvaluator`` versus
  the serial ``evaluate_batch`` (skipped, not failed, on single-CPU hosts);
* shared-memory process-pool batch evaluation through
  ``ProcessPoolEvaluator`` versus the thread chunking (skipped on
  single-CPU hosts and where fork / POSIX shared memory is unavailable);
* a mostly-rejected longest-path peek walk through the window-local
  ``swap_cost`` versus the pre-rewrite full-suffix re-relaxation peek;
* block-scored neighborhood peeks: scoring candidate-move blocks through
  ``DeltaEvaluator.peek_many`` versus the per-move peek loop the search
  solvers ran before the vectorized neighborhood kernels (plus an
  informational pool-routed variant, skipped on single-CPU hosts);
* the CP labeling bounds (compatibility domains and per-assignment cost
  lower bounds) computed from ``CompiledProblem`` index arrays versus the
  dict-walking reference implementations;
* MIP branch-and-bound incumbent rounding scored in one ``evaluate_batch``
  call versus per-candidate model evaluation (on a smaller instance — the
  MIP encoding grows as ``|E| * |S|^2``);
* the live re-deployment hot path: adopting a drifted cost matrix through
  ``CompiledProblem.refresh_costs`` versus a full recompile, and a warm
  re-solve (local search started from the incumbent plan, stopping at the
  cold solve's cost) versus a cold re-solve of the drifted instance;
* the durable result store: serving an already-solved revision from the
  SQLite WAL store (one indexed lookup + JSON decode) versus re-running
  the solver on the same fingerprint;
* the serving layer's dedup submit path: a repeated request through
  ``AdvisorApp.submit_solve`` (store short-circuit + plan validation)
  versus the cold queue -> worker -> solve -> write-back round trip.

Every comparison also asserts the results agree exactly, so the speedup is
never bought with a drifting objective.

The report is written to ``benchmarks/results/evaluation_engine.txt`` in a
stable format: the human-readable table is followed by ``speedup <key>
<value>`` lines that ``benchmarks/check_thresholds.py`` parses and checks
against the floors committed in ``benchmarks/thresholds.json`` (the CI
``bench`` job fails when any tracked ratio regresses).

Run via pytest (``python -m pytest benchmarks/bench_evaluation_engine.py -s``)
or directly (``PYTHONPATH=src python benchmarks/bench_evaluation_engine.py``).
The candidate counts can be reduced for quick runs through the
``EVAL_BENCH_PLANS`` / ``EVAL_BENCH_MOVES`` / ``EVAL_BENCH_ROUNDINGS``
environment variables (the problem sizes stay fixed so the tracked ratios
remain comparable).
"""

import json
import os
import pathlib
import tempfile
import time

import numpy as np

from repro.core import (
    CommunicationGraph,
    CompiledProblem,
    CostMatrix,
    DeploymentPlan,
    DeploymentProblem,
    MoveBatch,
    Objective,
    ParallelEvaluator,
    PlacementConstraints,
    ProcessPoolEvaluator,
    available_workers,
    compile_problem,
    deployment_cost,
    process_pool_unavailable_reason,
)
from repro.solvers import SearchBudget, SwapLocalSearch
from repro.solvers.cp.labeling import (
    assignment_cost_lower_bounds_reference,
    compatibility_domains,
    compatibility_domains_reference,
)
from repro.api.schema import SolveRequest
from repro.serve import PRIORITY_INTERACTIVE, ServeConfig, create_app
from repro.solvers.mip.llndp_mip import LLNDPEncoding
from repro.solvers.mip.branch_and_bound import DeploymentRounder
from repro.store import SQLiteResultCache

NUM_NODES = 100
NUM_INSTANCES = 110  # 10 % over-allocation, as in the paper's experiments
NUM_PLANS = int(os.environ.get("EVAL_BENCH_PLANS", 10_000))
NUM_MOVES = int(os.environ.get("EVAL_BENCH_MOVES", 10_000))
NUM_ROUNDINGS = int(os.environ.get("EVAL_BENCH_ROUNDINGS", 300))
NUM_CONSTRAINED = int(os.environ.get("EVAL_BENCH_CONSTRAINED", 500))
MIP_NODES = 8
MIP_INSTANCES = 12
SEED = 2012

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "evaluation_engine.txt"
THRESHOLDS_PATH = pathlib.Path(__file__).parent / "thresholds.json"


def build_problem(objective, num_nodes=NUM_NODES, num_instances=NUM_INSTANCES):
    rng = np.random.default_rng(SEED)
    matrix = rng.uniform(0.2, 1.4, size=(num_instances, num_instances))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(num_instances)), matrix)
    if objective is Objective.LONGEST_PATH:
        graph = CommunicationGraph.random_dag(num_nodes, 0.05, seed=SEED)
    else:
        graph = CommunicationGraph.random_graph(num_nodes, 0.05, seed=SEED)
    return graph, costs


def _best_of(repeats, fn):
    """Fastest of ``repeats`` timed runs (standard noise suppression)."""
    best_s, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, result


def bench_batch(objective, repeats=3):
    """(loop_s, batch_s, speedup) for scoring NUM_PLANS random plans."""
    graph, costs = build_problem(objective)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(SEED + 1)
    plans = [DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
             for _ in range(NUM_PLANS)]

    loop_s, looped = _best_of(1, lambda: [
        deployment_cost(plan, graph, costs, objective) for plan in plans
    ])
    batch_s, batched = _best_of(repeats,
                                lambda: problem.evaluate_plans(plans, objective))

    assert looped == list(batched), "batch evaluator disagrees with oracle"
    return graph, loop_s, batch_s, loop_s / batch_s


def bench_deltas():
    """(full_s, delta_s, speedup) for scoring NUM_MOVES swap candidates."""
    graph, costs = build_problem(Objective.LONGEST_LINK)
    problem = compile_problem(graph, costs)
    rng = np.random.default_rng(SEED + 2)
    plan = DeploymentPlan.random(graph.nodes, costs.instance_ids, rng)
    swaps = [tuple(rng.choice(NUM_NODES, size=2, replace=False))
             for _ in range(NUM_MOVES)]

    start = time.perf_counter()
    full_costs = []
    reference = plan
    for a, b in swaps:
        reference = reference.with_swap(int(a), int(b))
        full_costs.append(
            deployment_cost(reference, graph, costs, Objective.LONGEST_LINK))
    full_s = time.perf_counter() - start

    def run_deltas():
        evaluator = problem.delta_evaluator(plan, Objective.LONGEST_LINK)
        return [evaluator.apply_swap(int(a), int(b)) for a, b in swaps]

    delta_s, delta_costs = _best_of(3, run_deltas)

    assert full_costs == delta_costs, "delta evaluator disagrees with oracle"
    return full_s, delta_s, full_s / delta_s


def _layered_dag(num_layers=60, width=3, edge_prob=0.6, seed=SEED):
    """A pipeline-shaped DAG: ``num_layers`` layers of ``width`` nodes.

    Each node links to the next layer's nodes with probability
    ``edge_prob`` — the deep-and-narrow topology of streaming / dataflow
    deployments, and the regime where the incremental longest-path delta
    pays off most (a full re-relaxation walks all ~``num_layers`` levels
    per move while a swap only perturbs a local window).
    """
    rng = np.random.default_rng(seed)
    edges = []
    for layer in range(num_layers - 1):
        for a in range(width):
            for b in range(width):
                if rng.random() < edge_prob:
                    edges.append((layer * width + a, (layer + 1) * width + b))
    return CommunicationGraph(list(range(num_layers * width)), edges)


def bench_incremental_lp():
    """(full_s, delta_s, speedup) for an applied longest-path swap walk.

    The tracked scenario is local search on a deep layered DAG (180 nodes,
    59 levels): every move is peeked and committed.  The baseline is what
    ``DeltaEvaluator`` did for ``LONGEST_PATH`` before the incremental
    delta landed — a full vectorized re-relaxation of the whole DAG per
    candidate (``CompiledProblem.evaluate`` on the swapped assignment).
    The incremental path re-relaxes only the level window each swap
    touches.  Both walks must produce the exact same cost sequence.
    """
    graph = _layered_dag()
    n = graph.num_nodes
    rng = np.random.default_rng(SEED)
    matrix = rng.uniform(0.2, 1.4, size=(n + 10, n + 10))
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(n + 10)), matrix)
    problem = compile_problem(graph, costs)

    move_rng = np.random.default_rng(0)
    start = problem.random_assignments(1, move_rng)[0]
    swaps = [tuple(int(x) for x in move_rng.choice(n, size=2, replace=False))
             for _ in range(NUM_MOVES)]

    def full_walk():
        ref = start.copy()
        walk_costs = []
        for a, b in swaps:
            ref[[a, b]] = ref[[b, a]]
            walk_costs.append(problem.evaluate(ref, Objective.LONGEST_PATH))
        return walk_costs

    def delta_walk():
        evaluator = problem.delta_evaluator(start, Objective.LONGEST_PATH)
        return [evaluator.apply_swap(a, b) for a, b in swaps]

    full_s, full_costs = _best_of(3, full_walk)
    delta_s, delta_costs = _best_of(3, delta_walk)

    assert full_costs == delta_costs, \
        "incremental longest-path walk disagrees with full re-relaxation"
    return graph, full_s, delta_s, full_s / delta_s


def bench_parallel_batch(repeats=3):
    """(serial_s, parallel_s, speedup, workers) for a longest-path batch.

    Scores ``NUM_PLANS`` random assignments of the tracked n=100 DAG
    serially and through a :class:`ParallelEvaluator` sized to the host
    (``workers="auto"``), asserting the chunked result is bit-identical.
    Returns ``None`` timings when the host exposes a single CPU — thread
    chunking cannot beat serial there, so the caller reports the key as
    skipped instead of recording a meaningless ratio.
    """
    available = available_workers()
    graph, costs = build_problem(Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    assignments = problem.random_assignments(NUM_PLANS, SEED + 9)
    if available < 2:
        return None, None, None, available

    serial_s, serial_costs = _best_of(
        repeats,
        lambda: problem.evaluate_batch(assignments, Objective.LONGEST_PATH))

    # Hyperthreaded hosts can serve the memory-bound gathers better with
    # one worker per physical core than one per logical CPU, so the tracked
    # ratio is the best chunking the host supports.
    parallel_s, best_workers = float("inf"), available
    for workers in sorted({2, available}):
        parallel = ParallelEvaluator(problem, workers=workers)
        timed_s, parallel_costs = _best_of(
            repeats,
            lambda: parallel.evaluate_batch(assignments, Objective.LONGEST_PATH))
        assert np.array_equal(serial_costs, parallel_costs), \
            "parallel batch evaluation disagrees with serial"
        assert parallel.parallel_calls > 0, \
            "benchmark batch fell below the parallel size cutoff"
        if timed_s < parallel_s:
            parallel_s, best_workers = timed_s, workers
    return serial_s, parallel_s, serial_s / parallel_s, best_workers


def bench_process_pool_batch(repeats=3):
    """(thread_s, procs_s, speedup, workers, skip_reason) for an LP batch.

    The tracked comparison is the thread :class:`ParallelEvaluator` versus
    the shared-memory :class:`ProcessPoolEvaluator` on the same
    ``NUM_PLANS`` batch, both sized to the host — the process pool's whole
    point is beating the thread chunking's single-interpreter ceiling.
    Returns a skip reason (``None`` timings) on single-CPU hosts and on
    platforms without fork / POSIX shared memory; the pool is warmed
    (forked, segments attached) before the timed runs so the ratio tracks
    the steady state a solver sees, not the one-off fork cost.
    """
    available = available_workers()
    if available < 2:
        return None, None, None, available, "single-core-host"
    reason = process_pool_unavailable_reason()
    if reason is not None:
        return None, None, None, available, reason

    graph, costs = build_problem(Objective.LONGEST_PATH)
    problem = compile_problem(graph, costs)
    assignments = problem.random_assignments(NUM_PLANS, SEED + 10)
    threaded = ParallelEvaluator(problem, workers=available)
    pooled = ProcessPoolEvaluator(problem, workers=available)
    pooled.evaluate_batch(assignments, Objective.LONGEST_PATH)  # warm-up

    thread_s, thread_costs = _best_of(
        repeats,
        lambda: threaded.evaluate_batch(assignments, Objective.LONGEST_PATH))
    procs_s, procs_costs = _best_of(
        repeats,
        lambda: pooled.evaluate_batch(assignments, Objective.LONGEST_PATH))

    assert np.array_equal(thread_costs, procs_costs), \
        "process-pool batch evaluation disagrees with threads"
    assert pooled.fallback_reason is None and pooled.parallel_calls > 0, \
        "benchmark batch never reached the worker processes"
    return thread_s, procs_s, thread_s / procs_s, available, None


def bench_peeked_lp():
    """(full_s, delta_s, speedup) for a mostly-rejected longest-path walk.

    The local-search reality: most peeked moves are rejected, so the peek
    itself is the hot operation.  The baseline is the peek the
    ``DeltaEvaluator`` performed before the window-local rewrite — copy
    the committed ``finish`` list (O(n)), recost the touched edges,
    re-relax *every* node at levels >= the move's window through
    ``struct.in_edges``, and take ``max(finish)`` over all nodes (O(n)).
    The measured path is ``swap_cost`` with the per-level prefix/suffix
    maxima: overlays instead of copies, a rescan only where a level
    maximum actually dropped, and a window-local cost combination.  Both
    walks commit the same occasional move (1 in 25, the accepted ones)
    and must produce the exact same cost sequence.

    The tracked topology is wide-and-layered (12 layers x 40 nodes): with
    many nodes per level, a swap's perturbation washes out within a level
    or two (successors keep their maxima from unmoved predecessors), so
    the true frontier is tiny while the baseline still re-relaxes every
    node from the touched level to the sink.  (On deep-and-narrow DAGs
    the frontier *is* the suffix and the two peeks converge — that regime
    is tracked by ``incremental_longest_path`` above.)
    """
    graph = _layered_dag(num_layers=12, width=40, edge_prob=0.08)
    n = graph.num_nodes
    rng = np.random.default_rng(SEED)
    matrix = rng.uniform(0.2, 1.4, size=(n + 10, n + 10))
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(n + 10)), matrix)
    problem = compile_problem(graph, costs)

    move_rng = np.random.default_rng(0)
    start = problem.random_assignments(1, move_rng)[0]
    swaps = [tuple(int(x) for x in move_rng.choice(n, size=2, replace=False))
             for _ in range(NUM_MOVES)]
    committed = [k % 25 == 24 for k in range(NUM_MOVES)]

    struct = problem._lp_delta_structure()
    levels, order = struct.levels, struct.order
    in_edges, out_edges = struct.in_edges, struct.out_edges
    item = problem.cost_array.item

    def full_suffix_walk():
        asg = start.tolist()
        ec = problem.edge_costs(start).tolist()
        finish = [0.0] * n
        for v in order:
            best = 0.0
            for u, e in in_edges[v]:
                cand = finish[u] + ec[e]
                if cand > best:
                    best = cand
            finish[v] = best
        walk_costs = []
        for (a, b), commit in zip(swaps, committed):
            ia, ib = asg[a], asg[b]
            moves = {a: ib, b: ia}
            overrides = {}
            for v, inst in moves.items():
                for w, e in out_edges[v]:
                    wi = moves.get(w)
                    overrides[e] = item(inst, asg[w] if wi is None else wi)
                for u, e in in_edges[v]:
                    if u not in moves:
                        overrides[e] = item(asg[u], inst)
            lo = min(levels[a], levels[b])
            finish2 = finish.copy()  # the O(n) copy the old peek paid
            for v in order:
                if levels[v] < lo:
                    continue
                best = 0.0
                for u, e in in_edges[v]:
                    c = overrides.get(e)
                    cand = finish2[u] + (ec[e] if c is None else c)
                    if cand > best:
                        best = cand
                finish2[v] = best
            walk_costs.append(max(finish2))  # ... and the O(n) max
            if commit:
                asg[a], asg[b] = ib, ia
                for e, c in overrides.items():
                    ec[e] = c
                finish = finish2
        return walk_costs

    def window_walk():
        evaluator = problem.delta_evaluator(start, Objective.LONGEST_PATH)
        walk_costs = []
        for (a, b), commit in zip(swaps, committed):
            walk_costs.append(evaluator.swap_cost(a, b))
            if commit:
                evaluator.apply_swap(a, b)
        return walk_costs

    full_s, full_costs = _best_of(3, full_suffix_walk)
    delta_s, delta_costs = _best_of(3, window_walk)

    assert full_costs == delta_costs, \
        "window-local peek disagrees with the full-suffix re-relaxation"
    return graph, full_s, delta_s, full_s / delta_s


def _block_peek_walk(problem, objective, n, block, seed):
    """(loop_s, batch_s, speedup) for block-scored swap peeks."""
    move_rng = np.random.default_rng(seed)
    start = problem.random_assignments(1, move_rng)[0]
    num_moves = min(NUM_MOVES, 4096)
    swaps = [tuple(int(x) for x in move_rng.choice(n, size=2, replace=False))
             for _ in range(num_moves)]
    batches = [
        MoveBatch.from_moves([("swap", a, b) for a, b in swaps[i:i + block]])
        for i in range(0, num_moves, block)
    ]

    def per_move_loop():
        evaluator = problem.delta_evaluator(start, objective)
        return np.asarray([evaluator.swap_cost(a, b) for a, b in swaps])

    def batched():
        evaluator = problem.delta_evaluator(start, objective)
        return np.concatenate(
            [evaluator.peek_many(batch) for batch in batches])

    loop_s, loop_costs = _best_of(3, per_move_loop)
    batch_s, batch_costs = _best_of(3, batched)
    assert np.array_equal(loop_costs, batch_costs), \
        "batched move peeks disagree with the per-move loop"
    return loop_s, batch_s, loop_s / batch_s


def bench_neighborhood_batch(block=64):
    """Block-scored move peeks versus the per-move peek loop.

    The tracked comparison (``neighborhood_batch``) is the search solvers'
    hot loop before and after the vectorized neighborhood kernels: scoring
    candidate swap moves one ``swap_cost`` call at a time versus scoring
    the same moves in solver-sized blocks through
    ``DeltaEvaluator.peek_many``, longest link at paper scale — the regime
    the fully vectorized gather kernel targets.  The longest-path variant
    on the deep layered DAG is recorded as an informational ratio
    (``neighborhood_batch_lp``, no floor): the serial peek there is
    already window-local, so batching amortises less.  Both paths must
    produce bit-identical cost arrays.

    Returns ``(ll_tuple, lp_tuple, pool)`` where each tuple is
    ``(graph, loop_s, batch_s, speedup)``; ``pool`` is an informational
    ``(serial_s, pool_s, ratio)`` for routing one large batch through the
    thread pool (``workers="auto"``), or ``None`` on single-CPU hosts
    where the route is reported as skipped.
    """
    ll_graph, ll_costs_matrix = build_problem(Objective.LONGEST_LINK)
    ll_problem = compile_problem(ll_graph, ll_costs_matrix)
    loop_s, batch_s, speedup = _block_peek_walk(
        ll_problem, Objective.LONGEST_LINK, NUM_NODES, block, SEED + 22)
    ll = (ll_graph, loop_s, batch_s, speedup)

    lp_graph = _layered_dag()
    n = lp_graph.num_nodes
    rng = np.random.default_rng(SEED + 21)
    matrix = rng.uniform(0.2, 1.4, size=(n + 10, n + 10))
    np.fill_diagonal(matrix, 0.0)
    lp_problem = compile_problem(
        lp_graph, CostMatrix(list(range(n + 10)), matrix))
    loop_s, batch_s, speedup = _block_peek_walk(
        lp_problem, Objective.LONGEST_PATH, n, block, SEED + 23)
    lp = (lp_graph, loop_s, batch_s, speedup)

    pool = None
    if available_workers() >= 2:
        move_rng = np.random.default_rng(SEED + 24)
        start = ll_problem.random_assignments(1, move_rng)[0]
        big = MoveBatch.from_moves([
            ("swap",) + tuple(int(x) for x in
                              move_rng.choice(NUM_NODES, size=2,
                                              replace=False))
            for _ in range(min(NUM_MOVES, 4096))
        ])
        evaluator = ll_problem.delta_evaluator(start, Objective.LONGEST_LINK)
        serial_s, serial_costs = _best_of(
            3, lambda: evaluator.peek_many(big))
        pool_s, pool_costs = _best_of(
            3, lambda: evaluator.peek_many(big, workers="auto"))
        assert np.array_equal(serial_costs, pool_costs), \
            "pool-routed move peeks disagree with the serial kernel"
        pool = (serial_s, pool_s, serial_s / pool_s)
    return ll, lp, pool


def bench_cp_bounds(repeats=5):
    """CP labeling bounds: engine index arrays versus the dict-walking oracle.

    Returns ``(domains_ref_s, domains_vec_s, lb_ref_s, lb_vec_s)`` measured
    at the paper scale (n=100 nodes, m=110 instances, a mid-range cost
    threshold) — the computation every threshold iteration of the CP solver
    repeats.
    """
    graph, costs = build_problem(Objective.LONGEST_LINK)
    problem = compile_problem(graph, costs)
    matrix = costs.as_array()
    off_diagonal = matrix[~np.eye(NUM_INSTANCES, dtype=bool)]
    threshold = float(np.quantile(off_diagonal, 0.6))
    allowed = problem.threshold_adjacency(threshold)

    ref_s, reference = _best_of(
        repeats, lambda: compatibility_domains_reference(graph, allowed))
    vec_s, vectorized = _best_of(
        repeats, lambda: compatibility_domains(graph, allowed, problem=problem))
    assert vectorized == reference, "vectorized domains disagree with oracle"

    lb_ref_s, reference_lb = _best_of(
        repeats, lambda: assignment_cost_lower_bounds_reference(graph, matrix))

    # Fresh (uncached) compilations built outside the timed region, one per
    # repeat, so each timed call computes the bounds from cold caches
    # without poking private CompiledProblem attributes.
    fresh_problems = [CompiledProblem(graph, costs) for _ in range(repeats)]

    def engine_lb():
        return fresh_problems.pop().assignment_cost_lower_bounds()

    lb_vec_s, vectorized_lb = _best_of(repeats, engine_lb)
    for node in graph.nodes:
        assert tuple(vectorized_lb[problem.node_idx(node)]) == reference_lb[node], \
            "vectorized assignment bounds disagree with oracle"
    return ref_s, vec_s, lb_ref_s, lb_vec_s


def bench_constrained_solve(repeats=3):
    """Feasible candidate generation: native mask sampling vs repair.

    Constraint-aware solvers draw feasible candidates directly from the
    compiled allowed mask; before the lowering, every candidate was drawn
    constraint-blind and pushed through the matching-based
    ``PlacementConstraints.repair``.  This times both ways of producing
    ``NUM_CONSTRAINED`` feasible plans on the tracked n=100 instance under
    a mixed pin + forbidden constraint set, asserting every plan on both
    paths is actually feasible.
    """
    graph, costs = build_problem(Objective.LONGEST_LINK)
    rng = np.random.default_rng(SEED + 4)
    pinned = {0: 104, 7: 9}
    forbidden = {
        int(node): set(int(x) for x in rng.choice(NUM_INSTANCES, size=30,
                                                  replace=False)) - {104, 9}
        for node in rng.choice(NUM_NODES, size=12, replace=False)
        if int(node) not in pinned
    }
    constraints = PlacementConstraints(pinned=pinned, forbidden=forbidden)
    problem = DeploymentProblem(graph, costs, constraints=constraints)
    engine = problem.compiled()
    view = problem.compiled_constraints()
    instance_ids = list(costs.instance_ids)

    def native_path():
        assignments = view.random_assignments(
            NUM_CONSTRAINED, np.random.default_rng(SEED + 5))
        return engine.evaluate_batch(assignments, Objective.LONGEST_LINK), \
            assignments

    def repair_path():
        sample_rng = np.random.default_rng(SEED + 5)
        plans = []
        for _ in range(NUM_CONSTRAINED):
            plan = DeploymentPlan.random(graph.nodes, instance_ids, sample_rng)
            if not constraints.satisfied_by(plan):
                plan = constraints.repair(plan, instance_ids)
            plans.append(plan)
        return engine.evaluate_plans(plans, Objective.LONGEST_LINK), plans

    native_s, (native_costs, assignments) = _best_of(repeats, native_path)
    repair_s, (repair_costs, plans) = _best_of(repeats, repair_path)

    for assignment in assignments[:32]:
        assert view.satisfied(assignment), "native sample violates constraints"
    for plan in plans[:32]:
        assert constraints.satisfied_by(plan), "repaired plan violates constraints"
    return repair_s, native_s, repair_s / native_s


def _drifted_costs(costs, rng, sigma=0.02):
    """A copy of ``costs`` with per-link lognormal drift of scale ``sigma``."""
    matrix = costs.as_array()
    m = matrix.shape[0]
    off_diagonal = ~np.eye(m, dtype=bool)
    matrix[off_diagonal] *= rng.lognormal(0.0, sigma, size=(m, m))[off_diagonal]
    return CostMatrix(list(costs.instance_ids), matrix)


def bench_cost_refresh(repeats=5):
    """(recompile_s, refresh_s, speedup) for adopting a cost revision.

    The live pipeline's hot path: a drifted cost matrix arrives and the
    engine must serve it.  The baseline lowers a fresh ``CompiledProblem``
    per revision; ``refresh_costs`` swaps the dense cost array in place and
    keeps every graph-side index array and level group.  Both paths are
    asserted bit-identical on a batch of random plans after every
    revision.
    """
    graph, costs = build_problem(Objective.LONGEST_LINK)
    rng = np.random.default_rng(SEED + 6)
    revisions = [_drifted_costs(costs, rng) for _ in range(repeats)]
    probe = CompiledProblem(graph, costs).random_assignments(64, SEED + 6)

    def recompile_path(revision):
        return CompiledProblem(graph, revision)

    def refresh_path(problem, revision):
        return problem.refresh_costs(revision)

    recompile_s = refresh_s = float("inf")
    live = CompiledProblem(graph, costs)
    for revision in revisions:
        start = time.perf_counter()
        fresh = recompile_path(revision)
        recompile_s = min(recompile_s, time.perf_counter() - start)
        start = time.perf_counter()
        refreshed = refresh_path(live, revision)
        refresh_s = min(refresh_s, time.perf_counter() - start)
        expected = fresh.evaluate_batch(probe, Objective.LONGEST_LINK)
        refreshed_costs = refreshed.evaluate_batch(probe, Objective.LONGEST_LINK)
        assert np.array_equal(expected, refreshed_costs), \
            "refreshed engine disagrees with a from-scratch compile"
    return recompile_s, refresh_s, recompile_s / refresh_s


def bench_warm_resolve(repeats=2):
    """(cold_s, warm_s, speedup) for re-solving after a small cost drift.

    The tracked drift scenario: the n=100 instance is solved once, every
    link drifts by ~1 % (lognormal, the measurement-noise scale the watch
    loop sees between windows), and the revised problem is re-solved cold
    (fresh search) versus warm (started from the incumbent plan, stopping
    as soon as it matches the cold solve's cost).  The warm re-solve must
    reach an equal-or-better cost — asserted below — in a fraction of the
    time.  Both searches are seeded and therefore deterministic, so the
    best-of-``repeats`` timing only suppresses scheduler noise.
    """
    graph, costs = build_problem(Objective.LONGEST_LINK)
    problem = DeploymentProblem(graph, costs)
    budget = SearchBudget(max_iterations=6000)
    incumbent = SwapLocalSearch(restarts=1, seed=SEED).solve(
        problem, budget=budget)

    rng = np.random.default_rng(SEED + 7)
    revised = problem.revise(costs=_drifted_costs(costs, rng, sigma=0.01))
    revised.compiled()  # both paths measure search time, not compilation

    cold_s, cold = _best_of(repeats, lambda: SwapLocalSearch(
        restarts=1, seed=SEED + 1).solve(revised, budget=budget))

    warm_budget = SearchBudget(max_iterations=budget.max_iterations,
                               target_cost=cold.cost)
    warm_s, warm = _best_of(repeats, lambda: SwapLocalSearch(
        restarts=1, seed=SEED + 1).solve(revised, budget=warm_budget,
                                         initial_plan=incumbent.plan))

    assert warm.cost <= cold.cost, \
        "warm re-solve ended worse than the cold solve"
    return cold_s, warm_s, cold_s / warm_s


def bench_result_store(repeats=5):
    """(solve_s, lookup_s, speedup) for serving an already-solved revision.

    The watch loop's restart / sibling-process scenario: a revision whose
    fingerprint is already in the durable store should be served by one
    indexed SQLite lookup plus a JSON decode instead of a solver run.  The
    baseline is the seeded local-search solve of the tracked n=100
    instance; the store path is ``SQLiteResultCache.get`` against a
    WAL-mode database holding that result.  The served plan is asserted
    identical to the solver's, so the speedup never hides a wrong answer.
    """
    graph, costs = build_problem(Objective.LONGEST_LINK)
    problem = DeploymentProblem(graph, costs)
    budget = SearchBudget(max_iterations=6000)
    solve_s, result = _best_of(1, lambda: SwapLocalSearch(
        restarts=1, seed=SEED + 8).solve(problem, budget=budget))

    with tempfile.TemporaryDirectory() as scratch:
        store = SQLiteResultCache(pathlib.Path(scratch) / "bench-store.db")
        fingerprint = problem.fingerprint()
        store.put(fingerprint, "local-search", result)
        lookup_s, served = _best_of(
            repeats, lambda: store.get(fingerprint, "local-search"))
        store.close()

    assert served is not None and served.cost == result.cost, \
        "store-served result disagrees with the solver run"
    assert served.plan.as_dict() == result.plan.as_dict()
    return solve_s, lookup_s, solve_s / lookup_s


def bench_serve_dedup(repeats=5):
    """(cold_s, served_s, speedup) for the service's dedup submit path.

    The serving layer's promise: a repeated request costs one store
    lookup plus plan validation, not a solver run.  Both sides go
    through the full :meth:`AdvisorApp.submit_solve` path — the cold
    request is queued, dequeued by a worker, solved and written back;
    the repeat short-circuits at submit time.  The served plan is
    asserted identical to the solver's, so the speedup never hides a
    wrong answer.
    """
    graph, costs = build_problem(Objective.LONGEST_LINK)
    problem = DeploymentProblem(graph, costs)
    request = SolveRequest(problem=problem, solver="local-search",
                           config={"seed": SEED + 8, "restarts": 1},
                           budget=SearchBudget(max_iterations=6000))

    with tempfile.TemporaryDirectory() as scratch:
        app = create_app(store=pathlib.Path(scratch) / "serve-bench.db",
                         config=ServeConfig(workers=1))
        try:
            def submit():
                job, source = app.submit_solve(request, "bench",
                                               PRIORITY_INTERACTIVE)
                assert job.wait(600.0) and job.error is None, job.error
                return source, job.response

            cold_s, (source, cold_response) = _best_of(1, submit)
            assert source == "solver"
            served_s, (source, served_response) = _best_of(repeats, submit)
            assert source == "store"
            assert app.metrics.solver_invocations == 1
        finally:
            app.close(timeout=30.0)

    cold_result = cold_response.result
    served_result = served_response.result
    assert served_result.cost == cold_result.cost, \
        "store-served response disagrees with the solver run"
    assert served_result.plan.as_dict() == cold_result.plan.as_dict()
    return cold_s, served_s, cold_s / served_s


def bench_mip_rounding(repeats=3):
    """(scalar_s, batch_s, speedup) for scoring LP-candidate roundings.

    Mimics what branch and bound does with every LP solution: extract an
    injective assignment, score it, and keep the best incumbent.  The scalar
    path builds the full solution vector and evaluates it against the model;
    the engine path scores the whole candidate batch at once and only
    realises the winning vector.
    """
    rng = np.random.default_rng(SEED + 3)
    matrix = rng.uniform(0.2, 1.4, size=(MIP_INSTANCES, MIP_INSTANCES))
    np.fill_diagonal(matrix, 0.0)
    costs = CostMatrix(list(range(MIP_INSTANCES)), matrix)
    graph = CommunicationGraph.ring(MIP_NODES)
    encoding = LLNDPEncoding(graph, costs)
    problem = compile_problem(graph, costs)
    rounder = DeploymentRounder(encoding, problem, Objective.LONGEST_LINK)
    candidates = [rng.random(encoding.model.num_variables)
                  for _ in range(NUM_ROUNDINGS)]

    def scalar_path():
        best_cost, best_vector = np.inf, None
        for values in candidates:
            rounded = encoding.rounding_callback(values)
            if rounded is None or not encoding.model.is_feasible(rounded):
                continue
            cost = encoding.model.evaluate_objective(rounded)
            if cost < best_cost - 1e-12:
                best_cost, best_vector = cost, rounded
        return best_cost, best_vector

    def batch_path():
        costs_array, assignments = rounder.round_batch(candidates)
        best = int(np.argmin(costs_array))
        return float(costs_array[best]), rounder.realize(assignments[best])

    scalar_s, (scalar_cost, scalar_vector) = _best_of(repeats, scalar_path)
    batch_s, (batch_cost, batch_vector) = _best_of(repeats, batch_path)

    assert scalar_cost == batch_cost, "batch rounding disagrees with oracle"
    assert np.array_equal(scalar_vector, batch_vector)
    return scalar_s, batch_s, scalar_s / batch_s


def build_report():
    """Return ``(report_text, metrics, skipped)`` for the benchmark suite.

    ``skipped`` maps threshold keys that could not be measured on this host
    (e.g. ``parallel_batch`` on a single-CPU machine) to a short reason;
    they are emitted as ``skipped <key> <reason>`` lines that
    ``check_thresholds.py`` honours instead of failing on a missing key.
    """
    metrics = {}
    skipped = {}
    lines = [
        f"Evaluation engine benchmark — n={NUM_NODES} nodes, "
        f"m={NUM_INSTANCES} instances, {NUM_PLANS} plans / {NUM_MOVES} moves",
        "-" * 72,
    ]
    for objective in (Objective.LONGEST_LINK, Objective.LONGEST_PATH):
        graph, loop_s, batch_s, speedup = bench_batch(objective)
        metrics[f"batch_{objective.value}"] = speedup
        lines.append(
            f"batch {objective.value:<13} ({graph.num_edges:>4} edges): "
            f"looped {loop_s:7.3f} s   batch {batch_s:7.3f} s   "
            f"speedup {speedup:7.1f}x"
        )
    full_s, delta_s, speedup = bench_deltas()
    metrics["delta_longest_link"] = speedup
    lines.append(
        "delta longest_link  (swap moves):  "
        f"full   {full_s:7.3f} s   delta {delta_s:7.3f} s   "
        f"speedup {speedup:7.1f}x"
    )

    lp_graph, full_s, delta_s, speedup = bench_incremental_lp()
    metrics["incremental_longest_path"] = speedup
    lines.append(
        f"incremental longest_path (n={lp_graph.num_nodes}, "
        f"{lp_graph.num_edges} edges, applied swaps): "
        f"full   {full_s:7.3f} s   delta {delta_s:7.3f} s   "
        f"speedup {speedup:7.1f}x"
    )

    serial_s, parallel_s, speedup, workers = bench_parallel_batch()
    if speedup is None:
        skipped["parallel_batch"] = "single-core-host"
        lines.append(
            f"parallel batch longest_path: skipped (host exposes "
            f"{workers} CPU; thread chunking needs >= 2)"
        )
    else:
        metrics["parallel_batch"] = speedup
        lines.append(
            f"parallel batch longest_path ({workers} workers, "
            f"{NUM_PLANS} plans): "
            f"serial {serial_s:7.3f} s   parallel {parallel_s:7.3f} s   "
            f"speedup {speedup:7.1f}x"
        )

    thread_s, procs_s, speedup, workers, skip_reason = bench_process_pool_batch()
    if speedup is None:
        skipped["process_pool_batch"] = skip_reason
        lines.append(
            f"process pool batch longest_path: skipped ({skip_reason}; "
            f"host exposes {workers} CPU)"
        )
    else:
        metrics["process_pool_batch"] = speedup
        lines.append(
            f"process pool batch longest_path ({workers} workers, "
            f"{NUM_PLANS} plans): "
            f"threads {thread_s:7.3f} s   procs {procs_s:7.3f} s   "
            f"speedup {speedup:7.1f}x"
        )

    peek_graph, full_s, delta_s, speedup = bench_peeked_lp()
    metrics["peeked_longest_path"] = speedup
    lines.append(
        f"peeked longest_path (n={peek_graph.num_nodes}, "
        f"{peek_graph.num_edges} edges, mostly-rejected swaps): "
        f"full-suffix {full_s:7.3f} s   window {delta_s:7.3f} s   "
        f"speedup {speedup:7.1f}x"
    )

    ll, lp, pool = bench_neighborhood_batch()
    nb_graph, loop_s, batch_s, speedup = ll
    metrics["neighborhood_batch"] = speedup
    lines.append(
        f"neighborhood batch peeks longest_link (n={nb_graph.num_nodes}, "
        f"{nb_graph.num_edges} edges, blocks of 64): "
        f"per-move {loop_s:7.3f} s   batch {batch_s:7.3f} s   "
        f"speedup {speedup:7.1f}x"
    )
    nb_graph, loop_s, batch_s, speedup = lp
    metrics["neighborhood_batch_lp"] = speedup
    lines.append(
        f"neighborhood batch peeks longest_path (n={nb_graph.num_nodes}, "
        f"{nb_graph.num_edges} edges, blocks of 64): "
        f"per-move {loop_s:7.3f} s   batch {batch_s:7.3f} s   "
        f"speedup {speedup:7.1f}x"
    )
    if pool is None:
        skipped["neighborhood_batch_pool"] = "single-core-host"
        lines.append(
            "neighborhood batch pool route: skipped (host exposes "
            "1 CPU; pool routing needs >= 2)"
        )
    else:
        serial_s, pool_s, ratio = pool
        metrics["neighborhood_batch_pool"] = ratio
        lines.append(
            f"neighborhood batch pool route (one {min(NUM_MOVES, 4096)}-move "
            f"batch, workers=auto): "
            f"serial {serial_s:7.3f} s   pool {pool_s:7.3f} s   "
            f"speedup {ratio:7.1f}x"
        )

    domains_ref, domains_vec, lb_ref, lb_vec = bench_cp_bounds()
    metrics["cp_compatibility_domains"] = domains_ref / domains_vec
    metrics["cp_assignment_bounds"] = lb_ref / lb_vec
    lines.append(
        f"CP compatibility domains (n={NUM_NODES}):  "
        f"oracle {domains_ref * 1e3:7.2f} ms  engine {domains_vec * 1e3:7.2f} ms  "
        f"speedup {metrics['cp_compatibility_domains']:7.1f}x"
    )
    lines.append(
        f"CP assignment cost bounds (n={NUM_NODES}): "
        f"oracle {lb_ref * 1e3:7.2f} ms  engine {lb_vec * 1e3:7.2f} ms  "
        f"speedup {metrics['cp_assignment_bounds']:7.1f}x"
    )

    repair_s, native_s, speedup = bench_constrained_solve()
    metrics["constrained_sampling"] = speedup
    lines.append(
        f"constrained feasible sampling (n={NUM_NODES}, "
        f"{NUM_CONSTRAINED} plans): "
        f"repair {repair_s * 1e3:7.1f} ms  native {native_s * 1e3:7.1f} ms  "
        f"speedup {speedup:7.1f}x"
    )

    recompile_s, refresh_s, speedup = bench_cost_refresh()
    metrics["cost_refresh"] = speedup
    lines.append(
        f"cost refresh (n={NUM_NODES}, m={NUM_INSTANCES}): "
        f"recompile {recompile_s * 1e3:7.2f} ms  refresh {refresh_s * 1e3:7.2f} ms  "
        f"speedup {speedup:7.1f}x"
    )

    cold_s, warm_s, speedup = bench_warm_resolve()
    metrics["warm_resolve"] = speedup
    lines.append(
        f"warm re-solve after 1% drift (n={NUM_NODES}): "
        f"cold   {cold_s * 1e3:7.1f} ms  warm  {warm_s * 1e3:7.1f} ms  "
        f"speedup {speedup:7.1f}x"
    )

    solve_s, lookup_s, speedup = bench_result_store()
    metrics["result_store"] = speedup
    lines.append(
        f"result store lookup (n={NUM_NODES}): "
        f"solve  {solve_s * 1e3:7.1f} ms  store {lookup_s * 1e3:7.2f} ms  "
        f"speedup {speedup:7.1f}x"
    )

    cold_s, served_s, speedup = bench_serve_dedup()
    metrics["serve_dedup"] = speedup
    lines.append(
        f"service dedup submit path (n={NUM_NODES}): "
        f"cold   {cold_s * 1e3:7.1f} ms  served {served_s * 1e3:6.2f} ms  "
        f"speedup {speedup:7.1f}x"
    )

    scalar_s, batch_s, speedup = bench_mip_rounding()
    metrics["mip_rounding"] = speedup
    lines.append(
        f"MIP incumbent rounding (n={MIP_NODES}, m={MIP_INSTANCES}, "
        f"{NUM_ROUNDINGS} candidates): "
        f"scalar {scalar_s * 1e3:7.1f} ms  batch {batch_s * 1e3:7.1f} ms  "
        f"speedup {speedup:7.1f}x"
    )

    lines.append("")
    lines.append("machine-readable speedups "
                 "(parsed by benchmarks/check_thresholds.py):")
    for key in sorted(metrics):
        lines.append(f"speedup {key} {metrics[key]:.1f}")
    for key in sorted(skipped):
        lines.append(f"skipped {key} {skipped[key]}")
    return "\n".join(lines), metrics, skipped


def load_thresholds():
    """The committed speedup floors the CI bench job enforces."""
    return json.loads(THRESHOLDS_PATH.read_text())


def test_evaluation_engine_speedup(emit):
    report, metrics, skipped = build_report()
    emit("evaluation_engine", report)
    # Acceptance bar: every tracked speedup must clear its committed floor
    # (the same check CI applies through benchmarks/check_thresholds.py);
    # keys the host cannot measure (see build_report) are exempt.
    failures = {
        key: (metrics.get(key), floor)
        for key, floor in load_thresholds().items()
        if key not in skipped and metrics.get(key, 0.0) < floor
    }
    assert not failures, f"speedup regressions: {failures}"


if __name__ == "__main__":
    report_text, _, _ = build_report()
    print(report_text)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(report_text + "\n")
    print(f"\nwritten to {RESULTS_PATH}")
