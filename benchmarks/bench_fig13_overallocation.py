"""Figure 13: effect of the over-allocation ratio on time-to-solution.

The paper allocates 150 instances for a 100-node behavioral simulation and
varies how many of them ClouDiA may choose from (0–50 % over-allocation).
Even 0 % already helps (a better injection of nodes onto the same
instances); the first 10 % of extra instances brings the largest additional
improvement, with diminishing returns beyond.  The benchmark reproduces the
sweep with a 25-node mesh and up to 50 % over-allocation.
"""

from repro.core import DeploymentProblem, Objective
from repro.analysis import format_table
from repro.solvers import CPLongestLinkSolver, SearchBudget, default_plan
from repro.workloads import BehavioralSimulationWorkload, compare_deployments

from conftest import allocate_ids, make_cloud

OVER_ALLOCATION_RATIOS = [0.0, 0.1, 0.2, 0.3, 0.5]


def build_figure():
    workload = BehavioralSimulationWorkload(rows=5, cols=5, ticks=80)
    graph = workload.communication_graph()
    cloud = make_cloud("ec2", seed=13)
    max_instances = int(round(graph.num_nodes * 1.5))
    all_ids = allocate_ids(cloud, max_instances)
    costs_full = cloud.true_cost_matrix(all_ids)

    default = default_plan(graph, costs_full.submatrix(all_ids[: graph.num_nodes]))
    default_run = workload.evaluate(default, cloud, seed=99)

    rows = []
    for ratio in OVER_ALLOCATION_RATIOS:
        usable = all_ids[: int(round((1.0 + ratio) * graph.num_nodes))]
        costs = costs_full.submatrix(usable)
        result = CPLongestLinkSolver(seed=0).solve(
            DeploymentProblem(graph, costs, objective=Objective.LONGEST_LINK),
            budget=SearchBudget.seconds(4.0))
        comparison = compare_deployments(workload, default, result.plan, cloud,
                                         seed=99)
        rows.append((ratio, default_run.value, comparison.optimized.value,
                     comparison.reduction))
    return rows


def test_fig13_overallocation(benchmark, emit):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    table = format_table(
        ["over-allocation ratio", "default time [ms]", "ClouDiA time [ms]",
         "reduction [%]"],
        [(f"{ratio:.0%}", baseline, optimized, 100.0 * reduction)
         for ratio, baseline, optimized, reduction in rows],
        title="Figure 13 — time-to-solution vs. over-allocation ratio "
              "(behavioral simulation; paper: 16 % at 0 %, largest jump from "
              "the first 10 % of extra instances, diminishing returns after)",
    )
    emit("fig13_overallocation", table)

    reductions = {ratio: reduction for ratio, _, _, reduction in rows}
    # Even with no over-allocation, re-mapping the nodes already helps.
    assert reductions[0.0] > 0.0
    # Extra instances help further…
    assert max(reductions[r] for r in (0.1, 0.2, 0.3, 0.5)) >= reductions[0.0]
    # …and the largest configuration is no worse than the smallest.
    assert reductions[0.5] >= reductions[0.0] - 0.05
