"""Figure 15: lightweight approaches versus MIP for the Longest Path problem.

The paper's surprising finding: random search given the same wall-clock time
as the MIP solver (R2) finds deployments about 5 % *better* than MIP,
because the LPNDP objective guides the exact search poorly; G1/G2 (designed
for longest link) are still comparable to R1.  The benchmark reproduces the
comparison over 3 allocations of 15 instances with a depth-2 ternary
aggregation tree.
"""

import numpy as np

from repro.core import CommunicationGraph, DeploymentProblem, Objective
from repro.analysis import format_table
from repro.solvers import (
    GreedyG1,
    GreedyG2,
    MIPLongestPathSolver,
    RandomSearch,
    SearchBudget,
)

from conftest import allocate_ids, make_cloud

ALLOCATION_SEEDS = [41, 42, 43]
MIP_TIME_S = 8.0


def build_figure():
    graph = CommunicationGraph.aggregation_tree(branching=3, depth=2)
    per_solver = {"G1": [], "G2": [], "R1": [], "R2": [], "MIP": []}
    for seed in ALLOCATION_SEEDS:
        cloud = make_cloud("ec2", seed=seed)
        ids = allocate_ids(cloud, 15)
        costs = cloud.true_cost_matrix(ids)
        problem = DeploymentProblem(graph, costs,
                                    objective=Objective.LONGEST_PATH)
        per_solver["G1"].append(GreedyG1().solve(problem).cost)
        per_solver["G2"].append(GreedyG2().solve(problem).cost)
        per_solver["R1"].append(
            RandomSearch.r1(num_samples=1000, seed=seed).solve(problem).cost)
        per_solver["R2"].append(
            RandomSearch.r2(seed=seed).solve(
                problem, budget=SearchBudget.seconds(MIP_TIME_S)).cost)
        per_solver["MIP"].append(
            MIPLongestPathSolver(backend="bnb").solve(
                problem, budget=SearchBudget.seconds(MIP_TIME_S)).cost)
    return per_solver


def test_fig15_lightweight_lpndp(benchmark, emit):
    per_solver = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    means = {name: float(np.mean(values)) for name, values in per_solver.items()}
    table = format_table(
        ["approach", "mean longest-path latency [ms]", "vs. MIP"],
        [(name, means[name], f"{means[name] / means['MIP']:.2f}x")
         for name in ("G1", "G2", "R1", "R2", "MIP")],
        title="Figure 15 — lightweight approaches vs. MIP for LPNDP "
              "(paper: R2 finds solutions ~5 % better than MIP)",
    )
    emit("fig15_lightweight_lpndp", table)

    # The qualitative claim: time-bounded random search is at least
    # competitive with the MIP solver on LPNDP.
    assert means["R2"] <= means["MIP"] * 1.10
    # And greedy approaches remain usable despite being designed for LLNDP.
    assert means["G2"] <= means["G1"] * 1.25
