"""Figure 12: overall time reduction achieved by ClouDiA (the headline result).

The paper deploys three workloads over five independent EC2 allocations with
10 % over-allocation and reports a 15–55 % reduction in time-to-solution or
response time, with the aggregation query benefiting most and the key-value
store least.  The benchmark reproduces the experiment over three simulated
allocations at reduced scale.
"""

import numpy as np

from repro.core import Objective
from repro.analysis import format_table
from repro.solvers import RandomSearch
from repro.workloads import (
    AggregationQueryWorkload,
    BehavioralSimulationWorkload,
    KeyValueStoreWorkload,
)

from conftest import make_cloud, optimize_and_compare

ALLOCATION_SEEDS = [21, 22, 23]


def build_figure():
    results = []
    for allocation_index, seed in enumerate(ALLOCATION_SEEDS, start=1):
        cases = [
            ("behavioral simulation",
             BehavioralSimulationWorkload(rows=5, cols=5, ticks=80),
             Objective.LONGEST_LINK, None),
            ("aggregation query",
             AggregationQueryWorkload(branching=3, depth=2, num_queries=150),
             Objective.LONGEST_PATH, RandomSearch.r2(seed=seed)),
            ("key-value store",
             KeyValueStoreWorkload(num_frontends=5, num_storage=15,
                                   num_queries=300, keys_per_query=7),
             Objective.LONGEST_LINK, None),
        ]
        for workload_name, workload, objective, solver in cases:
            cloud = make_cloud("ec2", seed=seed)
            report, comparison = optimize_and_compare(
                cloud, workload, objective, solver=solver,
                over_allocation_ratio=0.10, solver_time_limit_s=4.0,
                seed=seed, eval_seed=seed + 50,
            )
            results.append((allocation_index, workload_name,
                            comparison.baseline.value, comparison.optimized.value,
                            comparison.reduction, report.predicted_improvement))
    return results


def test_fig12_overall_effectiveness(benchmark, emit):
    results = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    table = format_table(
        ["allocation", "workload", "default [ms]", "ClouDiA [ms]",
         "reduction [%]", "predicted improvement [%]"],
        [
            (allocation, workload, baseline, optimized,
             100.0 * reduction, 100.0 * predicted)
            for allocation, workload, baseline, optimized, reduction, predicted
            in results
        ],
        title="Figure 12 — reduction of time-to-solution / response time over "
              "independent allocations (paper: 15–55 %, aggregation query "
              "benefits most, key-value store least)",
    )
    by_workload = {}
    for _, workload, _, _, reduction, _ in results:
        by_workload.setdefault(workload, []).append(reduction)
    summary = format_table(
        ["workload", "mean reduction [%]", "min [%]", "max [%]"],
        [
            (workload, 100.0 * float(np.mean(values)),
             100.0 * float(np.min(values)), 100.0 * float(np.max(values)))
            for workload, values in by_workload.items()
        ],
        title="Figure 12 summary",
    )
    emit("fig12_overall_effectiveness", table + "\n\n" + summary)

    reductions = [reduction for *_, reduction, _ in results]
    # Every single run improves, and the average lands in the paper's band.
    assert min(reductions) > 0.0
    assert 0.10 <= float(np.mean(reductions)) <= 0.60
    # The aggregation query workload benefits at least as much as the
    # key-value store on average, as in the paper.
    assert np.mean(by_workload["aggregation query"]) >= \
        np.mean(by_workload["key-value store"]) - 0.05
