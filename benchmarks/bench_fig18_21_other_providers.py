"""Figures 18–21: latency heterogeneity and stability on GCE and Rackspace.

Appendix 3 of the paper repeats the Fig. 1 / Fig. 2 measurements on Google
Compute Engine (50 n1-standard-1 instances) and Rackspace Cloud Server
(50 performance 1-1 instances): both providers show the same qualitative
picture — stable mean latencies with noticeable (if smaller than EC2)
heterogeneity.  One benchmark per provider regenerates both the CDF and the
stability trace.
"""

import numpy as np
import pytest

from repro.analysis import cdf_points, empirical_cdf, format_series, format_table
from repro.cloud import collect_latency_trace, representative_links

from conftest import allocate_ids, make_cloud


def build_provider_figures(profile_name: str, seed: int):
    cloud = make_cloud(profile_name, seed=seed)
    ids = allocate_ids(cloud, 50)
    costs = cloud.true_cost_matrix(ids)
    latencies = costs.link_costs()

    links = representative_links(cloud, count=4, instance_ids=ids[:20])
    trace = collect_latency_trace(cloud, links, duration_hours=60.0,
                                  window_hours=4.0, samples_per_window=120, seed=0)
    return latencies, links, trace


PROVIDERS = [
    ("gce", 18, "Figures 18/19 — Google Compute Engine"),
    ("rackspace", 20, "Figures 20/21 — Rackspace Cloud Server"),
]


@pytest.mark.parametrize("profile_name, seed, title", PROVIDERS,
                         ids=[p[0] for p in PROVIDERS])
def test_fig18_21_other_providers(benchmark, emit, profile_name, seed, title):
    latencies, links, trace = benchmark.pedantic(
        build_provider_figures, args=(profile_name, seed), rounds=1, iterations=1)

    cdf = empirical_cdf(latencies)
    xs, qs = cdf_points(latencies, num_points=15)
    cdf_table = format_series(f"{title}: CDF of mean pairwise latency "
                              "(50 instances)", xs, qs,
                              x_label="mean latency [ms]", y_label="CDF")
    stability_rows = [
        (f"link {index + 1}", float(trace.series(link).mean()),
         trace.stability(link))
        for index, link in enumerate(links)
    ]
    stability_table = format_table(
        ["link", "overall mean [ms]", "coeff. of variation"],
        stability_rows,
        title=f"{title}: mean latency stability over 60 h",
    )
    summary = format_table(
        ["statistic", "value"],
        [
            ("p5 latency [ms]", cdf.quantile(0.05)),
            ("p95 latency [ms]", cdf.quantile(0.95)),
            ("p95 / p5 spread", cdf.quantile(0.95) / cdf.quantile(0.05)),
        ],
        title=f"{title}: heterogeneity summary",
    )
    emit(f"fig18_21_{profile_name}", cdf_table + "\n\n" + stability_table +
         "\n\n" + summary)

    # Heterogeneity exists (smaller than EC2 but present)…
    assert cdf.quantile(0.95) / cdf.quantile(0.05) > 1.2
    # …and mean latencies are stable over time.
    assert all(trace.stability(link) < 0.15 for link in links)
