"""Figure 11: application performance when optimising under different latency metrics.

The paper optimises each workload's deployment using mean latency,
mean-plus-standard-deviation and 99th-percentile link costs, and finds that
mean latency is a robust choice: the alternatives change application
performance only mildly (and p99 tends to hurt).  The benchmark runs the
behavioral simulation and key-value store workloads under each metric and
reports the improvement relative to optimising with the mean.
"""

from repro.core import LatencyMetric, Objective
from repro.analysis import format_table
from repro.workloads import BehavioralSimulationWorkload, KeyValueStoreWorkload

from conftest import make_cloud, optimize_and_compare

METRICS = [
    ("mean", LatencyMetric.MEAN),
    ("mean+SD", LatencyMetric.MEAN_PLUS_STD),
    ("99%", LatencyMetric.P99),
]


def build_figure():
    workloads = [
        ("behavioral simulation",
         lambda: BehavioralSimulationWorkload(rows=4, cols=4, ticks=80),
         Objective.LONGEST_LINK),
        ("key-value store",
         lambda: KeyValueStoreWorkload(num_frontends=4, num_storage=12,
                                       num_queries=250, keys_per_query=6),
         Objective.LONGEST_LINK),
    ]
    rows = {}
    for workload_name, factory, objective in workloads:
        rows[workload_name] = {}
        for metric_name, metric in METRICS:
            cloud = make_cloud("ec2", seed=11)
            workload = factory()
            _, comparison = optimize_and_compare(
                cloud, workload, objective, metric=metric,
                over_allocation_ratio=0.25, solver_time_limit_s=3.0, seed=3,
            )
            rows[workload_name][metric_name] = comparison.reduction
    return rows


def test_fig11_metric_effectiveness(benchmark, emit):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    table_rows = []
    for workload_name, by_metric in rows.items():
        mean_reduction = by_metric["mean"]
        for metric_name, reduction in by_metric.items():
            relative = 100.0 * (reduction - mean_reduction)
            table_rows.append((workload_name, metric_name,
                               100.0 * reduction, f"{relative:+.1f} pp"))
    table = format_table(
        ["workload", "cost metric", "reduction vs default [%]",
         "relative to mean metric"],
        table_rows,
        title="Figure 11 — effect of the latency metric used for optimisation "
              "(paper: mean latency is a robust choice; differences are small)",
    )
    emit("fig11_metric_effectiveness", table)

    for workload_name, by_metric in rows.items():
        # Optimising with the mean always gives a real improvement…
        assert by_metric["mean"] > 0.0
        # …and no alternative metric is dramatically better than the mean.
        for metric_name, reduction in by_metric.items():
            assert reduction <= by_metric["mean"] + 0.25
