"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper: it computes the same
series the figure plots, prints it as a text table (captured by pytest; run
with ``-s`` to see it live) and also writes it to
``benchmarks/results/<figure>.txt`` so the output survives output capturing.
The pytest-benchmark fixture wraps the computation so the harness also
reports how long regenerating each figure takes.

The scales are reduced relative to the paper (tens of instances instead of
100–150, seconds of solver time instead of minutes) so the whole suite runs
in minutes on a laptop; EXPERIMENTS.md discusses how the shapes compare.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import AdvisorConfig, ClouDiA, MeasurementConfig
from repro.cloud import DatacenterTopology, ProviderProfile, SimulatedCloud
from repro.workloads import compare_deployments

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_cloud(profile_name: str = "ec2", seed: int = 0,
               num_pods: int = 6, racks_per_pod: int = 8,
               hosts_per_rack: int = 16) -> SimulatedCloud:
    """A deterministic simulated cloud region for one benchmark."""
    topology = DatacenterTopology(num_pods=num_pods, racks_per_pod=racks_per_pod,
                                  hosts_per_rack=hosts_per_rack, seed=seed)
    return SimulatedCloud(profile=ProviderProfile.by_name(profile_name),
                          topology=topology, seed=seed)


def allocate_ids(cloud: SimulatedCloud, count: int) -> list:
    """Allocate ``count`` instances and return their identifiers in provider order."""
    return [instance.instance_id for instance in cloud.allocate(count)]


def optimize_and_compare(cloud, workload, objective, solver=None,
                         over_allocation_ratio=0.10, solver_time_limit_s=4.0,
                         metric=None, seed=0, eval_seed=100, repetitions=1):
    """Run the full ClouDiA pipeline for a workload and compare against default.

    Returns ``(report, comparison)`` where ``comparison.reduction`` is the
    relative reduction in time-to-solution / response time — the quantity the
    paper's Figs. 11–13 report.  Instances are left running so the default
    deployment can be evaluated, then everything allocated for the workload
    is terminated to keep the cloud reusable across benchmark cases.
    """
    config_kwargs = dict(
        objective=objective,
        over_allocation_ratio=over_allocation_ratio,
        solver_time_limit_s=solver_time_limit_s,
        measurement=MeasurementConfig(target_samples_per_link=6),
        terminate_unused=False,
        seed=seed,
    )
    if solver is not None:
        config_kwargs["solver"] = solver
    if metric is not None:
        config_kwargs["metric"] = metric
    advisor = ClouDiA(cloud, AdvisorConfig(**config_kwargs))
    report = advisor.recommend(workload.communication_graph())
    comparison = compare_deployments(workload, report.default_plan, report.plan,
                                     cloud, seed=eval_seed, repetitions=repetitions)
    cloud.terminate(report.allocated_instances)
    return report, comparison


@pytest.fixture
def emit():
    """Print a figure's data table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(figure_name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{figure_name}.txt").write_text(text + "\n")

    return _emit
