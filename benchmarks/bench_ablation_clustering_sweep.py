"""Ablation A1: sweep of the number of cost clusters for the CP solver.

Sect. 6.3 motivates cost clustering as a trade-off between iteration count
(fewer distinct values, faster convergence) and objective fidelity (coarse
clusters may hide the best deployment).  This ablation sweeps k and records
final cost, number of threshold iterations and time-to-best, quantifying
the design choice the paper settles at k = 20.
"""

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.solvers import CPLongestLinkSolver, SearchBudget

from conftest import allocate_ids, make_cloud

CLUSTER_COUNTS = [3, 5, 10, 20, 40, None]
TIME_LIMIT_S = 6.0


def build_figure():
    cloud = make_cloud("ec2", seed=51)
    ids = allocate_ids(cloud, 28)
    costs = cloud.true_cost_matrix(ids)
    graph = CommunicationGraph.mesh_2d(5, 5)
    rows = []
    for k in CLUSTER_COUNTS:
        result = CPLongestLinkSolver(k_clusters=k, seed=0).solve(
            DeploymentProblem(graph, costs),
            budget=SearchBudget.seconds(TIME_LIMIT_S))
        label = "none" if k is None else str(k)
        time_to_best = result.trace[-1][0] if result.trace else 0.0
        rows.append((label, result.cost, result.iterations, time_to_best,
                     result.optimal))
    return rows


def test_ablation_clustering_sweep(benchmark, emit):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    table = format_table(
        ["k clusters", "final cost [ms]", "threshold iterations",
         "time to best [s]", "proved optimal"],
        rows,
        title="Ablation A1 — cost clustering sweep for the CP solver "
              "(28 instances, 5x5 mesh)",
    )
    emit("ablation_clustering_sweep", table)

    by_k = {label: cost for label, cost, *_ in rows}
    # Very coarse clustering cannot beat fine clustering.
    assert by_k["3"] >= by_k["20"] - 1e-9
    # Moderate clustering stays close to the unclustered solution quality.
    assert by_k["20"] <= by_k["none"] * 1.25 + 1e-9
