"""Ablation A2: why G2 beats G1 — the cost of implicitly added links.

Sect. 4.3.2 explains G1's weakness: the link it explicitly selects is cheap,
but mapping a node also fixes every other edge between that node and
already-placed neighbors, and those implicit links can be expensive.  This
ablation measures, for each allocation, the gap between the cheapest link G1
selects and the final longest link it ends up with, and compares against G2.
"""

import numpy as np

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.core.objectives import worst_link
from repro.solvers import GreedyG1, GreedyG2

from conftest import allocate_ids, make_cloud

ALLOCATION_SEEDS = [61, 62, 63, 64, 65, 66]


def build_figure():
    graph = CommunicationGraph.mesh_2d(4, 5)
    rows = []
    for seed in ALLOCATION_SEEDS:
        cloud = make_cloud("ec2", seed=seed)
        ids = allocate_ids(cloud, 22)
        costs = cloud.true_cost_matrix(ids)
        problem = DeploymentProblem(graph, costs)
        g1 = GreedyG1().solve(problem)
        g2 = GreedyG2().solve(problem)
        # The cheapest links in the allocation: what G1 "thinks" it is picking.
        cheapest_link = costs.min_cost()
        g1_worst = worst_link(g1.plan, graph, costs).cost
        g2_worst = worst_link(g2.plan, graph, costs).cost
        rows.append((seed, cheapest_link, g1_worst, g2_worst,
                     g1_worst / cheapest_link, g2_worst / cheapest_link))
    return rows


def test_ablation_greedy_implicit_links(benchmark, emit):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    table = format_table(
        ["allocation seed", "cheapest link [ms]", "G1 longest link [ms]",
         "G2 longest link [ms]", "G1 blow-up", "G2 blow-up"],
        rows,
        title="Ablation A2 — implicit-link penalty of G1 vs. G2 "
              "(paper: implicit links make G1's final cost much higher than "
              "the links it explicitly selects)",
    )
    emit("ablation_greedy_implicit_links", table)

    g1_blowups = [row[4] for row in rows]
    g2_blowups = [row[5] for row in rows]
    # G1's final longest link is far above the cheap links it greedily picks…
    assert float(np.mean(g1_blowups)) > 1.5
    # …and G2's implicit-link awareness reduces that blow-up on average.
    assert float(np.mean(g2_blowups)) <= float(np.mean(g1_blowups)) + 1e-9
