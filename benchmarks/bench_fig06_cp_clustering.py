"""Figure 6: CP convergence for LLNDP with different numbers of cost clusters.

The paper solves a 100-instance / 90-node 2-D mesh instance with the CP
formulation and k ∈ {5, 20, no clustering}.  k = 20 converges fastest to the
best deployment; k = 5 converges quickly but plateaus at a worse cost because
the solver cannot discriminate inside a cluster.  The benchmark reproduces
the experiment at 40 instances / 36 nodes with a seconds-scale budget.
"""

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.solvers import CPLongestLinkSolver, SearchBudget

from conftest import allocate_ids, make_cloud

TIME_LIMIT_S = 8.0
CONFIGURATIONS = [("k=5", 5), ("k=20", 20), ("no clustering", None)]


def build_figure():
    cloud = make_cloud("ec2", seed=6)
    ids = allocate_ids(cloud, 40)
    costs = cloud.true_cost_matrix(ids)
    graph = CommunicationGraph.mesh_2d(6, 6)
    results = {}
    problem = DeploymentProblem(graph, costs)
    for label, k in CONFIGURATIONS:
        solver = CPLongestLinkSolver(k_clusters=k, seed=0)
        results[label] = solver.solve(problem,
                                      budget=SearchBudget.seconds(TIME_LIMIT_S))
    return results


def test_fig06_cp_clustering(benchmark, emit):
    results = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        for elapsed, cost in result.trace:
            rows.append((label, elapsed, cost))
    trace_table = format_table(
        ["configuration", "time [s]", "longest-link latency [ms]"], rows,
        title="Figure 6 — CP convergence for LLNDP under cost clustering "
              "(40 instances, 6x6 mesh)",
    )
    summary = format_table(
        ["configuration", "final cost [ms]", "threshold iterations",
         "time to best [s]", "proved optimal"],
        [
            (label, result.cost, result.iterations,
             result.trace[-1][0] if result.trace else 0.0, result.optimal)
            for label, result in results.items()
        ],
        title="Figure 6 summary (paper: k=20 converges fastest; k=5 plateaus "
              "at a worse deployment)",
    )
    emit("fig06_cp_clustering", trace_table + "\n\n" + summary)

    # k=5 cannot beat the finer-grained configurations.
    assert results["k=5"].cost >= results["k=20"].cost - 1e-9
    # Clustering reduces the number of threshold iterations needed.
    assert results["k=5"].iterations <= results["no clustering"].iterations
