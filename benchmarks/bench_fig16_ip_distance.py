"""Figure 16: mean latency of links grouped by IP distance (negative result).

Appendix 2 of the paper orders links by measured latency within each IP
distance group and observes that the groups overlap heavily: sharing a /24
does not imply a faster link, so IP distance is not a usable proxy.  The
benchmark prints per-group latency statistics and the overlap fraction.
"""

import numpy as np

from repro.analysis import format_table
from repro.netmeasure import (
    group_overlap_fraction,
    ip_distance_matrix,
    links_grouped_by_proxy,
    proxy_quality,
)

from conftest import allocate_ids, make_cloud


def build_figure():
    cloud = make_cloud("ec2", seed=16)
    ids = allocate_ids(cloud, 60)
    latency = cloud.true_cost_matrix(ids)
    proxy = ip_distance_matrix(cloud, ids)
    groups = links_grouped_by_proxy(proxy, latency)
    quality = proxy_quality(proxy, latency)
    return groups, quality


def test_fig16_ip_distance(benchmark, emit):
    groups, quality = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    rows = [
        (f"IP distance = {int(value)}", len(latencies),
         float(np.min(latencies)), float(np.median(latencies)),
         float(np.max(latencies)))
        for value, latencies in groups.items()
    ]
    table = format_table(
        ["group", "links", "min latency [ms]", "median [ms]", "max [ms]"],
        rows,
        title="Figure 16 — link latency grouped by IP distance "
              "(paper: groups overlap; monotonicity does not hold)",
    )
    summary = format_table(
        ["statistic", "value"],
        [
            ("Spearman correlation", quality.spearman),
            ("Pearson correlation", quality.pearson),
            ("pairwise ordering violations", quality.ordering_violations),
            ("adjacent group overlap fraction", group_overlap_fraction(groups)),
        ],
        title="Figure 16 summary",
    )
    emit("fig16_ip_distance", table + "\n\n" + summary)

    # The negative result: IP distance does not predict latency.
    assert abs(quality.spearman) < 0.6
    assert quality.ordering_violations > 0.10
    if len(groups) >= 2:
        assert group_overlap_fraction(groups) > 0.0
