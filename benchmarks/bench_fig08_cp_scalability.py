"""Figure 8: scalability of the CP solver with the number of instances.

The paper samples sub-allocations of increasing size from a 100-instance
allocation and reports the average time for the CP solver to converge (stop
improving).  Convergence time grows acceptably with problem size while the
relative improvement stays similar.  The benchmark sweeps 12–36 instances
with two sampled sub-allocations per size.
"""

import numpy as np

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.solvers import CPLongestLinkSolver, SearchBudget, default_plan
from repro.core.objectives import longest_link_cost

from conftest import allocate_ids, make_cloud

SIZES = [12, 18, 24, 30, 36]
SAMPLES_PER_SIZE = 2
TIME_LIMIT_S = 6.0


def build_figure():
    cloud = make_cloud("ec2", seed=8)
    all_ids = allocate_ids(cloud, 40)
    full_costs = cloud.true_cost_matrix(all_ids)
    rng = np.random.default_rng(0)

    measurements = []
    for size in SIZES:
        node_count = int(0.9 * size)
        rows = int(np.floor(np.sqrt(node_count)))
        cols = node_count // rows
        graph = CommunicationGraph.mesh_2d(rows, cols)
        for sample in range(SAMPLES_PER_SIZE):
            subset = [all_ids[int(i)] for i in
                      rng.choice(len(all_ids), size=size, replace=False)]
            costs = full_costs.submatrix(subset)
            result = CPLongestLinkSolver(k_clusters=20, seed=sample).solve(
                DeploymentProblem(graph, costs),
                budget=SearchBudget.seconds(TIME_LIMIT_S))
            baseline = longest_link_cost(default_plan(graph, costs), graph, costs)
            convergence_time = result.trace[-1][0] if result.trace else 0.0
            improvement = 0.0 if baseline <= 0 else (baseline - result.cost) / baseline
            measurements.append((size, graph.num_nodes, convergence_time, improvement))
    return measurements


def test_fig08_cp_scalability(benchmark, emit):
    measurements = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    per_size = {}
    for size, nodes, convergence_time, improvement in measurements:
        per_size.setdefault(size, []).append((convergence_time, improvement))
    rows = [
        (size,
         float(np.mean([t for t, _ in values])),
         float(np.mean([i for _, i in values])))
        for size, values in sorted(per_size.items())
    ]
    table = format_table(
        ["instances", "avg convergence time [s]", "avg cost improvement"],
        rows,
        title="Figure 8 — CP convergence time vs. number of instances "
              "(paper: time grows acceptably, improvement ratio stays similar)",
    )
    emit("fig08_cp_scalability", table)

    times = [row[1] for row in rows]
    improvements = [row[2] for row in rows]
    # Times stay within the configured budget and every size still improves
    # substantially over the default deployment.
    assert max(times) <= TIME_LIMIT_S + 1.0
    assert min(improvements) > 0.15
