"""Figure 14: lightweight approaches versus CP for the Longest Link problem.

The paper averages 20 different 50-instance allocations (10 % over-allocated)
and finds: G1 is worst (its implicitly added links are expensive), G2
improves considerably, R1 (1,000 random plans) is slightly better than G2,
and R2 (random search given the CP solver's wall-clock time) comes within a
few percent of CP.  The benchmark reproduces the comparison over 4
allocations of 22 instances.
"""

import numpy as np

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.solvers import (
    CPLongestLinkSolver,
    GreedyG1,
    GreedyG2,
    RandomSearch,
    SearchBudget,
)

from conftest import allocate_ids, make_cloud

ALLOCATION_SEEDS = [31, 32, 33, 34]
CP_TIME_S = 4.0


def build_figure():
    graph = CommunicationGraph.mesh_2d(4, 5)
    per_solver = {"G1": [], "G2": [], "R1": [], "R2": [], "CP": []}
    for seed in ALLOCATION_SEEDS:
        cloud = make_cloud("ec2", seed=seed)
        ids = allocate_ids(cloud, 22)
        costs = cloud.true_cost_matrix(ids)
        problem = DeploymentProblem(graph, costs)
        per_solver["G1"].append(GreedyG1().solve(problem).cost)
        per_solver["G2"].append(GreedyG2().solve(problem).cost)
        per_solver["R1"].append(
            RandomSearch.r1(num_samples=1000, seed=seed).solve(problem).cost)
        per_solver["R2"].append(
            RandomSearch.r2(seed=seed).solve(
                problem, budget=SearchBudget.seconds(CP_TIME_S)).cost)
        per_solver["CP"].append(
            CPLongestLinkSolver(seed=seed).solve(
                problem, budget=SearchBudget.seconds(CP_TIME_S)).cost)
    return per_solver


def test_fig14_lightweight_llndp(benchmark, emit):
    per_solver = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    means = {name: float(np.mean(values)) for name, values in per_solver.items()}
    table = format_table(
        ["approach", "mean longest-link latency [ms]", "vs. CP"],
        [(name, means[name], f"{means[name] / means['CP']:.2f}x")
         for name in ("G1", "G2", "R1", "R2", "CP")],
        title="Figure 14 — lightweight approaches vs. CP for LLNDP "
              "(paper: G1 worst, R2 within ~9 % of CP)",
    )
    emit("fig14_lightweight_llndp", table)

    # Orderings reported by the paper.
    assert means["CP"] <= means["R2"] + 1e-9
    assert means["G2"] <= means["G1"] + 1e-9
    assert means["R2"] <= means["G1"] + 1e-9
    # R2 lands reasonably close to CP (the paper reports ~8.65 % above).
    assert means["R2"] <= means["CP"] * 1.6
