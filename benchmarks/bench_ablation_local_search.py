"""Ablation A3: local search and portfolio extensions versus R2 and CP.

These solvers are not part of the paper's evaluated set; the ablation
quantifies how far simple swap-based local search and a warm-started
portfolio close the gap between time-bounded random search (R2) and the CP
solver on the longest-link problem, justifying the library's default of
using the portfolio when a few seconds of search time are available.
"""

import numpy as np

from repro.core import CommunicationGraph, DeploymentProblem
from repro.analysis import format_table
from repro.solvers import (
    CPLongestLinkSolver,
    PortfolioSolver,
    RandomSearch,
    SearchBudget,
    SimulatedAnnealing,
    SwapLocalSearch,
)

from conftest import allocate_ids, make_cloud

ALLOCATION_SEEDS = [71, 72, 73]
TIME_LIMIT_S = 4.0


def build_figure():
    graph = CommunicationGraph.mesh_2d(4, 5)
    per_solver = {"R2": [], "local search": [], "annealing": [], "portfolio": [],
                  "CP": []}
    for seed in ALLOCATION_SEEDS:
        cloud = make_cloud("ec2", seed=seed)
        ids = allocate_ids(cloud, 22)
        costs = cloud.true_cost_matrix(ids)
        budget = SearchBudget.seconds(TIME_LIMIT_S)
        problem = DeploymentProblem(graph, costs)
        per_solver["R2"].append(
            RandomSearch.r2(seed=seed).solve(problem, budget=budget).cost)
        per_solver["local search"].append(
            SwapLocalSearch(seed=seed).solve(problem, budget=budget).cost)
        per_solver["annealing"].append(
            SimulatedAnnealing(seed=seed).solve(problem, budget=budget).cost)
        per_solver["portfolio"].append(
            PortfolioSolver(seed=seed).solve(problem, budget=budget).cost)
        per_solver["CP"].append(
            CPLongestLinkSolver(seed=seed).solve(problem, budget=budget).cost)
    return per_solver


def test_ablation_local_search(benchmark, emit):
    per_solver = benchmark.pedantic(build_figure, rounds=1, iterations=1)

    means = {name: float(np.mean(values)) for name, values in per_solver.items()}
    table = format_table(
        ["approach", "mean longest-link latency [ms]", "vs. CP"],
        [(name, means[name], f"{means[name] / means['CP']:.2f}x")
         for name in ("R2", "local search", "annealing", "portfolio", "CP")],
        title="Ablation A3 — local search / portfolio extensions vs. R2 and CP "
              "(equal wall-clock budgets)",
    )
    emit("ablation_local_search", table)

    # The portfolio (which includes CP) should match CP, and the local-search
    # extensions should not be dramatically worse than plain random search.
    assert means["portfolio"] <= means["CP"] * 1.10 + 1e-9
    assert means["local search"] <= means["R2"] * 1.25 + 1e-9
