"""Uncoordinated parallel measurement (Sect. 5, approach 2).

Every instance independently picks a random destination and probes it; all
instances do this at the same time, so up to ``n`` messages are in flight.
Because destinations are chosen without coordination, probes collide — an
instance may be sending its own probe while serving someone else's, and
several probes may target the same destination.  Those collisions inflate
the observed round-trip times, which is exactly the accuracy penalty that
Fig. 4 quantifies.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.types import InstanceId, Link, make_rng
from ..cloud.provider import SimulatedCloud
from .estimator import MeasurementResult
from .interference import InterferenceModel
from .probing import MeasurementScheme, ProbeEngine


class UncoordinatedMeasurement(MeasurementScheme):
    """Parallel probing with independently chosen random destinations."""

    name = "uncoordinated"

    def __init__(self, message_bytes: int = 1024, seed: int | None = None,
                 interference: InterferenceModel | None = None):
        super().__init__(message_bytes=message_bytes, seed=seed)
        self.interference = interference if interference is not None else InterferenceModel()

    def measure(self, cloud: SimulatedCloud, instance_ids: Sequence[InstanceId],
                target_samples_per_link: int = 10,
                max_duration_ms: float | None = None) -> MeasurementResult:
        ids = self._validate(instance_ids)
        rng = make_rng(self._seed)
        result = MeasurementResult(scheme=self.name, instance_ids=tuple(ids))
        engine = ProbeEngine(cloud, result, interference=self.interference,
                             message_bytes=self.message_bytes, rng=rng)

        num_links = len(ids) * (len(ids) - 1)
        target_total = target_samples_per_link * num_links

        # Each round issues one probe per instance; in expectation a given
        # directed link is covered once every (n - 1) rounds, so we plan for
        # a generous number of rounds and additionally stop on sample count
        # or duration.
        max_rounds = target_samples_per_link * (len(ids) - 1) * 3
        for _ in range(max_rounds):
            probes: List[Link] = []
            for src in ids:
                dst = ids[int(rng.integers(len(ids) - 1))]
                if dst == src:
                    dst = ids[-1]
                probes.append((src, dst))
            engine.run_batch(probes, repetitions=1)
            if max_duration_ms is not None and engine.clock_ms >= max_duration_ms:
                break
            if result.num_probes >= target_total and \
                    result.min_samples_per_link() >= max(1, target_samples_per_link // 2):
                break
        return result
