"""Probe execution shared by the measurement schemes.

A measurement scheme decides *which* probes to issue together; the
:class:`ProbeEngine` executes a batch of concurrent probes against the
simulated cloud, applies the interference model, and records the observed
round-trip times in a :class:`~repro.netmeasure.estimator.MeasurementResult`.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import MeasurementError
from ..core.types import InstanceId, Link, make_rng
from ..cloud.provider import SimulatedCloud
from .estimator import MeasurementResult
from .interference import NO_INTERFERENCE, InterferenceModel


class ProbeEngine:
    """Executes batches of concurrent probes and records their observations.

    Args:
        cloud: the simulated cloud to probe.
        result: the measurement result being filled in.
        interference: how concurrent probes at shared endpoints inflate RTTs.
        message_bytes: probe payload size (1 KB in the paper's experiments).
        rng: random stream for RTT sampling.
    """

    def __init__(self, cloud: SimulatedCloud, result: MeasurementResult,
                 interference: InterferenceModel = NO_INTERFERENCE,
                 message_bytes: int = 1024,
                 rng: np.random.Generator | int | None = None):
        self.cloud = cloud
        self.result = result
        self.interference = interference
        self.message_bytes = message_bytes
        self.rng = make_rng(rng)
        self.clock_ms = 0.0

    def run_batch(self, probes: Sequence[Link],
                  repetitions: int = 1) -> List[Tuple[Link, float]]:
        """Issue ``probes`` concurrently, each repeated ``repetitions`` times.

        All probes of the batch start together; within a probe, repetitions
        are back-to-back round trips between the same pair (the staged
        scheme's ``Ks`` optimisation).  The batch finishes when its slowest
        probe finishes, which is how long the scheme must wait before
        starting the next batch.

        Returns:
            The observed samples, one entry per (probe, repetition).
        """
        if repetitions < 1:
            raise MeasurementError("repetitions must be >= 1")
        observations: List[Tuple[Link, float]] = []
        completion_times: List[float] = []
        load = self.interference.endpoint_load(list(probes))

        for probe in probes:
            src, dst = probe
            elapsed_in_probe = 0.0
            for _ in range(repetitions):
                true_rtt = self.cloud.sample_rtt(
                    src, dst, message_bytes=self.message_bytes, rng=self.rng
                )
                observed = self.interference.observed_rtt(probe, true_rtt, load)
                elapsed_in_probe += observed
                self.result.record(probe, self.clock_ms + elapsed_in_probe, observed)
                observations.append((probe, observed))
            completion_times.append(elapsed_in_probe)

        if completion_times:
            self.clock_ms += max(completion_times)
        self.result.elapsed_ms = self.clock_ms
        return observations

    def advance(self, milliseconds: float) -> None:
        """Account for non-probe time (coordination messages, token passes)."""
        if milliseconds < 0:
            raise MeasurementError("cannot advance the clock backwards")
        self.clock_ms += milliseconds
        self.result.elapsed_ms = self.clock_ms


class MeasurementScheme(abc.ABC):
    """Base class for the three pairwise measurement methodologies of Sect. 5."""

    #: Name reported in measurement results.
    name: str = "scheme"

    def __init__(self, message_bytes: int = 1024, seed: int | None = None):
        self.message_bytes = message_bytes
        self._seed = seed

    @abc.abstractmethod
    def measure(self, cloud: SimulatedCloud, instance_ids: Sequence[InstanceId],
                target_samples_per_link: int = 10,
                max_duration_ms: float | None = None) -> MeasurementResult:
        """Collect RTT samples for every ordered pair of instances.

        Args:
            cloud: the simulated cloud.
            instance_ids: the allocated instances to measure.
            target_samples_per_link: stop once (almost) every link has this
                many samples.
            max_duration_ms: stop once this much simulated time has passed,
                even if some links have fewer samples.
        """

    def _validate(self, instance_ids: Sequence[InstanceId]) -> List[InstanceId]:
        ids = list(instance_ids)
        if len(ids) < 2:
            raise MeasurementError("need at least two instances to measure latency")
        if len(ids) != len(set(ids)):
            raise MeasurementError("duplicate instance identifiers")
        return ids


def all_ordered_pairs(instance_ids: Sequence[InstanceId]) -> List[Link]:
    """Every ordered pair of distinct instances."""
    return [(a, b) for a in instance_ids for b in instance_ids if a != b]


def round_robin_pairings(instance_ids: Sequence[InstanceId]) -> List[List[Link]]:
    """Round-robin tournament schedule: disjoint pairings covering all pairs.

    Uses the classic circle method.  For ``n`` instances (padded to even with
    a bye), it produces ``n - 1`` rounds of ``n / 2`` disjoint pairs, and
    every unordered pair appears exactly once.  The staged scheme's
    coordinator uses consecutive rounds, alternating probe direction, so all
    ordered pairs are eventually covered without endpoint collisions.
    """
    ids = list(instance_ids)
    bye = object()
    if len(ids) % 2 == 1:
        ids = ids + [bye]  # type: ignore[list-item]
    half = len(ids) // 2
    rounds: List[List[Link]] = []
    rotation = ids[:]
    for _ in range(len(ids) - 1):
        pairs: List[Link] = []
        for k in range(half):
            a, b = rotation[k], rotation[len(ids) - 1 - k]
            if a is not bye and b is not bye:
                pairs.append((a, b))
        rounds.append(pairs)
        rotation = [rotation[0]] + [rotation[-1]] + rotation[1:-1]
    return rounds
