"""Cheap proxies for network distance: IP distance and hop count (Appendix 2).

Both proxies are trivial to obtain (no measurement traffic at all), but the
paper finds — and this module lets you verify on the simulator — that
neither predicts round-trip latency well enough to drive deployment
decisions.  The helpers below compute the proxy matrices and the grouping /
correlation statistics behind Figs. 16 and 17.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats

from ..core.cost_matrix import CostMatrix
from ..core.types import InstanceId, Link
from ..cloud.provider import SimulatedCloud, ip_distance


def ip_distance_matrix(cloud: SimulatedCloud, instance_ids: Sequence[InstanceId],
                       group_bits: int = 8) -> CostMatrix:
    """Pairwise IP distance between instances (in address groups)."""
    ids = list(instance_ids)
    return CostMatrix.from_function(
        ids,
        lambda a, b: ip_distance(cloud.private_ip(a), cloud.private_ip(b),
                                 group_bits=group_bits),
    )


def hop_count_matrix(cloud: SimulatedCloud,
                     instance_ids: Sequence[InstanceId]) -> CostMatrix:
    """Pairwise TTL-derived router hop count between instances."""
    ids = list(instance_ids)
    return CostMatrix.from_function(ids, cloud.hop_count)


@dataclass(frozen=True)
class ProxyQuality:
    """How well a proxy metric predicts measured latency.

    Attributes:
        spearman: Spearman rank correlation between proxy and latency.
        pearson: Pearson correlation between proxy and latency.
        ordering_violations: fraction of link pairs ordered one way by the
            proxy and the other way by latency (0 = perfect monotonicity).
    """

    spearman: float
    pearson: float
    ordering_violations: float


def proxy_quality(proxy: CostMatrix, latency: CostMatrix,
                  max_pairs_for_violations: int = 200_000,
                  seed: int | None = 0) -> ProxyQuality:
    """Correlation and ordering statistics of a proxy against latency."""
    if proxy.instance_ids != latency.instance_ids:
        proxy = proxy.submatrix(latency.instance_ids)
    proxy_values = proxy.link_costs()
    latency_values = latency.link_costs()

    if np.ptp(proxy_values) == 0 or np.ptp(latency_values) == 0:
        # A constant proxy carries no ordering information at all.
        spearman = 0.0
        pearson = 0.0
    else:
        spearman = float(stats.spearmanr(proxy_values, latency_values).statistic)
        pearson = float(stats.pearsonr(proxy_values, latency_values).statistic)

    rng = np.random.default_rng(seed)
    n = len(proxy_values)
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs_for_violations:
        first, second = np.triu_indices(n, k=1)
    else:
        first = rng.integers(0, n, size=max_pairs_for_violations)
        second = rng.integers(0, n, size=max_pairs_for_violations)
        keep = first != second
        first, second = first[keep], second[keep]

    proxy_order = np.sign(proxy_values[first] - proxy_values[second])
    latency_order = np.sign(latency_values[first] - latency_values[second])
    comparable = proxy_order != 0
    if comparable.sum() == 0:
        violations = 0.0
    else:
        violations = float(
            np.mean(proxy_order[comparable] * latency_order[comparable] < 0)
        )
    return ProxyQuality(spearman=spearman, pearson=pearson,
                        ordering_violations=violations)


def links_grouped_by_proxy(proxy: CostMatrix, latency: CostMatrix
                           ) -> Dict[float, List[float]]:
    """Latency of every link, grouped by its proxy value and sorted ascending.

    This is the data behind Figs. 16 and 17: one group per distinct proxy
    value (IP distance or hop count), with the latencies inside each group
    sorted so overlaps between groups are easy to spot.
    """
    if proxy.instance_ids != latency.instance_ids:
        proxy = proxy.submatrix(latency.instance_ids)
    groups: Dict[float, List[float]] = {}
    ids = latency.instance_ids
    for a in ids:
        for b in ids:
            if a == b:
                continue
            groups.setdefault(proxy.cost(a, b), []).append(latency.cost(a, b))
    return {value: sorted(latencies) for value, latencies in sorted(groups.items())}


def group_overlap_fraction(groups: Dict[float, List[float]]) -> float:
    """Fraction of adjacent proxy groups whose latency ranges overlap.

    A good proxy would produce disjoint latency ranges per group (overlap
    fraction 0); the paper's negative result corresponds to values near 1.
    """
    ordered = [latencies for _, latencies in sorted(groups.items()) if latencies]
    if len(ordered) < 2:
        return 0.0
    overlaps = 0
    for lower_group, upper_group in zip(ordered[:-1], ordered[1:]):
        if max(lower_group) > min(upper_group):
            overlaps += 1
    return overlaps / (len(ordered) - 1)
