"""Aggregation of raw probe samples into cost matrices and convergence curves.

A measurement scheme produces a :class:`MeasurementResult`: time-stamped RTT
samples per directed link plus bookkeeping about how long the measurement
took.  The estimator turns those samples into :class:`~repro.core.CostMatrix`
objects under any of the latency metrics of Sect. 3.2, and computes the
convergence statistics plotted in Figs. 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.cost_matrix import CostMatrix, LatencyMetric
from ..core.errors import MeasurementError
from ..core.types import InstanceId, Link


@dataclass
class MeasurementResult:
    """Raw output of one pairwise latency measurement run.

    Attributes:
        scheme: name of the measurement scheme that produced the samples.
        instance_ids: instances covered by the measurement.
        samples: per directed link, a list of ``(observation_time_ms, rtt_ms)``
            pairs in observation order.
        elapsed_ms: total simulated wall-clock time the measurement took.
        num_probes: total number of round trips issued.
    """

    scheme: str
    instance_ids: Tuple[InstanceId, ...]
    samples: Dict[Link, List[Tuple[float, float]]] = field(default_factory=dict)
    elapsed_ms: float = 0.0
    num_probes: int = 0

    # ------------------------------------------------------------------ #

    def record(self, link: Link, observed_at_ms: float, rtt_ms: float) -> None:
        """Append one RTT observation for a link."""
        self.samples.setdefault(link, []).append((observed_at_ms, rtt_ms))
        self.num_probes += 1

    def sample_count(self, link: Link) -> int:
        """Number of samples collected for a link."""
        return len(self.samples.get(link, []))

    def min_samples_per_link(self) -> int:
        """Smallest sample count over all observed links (0 when a link is missing)."""
        if not self.samples:
            return 0
        expected = {
            (a, b) for a in self.instance_ids for b in self.instance_ids if a != b
        }
        observed_counts = [len(self.samples.get(link, [])) for link in expected]
        return min(observed_counts) if observed_counts else 0

    def rtt_values(self, link: Link, until_ms: float | None = None) -> List[float]:
        """RTT samples of a link observed up to ``until_ms`` (all when ``None``)."""
        observations = self.samples.get(link, [])
        if until_ms is None:
            return [value for _, value in observations]
        return [value for when, value in observations if when <= until_ms]

    # ------------------------------------------------------------------ #

    def to_cost_matrix(self, metric: LatencyMetric = LatencyMetric.MEAN,
                       until_ms: float | None = None,
                       symmetric_fallback: bool = True) -> CostMatrix:
        """Summarise the samples into a cost matrix.

        Args:
            metric: latency metric to apply per link.
            until_ms: only use samples observed before this time; used to
                study convergence of partial measurements (Fig. 5).
            symmetric_fallback: when a directed link has no samples yet, use
                the reverse direction's samples; raises if neither exists.
        """
        per_link: Dict[Link, Sequence[float]] = {}
        for a in self.instance_ids:
            for b in self.instance_ids:
                if a == b:
                    continue
                values = self.rtt_values((a, b), until_ms)
                if not values and symmetric_fallback:
                    values = self.rtt_values((b, a), until_ms)
                if values:
                    per_link[(a, b)] = values
        missing = [
            (a, b)
            for a in self.instance_ids for b in self.instance_ids
            if a != b and (a, b) not in per_link
        ]
        if missing:
            raise MeasurementError(
                f"{len(missing)} links have no samples at t={until_ms}; "
                "measure longer before building a cost matrix"
            )
        return CostMatrix.from_samples(per_link, metric=metric,
                                       instance_ids=self.instance_ids)

    def mean_latency_vector(self, until_ms: float | None = None,
                            symmetric_fallback: bool = True) -> np.ndarray:
        """Flattened vector of per-link mean latencies (row-major, no diagonal)."""
        matrix = self.to_cost_matrix(LatencyMetric.MEAN, until_ms=until_ms,
                                     symmetric_fallback=symmetric_fallback)
        return matrix.link_costs()


def normalized_latency_vector(matrix: CostMatrix) -> np.ndarray:
    """Unit-norm latency vector, the representation compared in Fig. 4."""
    vector = matrix.link_costs()
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm > 0 else vector


def relative_error_cdf_input(estimate: CostMatrix, reference: CostMatrix) -> np.ndarray:
    """Per-link normalized relative error of ``estimate`` against ``reference``.

    Both matrices are normalized to unit vectors first so a uniform bias
    (over- or under-estimating every link by the same factor) counts as zero
    error, exactly as in the paper's comparison methodology.
    """
    if estimate.instance_ids != reference.instance_ids:
        estimate = estimate.submatrix(reference.instance_ids)
    est = normalized_latency_vector(estimate)
    ref = normalized_latency_vector(reference)
    with np.errstate(divide="ignore", invalid="ignore"):
        errors = np.abs(est - ref) / ref
    return np.nan_to_num(errors, nan=0.0, posinf=0.0)


def rmse_convergence(result: MeasurementResult, reference: CostMatrix,
                     checkpoints_ms: Sequence[float]) -> List[Tuple[float, float]]:
    """Root-mean-square error of partial estimates at increasing durations.

    Reproduces the methodology of Fig. 5: the estimate built from samples up
    to each checkpoint is compared against ``reference`` (the paper uses the
    full 30-minute measurement as ground truth).
    """
    reference_vector = reference.link_costs()
    curve: List[Tuple[float, float]] = []
    for checkpoint in checkpoints_ms:
        try:
            partial = result.to_cost_matrix(LatencyMetric.MEAN, until_ms=checkpoint)
        except MeasurementError:
            continue
        estimate_vector = partial.link_costs()
        rmse = float(np.sqrt(np.mean((estimate_vector - reference_vector) ** 2)))
        curve.append((checkpoint, rmse))
    return curve
