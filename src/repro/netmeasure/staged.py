"""Staged measurement with a coordinator (Sect. 5, approach 3).

A coordinator divides the measurement into stages.  In each stage it picks
disjoint instance pairs (no instance appears twice), so up to ``n / 2``
probes run in parallel without sharing endpoints; each pair measures ``Ks``
consecutive round trips to amortise the per-stage coordination cost.  This
combines the accuracy of token passing with near-uncoordinated scalability,
and is the scheme ClouDiA uses in production.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.types import InstanceId, Link, make_rng
from ..cloud.provider import SimulatedCloud
from .estimator import MeasurementResult
from .interference import NO_INTERFERENCE
from .probing import MeasurementScheme, ProbeEngine, round_robin_pairings


class StagedMeasurement(MeasurementScheme):
    """Coordinator-driven stages of disjoint pair probes.

    Args:
        samples_per_stage: ``Ks``, consecutive round trips measured between a
            pair within one stage (the paper uses ``Ks = 10``).
        coordination_overhead_ms: time the coordinator spends notifying the
            probing instances and collecting completions per stage.
    """

    name = "staged"

    def __init__(self, message_bytes: int = 1024, seed: int | None = None,
                 samples_per_stage: int = 10,
                 coordination_overhead_ms: float = 0.5):
        super().__init__(message_bytes=message_bytes, seed=seed)
        if samples_per_stage < 1:
            raise ValueError("samples_per_stage (Ks) must be >= 1")
        self.samples_per_stage = samples_per_stage
        self.coordination_overhead_ms = coordination_overhead_ms

    def measure(self, cloud: SimulatedCloud, instance_ids: Sequence[InstanceId],
                target_samples_per_link: int = 10,
                max_duration_ms: float | None = None) -> MeasurementResult:
        ids = self._validate(instance_ids)
        rng = make_rng(self._seed)
        result = MeasurementResult(scheme=self.name, instance_ids=tuple(ids))
        engine = ProbeEngine(cloud, result, interference=NO_INTERFERENCE,
                             message_bytes=self.message_bytes, rng=rng)

        # A full tournament (n - 1 rounds) covers every unordered pair once.
        # Sweeps alternate the probe direction so both directions of each
        # link accumulate samples; an even number of sweeps therefore covers
        # every *ordered* link with at least ``target_samples_per_link``
        # observations.
        base_rounds = round_robin_pairings(ids)
        sweeps_per_direction = -(-target_samples_per_link // self.samples_per_stage)
        sweeps_needed = max(2, 2 * sweeps_per_direction)

        for sweep in range(sweeps_needed):
            stage_rounds: List[List[Link]] = base_rounds if sweep % 2 == 0 else [
                [(b, a) for a, b in stage] for stage in base_rounds
            ]
            for stage in stage_rounds:
                if not stage:
                    continue
                engine.advance(self.coordination_overhead_ms)
                engine.run_batch(stage, repetitions=self.samples_per_stage)
                if max_duration_ms is not None and engine.clock_ms >= max_duration_ms:
                    return result
        return result
