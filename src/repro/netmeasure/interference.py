"""Interference model for concurrent latency probes.

The three measurement schemes of Sect. 5 differ in how much *cross-link
correlation* their probe traffic creates: token passing serialises all
probes (no interference), the staged scheme schedules disjoint pairs (no
interference but parallel), and the uncoordinated scheme lets probes collide
at shared endpoints.  The model below inflates an observed round-trip time
as a function of how many other probes share its source or destination at
the same time, which is what queueing at the VM's network stack does in a
real cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core.types import InstanceId, Link


@dataclass(frozen=True)
class InterferenceModel:
    """Inflation of probe RTTs caused by concurrent probes at shared endpoints.

    Attributes:
        per_flow_penalty_ms: additive delay for every other concurrent flow
            that shares an endpoint with the probe (send or receive side).
        self_collision_factor: multiplicative inflation applied when the
            probing instance is itself serving another transfer at the same
            time (a send and a receive competing for one virtual NIC).
    """

    per_flow_penalty_ms: float = 0.25
    self_collision_factor: float = 1.15

    def endpoint_load(self, probes: Sequence[Link]) -> Dict[InstanceId, int]:
        """Number of concurrent flows touching each instance in a probe batch."""
        load: Dict[InstanceId, int] = {}
        for src, dst in probes:
            load[src] = load.get(src, 0) + 1
            load[dst] = load.get(dst, 0) + 1
        return load

    def observed_rtt(self, probe: Link, true_rtt_ms: float,
                     endpoint_load: Dict[InstanceId, int]) -> float:
        """Observed RTT of ``probe`` given the batch's endpoint loads.

        A probe always contributes one flow at each of its own endpoints, so
        a load of 1 at both endpoints means no interference at all.
        """
        src, dst = probe
        extra_flows = (endpoint_load.get(src, 1) - 1) + (endpoint_load.get(dst, 1) - 1)
        observed = true_rtt_ms + self.per_flow_penalty_ms * extra_flows
        if extra_flows > 0:
            observed *= self.self_collision_factor
        return observed

    def batch_observations(self, probes: Sequence[Tuple[Link, float]]) -> Tuple[float, ...]:
        """Observed RTTs for a batch of (probe, true RTT) pairs issued together."""
        load = self.endpoint_load([probe for probe, _ in probes])
        return tuple(
            self.observed_rtt(probe, true_rtt, load) for probe, true_rtt in probes
        )


#: Interference-free model used by token passing and the staged scheme.
NO_INTERFERENCE = InterferenceModel(per_flow_penalty_ms=0.0, self_collision_factor=1.0)
