"""Token-passing measurement (Sect. 5, approach 1).

A unique token circulates among the instances; only the token holder probes,
so exactly one message is in flight at any time and measurements are free of
cross-link correlation.  The price is a total measurement time proportional
to the number of links times the samples per link — the scheme does not
scale, which is why the paper uses it only as the accuracy baseline.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.types import InstanceId, Link, make_rng
from ..cloud.provider import SimulatedCloud
from .estimator import MeasurementResult
from .interference import NO_INTERFERENCE
from .probing import MeasurementScheme, ProbeEngine, all_ordered_pairs


class TokenPassingMeasurement(MeasurementScheme):
    """Serial probing driven by a circulating token.

    Args:
        token_pass_overhead_ms: time to hand the token to the next instance.
            The paper passes the token with a small control message; we
            charge a constant close to a one-way cheap-link latency.
    """

    name = "token-passing"

    def __init__(self, message_bytes: int = 1024, seed: int | None = None,
                 token_pass_overhead_ms: float = 0.25):
        super().__init__(message_bytes=message_bytes, seed=seed)
        self.token_pass_overhead_ms = token_pass_overhead_ms

    def measure(self, cloud: SimulatedCloud, instance_ids: Sequence[InstanceId],
                target_samples_per_link: int = 10,
                max_duration_ms: float | None = None) -> MeasurementResult:
        ids = self._validate(instance_ids)
        rng = make_rng(self._seed)
        result = MeasurementResult(scheme=self.name, instance_ids=tuple(ids))
        engine = ProbeEngine(cloud, result, interference=NO_INTERFERENCE,
                             message_bytes=self.message_bytes, rng=rng)

        pairs: List[Link] = all_ordered_pairs(ids)
        for _ in range(target_samples_per_link):
            # The token visits the pairs in a shuffled order each sweep, so a
            # drifting network does not bias early links systematically.
            order = list(rng.permutation(len(pairs)))
            for index in order:
                probe = pairs[index]
                engine.run_batch([probe], repetitions=1)
                engine.advance(self.token_pass_overhead_ms)
                if max_duration_ms is not None and engine.clock_ms >= max_duration_ms:
                    return result
        return result
