"""Pairwise latency measurement substrate (Sect. 5 and Appendix 2)."""

from .approximations import (
    ProxyQuality,
    group_overlap_fraction,
    hop_count_matrix,
    ip_distance_matrix,
    links_grouped_by_proxy,
    proxy_quality,
)
from .estimator import (
    MeasurementResult,
    normalized_latency_vector,
    relative_error_cdf_input,
    rmse_convergence,
)
from .interference import NO_INTERFERENCE, InterferenceModel
from .probing import (
    MeasurementScheme,
    ProbeEngine,
    all_ordered_pairs,
    round_robin_pairings,
)
from .staged import StagedMeasurement
from .stream import CostRevision, MeasurementStream, relative_link_drift
from .token_passing import TokenPassingMeasurement
from .uncoordinated import UncoordinatedMeasurement

__all__ = [
    "CostRevision",
    "InterferenceModel",
    "MeasurementResult",
    "MeasurementScheme",
    "MeasurementStream",
    "NO_INTERFERENCE",
    "ProbeEngine",
    "ProxyQuality",
    "StagedMeasurement",
    "TokenPassingMeasurement",
    "UncoordinatedMeasurement",
    "all_ordered_pairs",
    "group_overlap_fraction",
    "hop_count_matrix",
    "ip_distance_matrix",
    "links_grouped_by_proxy",
    "normalized_latency_vector",
    "proxy_quality",
    "relative_error_cdf_input",
    "relative_link_drift",
    "rmse_convergence",
    "round_robin_pairings",
]
