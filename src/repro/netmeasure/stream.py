"""Streaming measurement-to-problem adapter: the live side of the advisor.

The paper's pipeline is measure-once-then-optimise; a long-running
deployment keeps measuring.  This module closes the loop between the
measurement layer (:class:`~repro.netmeasure.estimator.MeasurementResult`,
:class:`~repro.cloud.traces.LatencyTrace`) and the solving pipeline
(:class:`~repro.core.problem.DeploymentProblem`):

* :class:`MeasurementStream` holds the *current* cost matrix and folds
  incoming observations into it — a full or partial
  ``MeasurementResult`` (only the measured links are updated), an
  already-summarised ``CostMatrix``, or the windows of a ``LatencyTrace``.
* Each fold runs a **drift detector**: the per-link relative drift of the
  folded matrix against the current one (the same relative-deviation
  notion as :meth:`LatencyTrace.max_relative_drift`, applied between
  consecutive estimates).  Folds whose largest drift stays below the
  stream's threshold are absorbed silently — measurement noise does not
  become a revision — while significant folds are emitted as
  :class:`CostRevision` objects and become the new current matrix.
* A :class:`CostRevision` is what the re-solve loop consumes
  (:meth:`repro.api.AdvisorSession.watch`): the revised matrix plus the
  drift statistics the watch policy thresholds against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..cloud.traces import LatencyTrace
from ..core.cost_matrix import CostMatrix, LatencyMetric
from ..core.errors import MeasurementError
from ..core.types import Link
from .estimator import MeasurementResult


def relative_link_drift(current: CostMatrix, revised: CostMatrix) -> np.ndarray:
    """Per-link relative drift between two cost matrices.

    Entry ``[i, j]`` is ``|revised - current| / current`` for the directed
    link ``i -> j``; the diagonal is 0 by construction.  A link whose
    current cost is zero drifts infinitely when it becomes non-zero and
    not at all otherwise.

    Raises:
        MeasurementError: if the matrices cover different instances.
    """
    if revised.instance_ids != current.instance_ids:
        raise MeasurementError(
            "cost revision covers different instances than the current "
            "matrix; rebuild the problem instead of folding"
        )
    old = current.as_array()
    new = revised.as_array()
    with np.errstate(divide="ignore", invalid="ignore"):
        drift = np.abs(new - old) / old
    # 0/0 (including the diagonal) is no drift; x/0 with x > 0 stays inf.
    return np.nan_to_num(drift, nan=0.0, posinf=np.inf)


@dataclass(frozen=True)
class CostRevision:
    """One significant cost-matrix revision emitted by a stream.

    Attributes:
        index: 0-based sequence number among *emitted* revisions.
        costs: the revised cost matrix (the stream's new current matrix).
        max_drift: largest per-link relative drift against the previous
            current matrix.
        mean_drift: mean per-link relative drift (off-diagonal links).
        num_changed: number of directed links whose cost changed at all.
        worst_link: the directed link realising ``max_drift`` (``None``
            when nothing changed).
    """

    index: int
    costs: CostMatrix
    max_drift: float
    mean_drift: float
    num_changed: int
    worst_link: Optional[Link]


class MeasurementStream:
    """Folds incoming measurements into cost-matrix revisions.

    Args:
        baseline: the cost matrix the deployment was last solved against
            (usually ``problem.costs``).
        drift_threshold: smallest per-link relative drift that makes a
            fold *significant*.  Sub-threshold folds are absorbed — the
            current matrix stays as is and no revision is emitted — so
            plain measurement noise does not churn the re-solve loop.
            The default of ``0.0`` emits every fold that changes any
            link, leaving filtering entirely to the watch policy.
        metric: latency metric applied when folding raw
            :class:`MeasurementResult` samples.
    """

    def __init__(self, baseline: CostMatrix, drift_threshold: float = 0.0,
                 metric: LatencyMetric = LatencyMetric.MEAN):
        if drift_threshold < 0:
            raise ValueError("drift_threshold must be >= 0")
        self._current = baseline
        self.drift_threshold = float(drift_threshold)
        self.metric = metric
        self._emitted = 0
        self._absorbed = 0

    # ------------------------------------------------------------------ #

    @property
    def current(self) -> CostMatrix:
        """The current cost matrix (baseline plus every emitted revision)."""
        return self._current

    @property
    def revisions_emitted(self) -> int:
        """Number of significant revisions emitted so far."""
        return self._emitted

    @property
    def folds_absorbed(self) -> int:
        """Number of folds absorbed below the drift threshold."""
        return self._absorbed

    # ------------------------------------------------------------------ #

    def fold_costs(self, costs: CostMatrix) -> Optional[CostRevision]:
        """Fold an already-summarised cost matrix.

        Returns the emitted :class:`CostRevision`, or ``None`` when the
        fold was absorbed (largest relative drift below the threshold, or
        no link changed at all).
        """
        drift = relative_link_drift(self._current, costs)
        max_drift = float(drift.max()) if drift.size else 0.0
        # A link's drift is nonzero exactly when its cost changed (a cost
        # dropping to 0 drifts by 1, one appearing from 0 by inf).
        changed = int(np.count_nonzero(drift))
        if changed == 0 or max_drift < self.drift_threshold:
            self._absorbed += 1
            return None
        off_diag = ~np.eye(costs.num_instances, dtype=bool)
        flat_index = int(np.argmax(drift))
        src, dst = np.unravel_index(flat_index, drift.shape)
        revision = CostRevision(
            index=self._emitted,
            costs=costs,
            max_drift=max_drift,
            mean_drift=float(drift[off_diag].mean()) if off_diag.any() else 0.0,
            num_changed=changed,
            worst_link=(costs.instance_ids[int(src)],
                        costs.instance_ids[int(dst)]),
        )
        self._current = costs
        self._emitted += 1
        return revision

    def fold_measurement(self, result: MeasurementResult,
                         until_ms: Optional[float] = None
                         ) -> Optional[CostRevision]:
        """Fold the links a measurement run actually observed.

        Unlike :meth:`MeasurementResult.to_cost_matrix`, a *partial*
        measurement is fine here: links without samples keep their current
        cost, so an incremental probing round over a few suspect links
        still produces a well-formed revision.

        Raises:
            MeasurementError: if the measurement covers instances the
                current matrix does not know.
        """
        known = set(self._current.instance_ids)
        unknown = [i for i in result.instance_ids if i not in known]
        if unknown:
            raise MeasurementError(
                f"measurement covers unknown instance(s) {unknown[:5]}; "
                f"the stream's matrix spans {len(known)} instances"
            )
        matrix = self._current.as_array()
        for (src, dst), _ in result.samples.items():
            values = result.rtt_values((src, dst), until_ms)
            if values:
                matrix[self._current.index_of(src),
                       self._current.index_of(dst)] = (
                    self.metric.summarise(values)
                )
        return self.fold_costs(CostMatrix(self._current.instance_ids, matrix))

    def fold_trace(self, trace: LatencyTrace) -> List[CostRevision]:
        """Fold every window of a latency trace, in time order.

        Each window is overlaid on the then-current matrix
        (:meth:`LatencyTrace.window_costs`), run through the drift
        detector, and emitted when significant.
        """
        revisions: List[CostRevision] = []
        for index in range(trace.num_windows):
            revision = self.fold_costs(
                trace.window_costs(index, self._current))
            if revision is not None:
                revisions.append(revision)
        return revisions

    def fold_all(self, matrices: Iterable[CostMatrix]
                 ) -> List[CostRevision]:
        """Fold a sequence of cost matrices; convenience for replays."""
        revisions = []
        for costs in matrices:
            revision = self.fold_costs(costs)
            if revision is not None:
                revisions.append(revision)
        return revisions

    def __repr__(self) -> str:
        return (
            f"MeasurementStream(instances={self._current.num_instances}, "
            f"threshold={self.drift_threshold}, emitted={self._emitted}, "
            f"absorbed={self._absorbed})"
        )


__all__: Tuple[str, ...] = (
    "CostRevision",
    "MeasurementStream",
    "relative_link_drift",
)
