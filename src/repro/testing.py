"""Deterministic problem generators and reference helpers for tests.

These used to live in ``tests/conftest.py``, which made them importable only
through pytest's fragile ``conftest`` module name (and broke entirely when a
second conftest — the benchmarks' — shadowed it during collection).  They
are part of the library now: tests, benchmarks and downstream experiments
import them as ``repro.testing`` regardless of how the process was started.
"""

from __future__ import annotations

from itertools import permutations
from typing import Tuple

import numpy as np

from .core.communication_graph import CommunicationGraph
from .core.cost_matrix import CostMatrix
from .core.deployment import DeploymentPlan
from .core.objectives import Objective, deployment_cost


def deterministic_cost_matrix(num_instances: int, seed: int = 0,
                              low: float = 0.2, high: float = 1.4,
                              symmetric: bool = True) -> CostMatrix:
    """A reproducible random cost matrix with EC2-like latency ranges."""
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(low, high, size=(num_instances, num_instances))
    if symmetric:
        matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    return CostMatrix(list(range(num_instances)), matrix)


def brute_force_optimum(graph: CommunicationGraph, costs: CostMatrix,
                        objective: Objective) -> Tuple[DeploymentPlan, float]:
    """Exhaustively enumerate all injective deployments (tiny instances only)."""
    nodes = list(graph.nodes)
    instances = list(costs.instance_ids)
    assert len(instances) <= 8, "brute force is only meant for tiny problems"
    best_plan = None
    best_cost = float("inf")
    for assignment in permutations(instances, len(nodes)):
        plan = DeploymentPlan(dict(zip(nodes, assignment)))
        cost = deployment_cost(plan, graph, costs, objective)
        if cost < best_cost:
            best_plan, best_cost = plan, cost
    assert best_plan is not None
    return best_plan, best_cost
