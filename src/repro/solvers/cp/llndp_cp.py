"""Constraint-programming solver for the Longest Link problem (Sect. 4.2).

The solver exploits the connection between LLNDP and subgraph isomorphism:
a deployment of cost at most ``c`` exists iff the threshold graph ``G_c``
(instances connected by links of cost <= ``c``) contains a subgraph
isomorphic to the communication graph.  Starting from an initial incumbent,
the solver repeatedly lowers the threshold to the next smaller distinct cost
value and re-solves the satisfaction problem, stopping when no deployment is
found (the incumbent is then optimal) or the budget runs out.

Cost clustering (Sect. 6.3) reduces the number of distinct values — and thus
iterations — at the price of approximating the objective.

All plan scoring and bound computation runs through the compiled evaluation
engine (:func:`repro.core.evaluation.compile_problem`): incumbents are
scored with ``evaluate_plan``, threshold graphs come from
``threshold_adjacency`` over the compiled cost array, and the per-assignment
degree bounds yield a proven lower bound that terminates the threshold loop
early once the incumbent provably cannot improve.  ``use_engine=False``
keeps the original dict-walking oracle path; the agreement tests assert both
paths return bit-identical plans, costs and bounds seed for seed.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ...core.deployment import DeploymentPlan
from ...core.evaluation import compile_problem
from ...core.objectives import Objective, deployment_cost
from ...core.problem import DeploymentProblem
from ...core.types import make_rng
from ..base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_constrained_random_plan,
    best_random_plan,
    constrained_warm_start,
    default_limits,
)
from .labeling import longest_link_lower_bound_reference
from .subgraph import SubgraphMonomorphismSearch


class CPLongestLinkSolver(DeploymentSolver):
    """Iterative threshold-lowering CP solver for LLNDP.

    Args:
        k_clusters: number of cost clusters to round link costs into before
            solving (``None`` disables clustering, reproducing the paper's
            "no clustering" configuration).
        round_to: rounding grid (ms) applied to costs before clustering;
            the paper rounds to the nearest 0.01 ms.
        initial_random_plans: how many random plans seed the incumbent.
        max_backtracks_per_iteration: optional cap on backtracks within one
            satisfaction search, to bound worst-case behaviour.
        seed: RNG seed for the initial random plans.
        use_engine: score plans and compute bounds through the compiled
            evaluation engine (default); ``False`` uses the pure-Python
            oracle in :mod:`repro.core.objectives`, kept as the reference.
    """

    name = "CP"
    supported_objectives = (Objective.LONGEST_LINK,)
    supports_constraints = True
    #: The incumbent seeds the threshold loop: a warm start at cost ``c``
    #: means the first satisfaction search already runs at the next
    #: distinct cost below ``c``, so a near-optimal incumbent (the usual
    #: case after a small drift) skips almost the whole threshold descent.
    supports_warm_start = True

    def handles_constraints(self, problem: DeploymentProblem) -> bool:
        """Constraints are lowered into the search on the engine path only.

        The ``use_engine=False`` oracle path is kept bit-identical to the
        historical solver and therefore still relies on the base-class
        repair.
        """
        return self.use_engine

    def __init__(self, k_clusters: Optional[int] = 20, round_to: float | None = 0.01,
                 initial_random_plans: int = 10,
                 max_backtracks_per_iteration: int | None = 200_000,
                 matching_check_interval: int = 8,
                 seed: int | None = None,
                 use_engine: bool = True):
        if k_clusters is not None and k_clusters < 2:
            raise ValueError("k_clusters must be at least 2 (or None)")
        self.k_clusters = k_clusters
        self.round_to = round_to
        self.initial_random_plans = max(1, initial_random_plans)
        self.max_backtracks_per_iteration = max_backtracks_per_iteration
        self.matching_check_interval = matching_check_interval
        self._seed = seed
        self.use_engine = use_engine

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(30.0))
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        rng = make_rng(self._seed)

        clustered = costs.clustered(self.k_clusters, round_to=self.round_to)
        cost_array = clustered.as_array()
        instance_ids = list(clustered.instance_ids)

        # Placement constraints are lowered into the search itself on the
        # engine path: the allowed mask restricts the CP domains and
        # tightens both lower bounds (the clustered matrix preserves
        # instance ids and order, so one mask serves both engines).
        view = (problem.compiled_constraints()
                if self.use_engine else None)
        mask = None if view is None else view.allowed_mask

        if self.use_engine:
            engine = compile_problem(graph, costs)
            clustered_engine = compile_problem(graph, clustered)

            def true_cost(plan: DeploymentPlan) -> float:
                return engine.evaluate_plan(plan, objective)

            def clustered_cost(plan: DeploymentPlan) -> float:
                return clustered_engine.evaluate_plan(plan, objective)

            # Two bounds: the clustered one gates the threshold loop (it
            # lives in the same value space as the thresholds), while the
            # reported lower bound comes from the true costs so it is a
            # proven bound on the actual optimum (clustering can round a
            # cost upward past it).
            clustered_lower_bound = clustered_engine.longest_link_lower_bound(mask)
            lower_bound = engine.longest_link_lower_bound(mask)
        else:
            clustered_engine = None

            def true_cost(plan: DeploymentPlan) -> float:
                return deployment_cost(plan, graph, costs, objective)

            def clustered_cost(plan: DeploymentPlan) -> float:
                return deployment_cost(plan, graph, clustered, objective)

            clustered_lower_bound = longest_link_lower_bound_reference(
                graph, cost_array
            )
            lower_bound = longest_link_lower_bound_reference(
                graph, costs.as_array()
            )

        # Seed the incumbent with the best of a few random plans (and the
        # caller-provided warm start when available); on the constrained
        # path every seed candidate is feasible, so the final incumbent is
        # feasible no matter how the threshold loop ends.
        if view is None:
            plan, _ = best_random_plan(graph, costs, objective,
                                       self.initial_random_plans, rng)
        else:
            plan, _ = best_constrained_random_plan(
                problem, self.initial_random_plans, rng)
            initial_plan = constrained_warm_start(problem, initial_plan)
        if initial_plan is not None:
            if true_cost(initial_plan) < true_cost(plan):
                plan = initial_plan
        best_plan = plan
        best_true_cost = true_cost(best_plan)
        best_clustered_cost = clustered_cost(best_plan)
        trace.record(watch.elapsed(), best_true_cost)

        distinct = clustered.distinct_costs()
        iterations = 0
        proven_optimal = False

        while not watch.expired():
            lower_values = distinct[distinct < best_clustered_cost - 1e-12]
            if lower_values.size == 0:
                proven_optimal = True
                break
            if best_clustered_cost <= clustered_lower_bound + 1e-12:
                # The degree-based bound proves every remaining threshold
                # infeasible; the incumbent is optimal without more searches.
                proven_optimal = True
                break
            threshold = float(lower_values.max())
            if self.use_engine:
                allowed = clustered_engine.threshold_adjacency(threshold)
            else:
                allowed = cost_array <= threshold + 1e-12
                np.fill_diagonal(allowed, False)

            remaining = watch.remaining()
            deadline = (time.perf_counter() + remaining) if remaining is not None else None
            search = SubgraphMonomorphismSearch(
                graph, instance_ids, allowed, deadline=deadline,
                max_backtracks=self.max_backtracks_per_iteration,
                matching_check_interval=self.matching_check_interval,
                problem=clustered_engine, use_engine=self.use_engine,
                node_allowed=mask,
            )
            outcome = search.find()
            iterations += 1

            if outcome.plan is not None:
                best_plan = outcome.plan
                best_clustered_cost = clustered_cost(best_plan)
                best_true_cost = true_cost(best_plan)
                trace.record(watch.elapsed(), best_true_cost)
                if budget.target_cost is not None and best_true_cost <= budget.target_cost:
                    break
                continue
            if outcome.proven_infeasible:
                # No deployment below the current threshold exists: the
                # incumbent is optimal with respect to the clustered costs.
                proven_optimal = True
                break
            # Timed out inside the satisfaction search.
            break

        return SolverResult(
            plan=best_plan,
            cost=best_true_cost,
            objective=objective,
            solver_name=self.name,
            solve_time_s=watch.elapsed(),
            iterations=iterations,
            optimal=proven_optimal and self.k_clusters is None,
            trace=trace.as_tuples(),
            lower_bound=lower_bound,
        )
