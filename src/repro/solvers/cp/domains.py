"""Finite domains with a backtrackable trail, used by the CP solver.

Variables are application nodes; values are instance indices.  The store
supports marking a checkpoint before a tentative assignment, pruning values
during propagation, and restoring the checkpoint on backtrack.

The store once carried an opt-in incremental bound cache for bound-driven
searches.  It was removed: the satisfaction search of
:mod:`repro.solvers.cp.subgraph` is the store's only production caller, and
every value surviving its root filters — the degree-based compatibility
labeling *and*, on constrained problems, the placement allowed-mask — is
already below the active threshold, so a live completion bound can never
prune a branch there (the CP solver applies the constraint-tightened
degree bound once, globally, to cut its threshold loop instead).  Keeping
the cache cost ~20% in the removal hot loop for nothing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ...core.errors import SolverError

Variable = Hashable
Value = int


class DomainStore:
    """Mutable variable domains with trail-based backtracking."""

    def __init__(self, domains: Dict[Variable, Iterable[Value]]):
        if not domains:
            raise SolverError("domain store needs at least one variable")
        self._domains: Dict[Variable, Set[Value]] = {
            var: set(values) for var, values in domains.items()
        }
        for var, values in self._domains.items():
            if not values:
                raise SolverError(f"variable {var!r} starts with an empty domain")
        #: Trail of (variable, removed value) entries, in removal order.
        self._trail: List[Tuple[Variable, Value]] = []

    # ------------------------------------------------------------------ #

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in the store."""
        return tuple(self._domains.keys())

    def domain(self, var: Variable) -> Set[Value]:
        """Current domain of a variable (live set; do not mutate directly)."""
        return self._domains[var]

    def size(self, var: Variable) -> int:
        """Number of values left in a variable's domain."""
        return len(self._domains[var])

    def is_assigned(self, var: Variable) -> bool:
        """A variable is assigned once its domain is a singleton."""
        return len(self._domains[var]) == 1

    def value(self, var: Variable) -> Value:
        """The value of an assigned variable."""
        domain = self._domains[var]
        if len(domain) != 1:
            raise SolverError(f"variable {var!r} is not assigned")
        return next(iter(domain))

    def unassigned(self) -> List[Variable]:
        """Variables whose domain still has more than one value."""
        return [v for v, d in self._domains.items() if len(d) > 1]

    def all_assigned(self) -> bool:
        """Whether every variable has a singleton domain."""
        return all(len(d) == 1 for d in self._domains.values())

    # ------------------------------------------------------------------ #
    # Trail management
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> int:
        """Mark the current trail position; pass it to :meth:`restore` later."""
        return len(self._trail)

    def restore(self, mark: int) -> None:
        """Undo all removals recorded after ``mark``."""
        while len(self._trail) > mark:
            var, value = self._trail.pop()
            self._domains[var].add(value)

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #

    def remove(self, var: Variable, value: Value) -> bool:
        """Remove ``value`` from ``var``'s domain.

        Returns:
            ``False`` if the removal wiped out the domain (a dead end),
            ``True`` otherwise.  Removing a value not in the domain is a
            no-op returning ``True``.
        """
        domain = self._domains[var]
        if value not in domain:
            return True
        domain.discard(value)
        self._trail.append((var, value))
        return bool(domain)

    def assign(self, var: Variable, value: Value) -> bool:
        """Reduce ``var``'s domain to ``{value}``.

        Returns ``False`` if ``value`` was not in the domain.
        """
        domain = self._domains[var]
        if value not in domain:
            return False
        for other in list(domain):
            if other != value:
                domain.discard(other)
                self._trail.append((var, other))
        return True

    def restrict(self, var: Variable, allowed: Set[Value]) -> bool:
        """Intersect ``var``'s domain with ``allowed``.

        Returns ``False`` on wipeout.
        """
        domain = self._domains[var]
        for value in list(domain):
            if value not in allowed:
                domain.discard(value)
                self._trail.append((var, value))
        return bool(domain)
