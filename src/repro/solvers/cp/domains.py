"""Finite domains with a backtrackable trail, used by the CP solver.

Variables are application nodes; values are instance indices.  The store
supports marking a checkpoint before a tentative assignment, pruning values
during propagation, and restoring the checkpoint on backtrack.

The store can also maintain an *incremental bound cache*: when constructed
with ``value_bounds`` (a per-variable array of lower bounds indexed by
value), it tracks for every variable the minimum bound over its current
domain.  Bounds are updated in O(1) per removal unless the removed value
realised the minimum, and every bound change is recorded on the same trail
as the domain removals, so restoring a checkpoint brings the cached bounds
back without recomputing them from the domains.  The cache is opt-in and
costs nothing when unused: it exists for bound-driven searches where an
incumbent can prune against ``completion_bound``.  The pure satisfaction
search of :mod:`repro.solvers.cp.subgraph` leaves it off — every value that
survives its root compatibility filter is already below the threshold, so a
live bound cannot prune there (see its docstring), and enabling tracking in
that hot loop costs ~20% for nothing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ...core.errors import SolverError

Variable = Hashable
Value = int

#: Trail tags: a removed domain value or a superseded cached bound.
_DOMAIN = 0
_BOUND = 1


class DomainStore:
    """Mutable variable domains with trail-based backtracking."""

    def __init__(self, domains: Dict[Variable, Iterable[Value]],
                 value_bounds: Optional[Mapping[Variable, np.ndarray]] = None):
        if not domains:
            raise SolverError("domain store needs at least one variable")
        self._domains: Dict[Variable, Set[Value]] = {
            var: set(values) for var, values in domains.items()
        }
        for var, values in self._domains.items():
            if not values:
                raise SolverError(f"variable {var!r} starts with an empty domain")
        #: Trail of (tag, variable, payload) entries, in mutation order.
        #: Domain entries restore a removed value (payload: the value);
        #: bound entries restore a superseded cached bound (payload: float).
        self._trail: List[Tuple[int, Variable, object]] = []
        # Per-value bounds are pre-lowered to plain Python floats: the cache
        # is consulted on every removal in the CP hot loop, and indexing a
        # NumPy array there would box a scalar per lookup.
        self._value_bounds: Optional[Dict[Variable, List[float]]] = None
        self._bounds: Dict[Variable, float] = {}
        if value_bounds is not None:
            self._value_bounds = {
                var: [float(x) for x in value_bounds[var]]
                for var in self._domains
            }
            for var, values in self._domains.items():
                per_value = self._value_bounds[var]
                self._bounds[var] = min(per_value[v] for v in values)

    # ------------------------------------------------------------------ #

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in the store."""
        return tuple(self._domains.keys())

    def domain(self, var: Variable) -> Set[Value]:
        """Current domain of a variable (live set; do not mutate directly)."""
        return self._domains[var]

    def size(self, var: Variable) -> int:
        """Number of values left in a variable's domain."""
        return len(self._domains[var])

    def is_assigned(self, var: Variable) -> bool:
        """A variable is assigned once its domain is a singleton."""
        return len(self._domains[var]) == 1

    def value(self, var: Variable) -> Value:
        """The value of an assigned variable."""
        domain = self._domains[var]
        if len(domain) != 1:
            raise SolverError(f"variable {var!r} is not assigned")
        return next(iter(domain))

    def unassigned(self) -> List[Variable]:
        """Variables whose domain still has more than one value."""
        return [v for v, d in self._domains.items() if len(d) > 1]

    def all_assigned(self) -> bool:
        """Whether every variable has a singleton domain."""
        return all(len(d) == 1 for d in self._domains.values())

    # ------------------------------------------------------------------ #
    # Cached bounds
    # ------------------------------------------------------------------ #

    def tracks_bounds(self) -> bool:
        """Whether the store maintains per-variable bound minima."""
        return self._value_bounds is not None

    def bound(self, var: Variable) -> float:
        """Cached minimum bound over the variable's current domain.

        Returns 0.0 when the store was built without ``value_bounds``;
        returns ``inf`` for a wiped-out domain.
        """
        if self._value_bounds is None:
            return 0.0
        return self._bounds[var]

    def completion_bound(self) -> float:
        """Lower bound on any full assignment consistent with the domains.

        The maximum of the per-variable minima: every variable must take
        some value of its domain, and each value costs at least its bound.
        """
        if not self._bounds:
            return 0.0
        return max(self._bounds.values())

    # ------------------------------------------------------------------ #
    # Trail management
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> int:
        """Mark the current trail position; pass it to :meth:`restore` later."""
        return len(self._trail)

    def restore(self, mark: int) -> None:
        """Undo all removals (and cached-bound changes) recorded after ``mark``."""
        while len(self._trail) > mark:
            tag, var, payload = self._trail.pop()
            if tag == _DOMAIN:
                self._domains[var].add(payload)
            else:
                self._bounds[var] = payload

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #

    def _update_bound(self, var: Variable, value: Value) -> None:
        """Refresh the cached bound after ``value`` left ``var``'s domain."""
        per_value = self._value_bounds[var]
        old_bound = self._bounds[var]
        if per_value[value] > old_bound:
            return  # the removed value did not realise the minimum
        domain = self._domains[var]
        new_bound = (
            min(per_value[v] for v in domain) if domain else float("inf")
        )
        if new_bound != old_bound:
            self._bounds[var] = new_bound
            self._trail.append((_BOUND, var, old_bound))

    def remove(self, var: Variable, value: Value) -> bool:
        """Remove ``value`` from ``var``'s domain.

        Returns:
            ``False`` if the removal wiped out the domain (a dead end),
            ``True`` otherwise.  Removing a value not in the domain is a
            no-op returning ``True``.
        """
        domain = self._domains[var]
        if value not in domain:
            return True
        domain.discard(value)
        self._trail.append((_DOMAIN, var, value))
        if self._value_bounds is not None:
            self._update_bound(var, value)
        return bool(domain)

    def assign(self, var: Variable, value: Value) -> bool:
        """Reduce ``var``'s domain to ``{value}``.

        Returns ``False`` if ``value`` was not in the domain.
        """
        domain = self._domains[var]
        if value not in domain:
            return False
        for other in list(domain):
            if other != value:
                domain.discard(other)
                self._trail.append((_DOMAIN, var, other))
                if self._value_bounds is not None:
                    self._update_bound(var, other)
        return True

    def restrict(self, var: Variable, allowed: Set[Value]) -> bool:
        """Intersect ``var``'s domain with ``allowed``.

        Returns ``False`` on wipeout.
        """
        domain = self._domains[var]
        for value in list(domain):
            if value not in allowed:
                domain.discard(value)
                self._trail.append((_DOMAIN, var, value))
                if self._value_bounds is not None:
                    self._update_bound(var, value)
        return bool(domain)
