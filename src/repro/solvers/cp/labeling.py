"""Degree- and neighborhood-based compatibility filtering (Sect. 4.2).

At the root of the CP search tree the paper filters the domain of every
application node using a labeling that expresses compatibility between
application nodes and instances in the threshold graph ``G_c``: an
application node can only be mapped to an instance whose in/out degree is at
least as large, and whose neighborhood degree profile dominates the node's.
This module computes those initial domains for a given threshold graph.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from ...core.communication_graph import CommunicationGraph
from ...core.types import NodeId


def threshold_degrees(allowed: np.ndarray) -> Dict[str, np.ndarray]:
    """Out-, in- and undirected degrees of every instance in a threshold graph.

    Args:
        allowed: boolean adjacency matrix of the instance threshold graph
            ``G_c`` (entry ``[a, b]`` is ``True`` when the link ``a -> b`` is
            cheap enough to use).
    """
    out_degree = allowed.sum(axis=1)
    in_degree = allowed.sum(axis=0)
    undirected = (allowed | allowed.T).sum(axis=1)
    return {"out": out_degree, "in": in_degree, "undirected": undirected}


def _dominates(sorted_larger: List[int], sorted_smaller: List[int]) -> bool:
    """True when the k-th largest of one sequence is >= the k-th of the other."""
    if len(sorted_larger) < len(sorted_smaller):
        return False
    return all(
        sorted_larger[k] >= sorted_smaller[k] for k in range(len(sorted_smaller))
    )


def compatibility_domains(graph: CommunicationGraph, allowed: np.ndarray,
                          refine_neighborhood: bool = True
                          ) -> Dict[NodeId, Set[int]]:
    """Initial CP domains: which instance indices each node may map to.

    An instance index ``s`` stays in the domain of node ``i`` when:

    1. the out-degree and in-degree of ``s`` in the threshold graph are at
       least the out-/in-degree of ``i`` in the communication graph, and
    2. (optionally) the sorted undirected degrees of the threshold-graph
       neighbors of ``s`` dominate the sorted undirected degrees of the
       communication-graph neighbors of ``i``.

    Both checks are necessary conditions for a monomorphism to exist, so the
    filtering never removes feasible values.
    """
    num_instances = allowed.shape[0]
    degrees = threshold_degrees(allowed)
    undirected_allowed = allowed | allowed.T

    node_out = {n: graph.out_degree(n) for n in graph.nodes}
    node_in = {n: graph.in_degree(n) for n in graph.nodes}
    node_neighbor_degrees = {
        n: sorted((graph.degree(m) for m in graph.neighbors(n)), reverse=True)
        for n in graph.nodes
    }
    instance_neighbor_degrees: List[List[int]] = []
    for s in range(num_instances):
        neighbor_indices = np.nonzero(undirected_allowed[s])[0]
        instance_neighbor_degrees.append(
            sorted(
                (int(degrees["undirected"][t]) for t in neighbor_indices),
                reverse=True,
            )
        )

    domains: Dict[NodeId, Set[int]] = {}
    for node in graph.nodes:
        candidates: Set[int] = set()
        for s in range(num_instances):
            if degrees["out"][s] < node_out[node]:
                continue
            if degrees["in"][s] < node_in[node]:
                continue
            if refine_neighborhood and not _dominates(
                instance_neighbor_degrees[s], node_neighbor_degrees[node]
            ):
                continue
            candidates.add(s)
        domains[node] = candidates
    return domains


def quick_infeasibility_check(graph: CommunicationGraph, allowed: np.ndarray) -> bool:
    """Cheap necessary conditions for a monomorphism to exist.

    Returns ``True`` when the threshold graph *might* contain the
    communication graph (the CP search still has to confirm), ``False`` when
    it provably cannot — e.g. not enough instances, not enough edges, or the
    degree profiles cannot be matched.
    """
    num_instances = allowed.shape[0]
    if num_instances < graph.num_nodes:
        return False
    if int(allowed.sum()) < graph.num_edges:
        return False
    degrees = threshold_degrees(allowed)
    instance_out = sorted((int(d) for d in degrees["out"]), reverse=True)
    instance_in = sorted((int(d) for d in degrees["in"]), reverse=True)
    node_out = sorted((graph.out_degree(n) for n in graph.nodes), reverse=True)
    node_in = sorted((graph.in_degree(n) for n in graph.nodes), reverse=True)
    if not _dominates(instance_out, node_out):
        return False
    if not _dominates(instance_in, node_in):
        return False
    return True
