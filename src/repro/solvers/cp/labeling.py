"""Degree- and neighborhood-based compatibility filtering (Sect. 4.2).

At the root of the CP search tree the paper filters the domain of every
application node using a labeling that expresses compatibility between
application nodes and instances in the threshold graph ``G_c``: an
application node can only be mapped to an instance whose in/out degree is at
least as large, and whose neighborhood degree profile dominates the node's.
This module computes those initial domains for a given threshold graph.

Two implementations coexist.  The default entry points
(:func:`compatibility_domains`, :func:`quick_infeasibility_check`) are
vectorized over NumPy arrays — node degrees and neighbour-degree profiles
come from :class:`~repro.core.evaluation.CompiledProblem` index arrays when
one is supplied — because at paper scale (100+ nodes, 110+ instances) the
per-(node, instance) Python loop dominates each threshold iteration of the
CP solver.  The original dict-walking versions are kept as the reference
oracle (``*_reference``) and the tests assert both produce identical
domains on random instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ...core.communication_graph import CommunicationGraph
from ...core.evaluation import CompiledProblem
from ...core.types import NodeId


def threshold_degrees(allowed: np.ndarray) -> Dict[str, np.ndarray]:
    """Out-, in- and undirected degrees of every instance in a threshold graph.

    Args:
        allowed: boolean adjacency matrix of the instance threshold graph
            ``G_c`` (entry ``[a, b]`` is ``True`` when the link ``a -> b`` is
            cheap enough to use).
    """
    out_degree = allowed.sum(axis=1)
    in_degree = allowed.sum(axis=0)
    undirected = (allowed | allowed.T).sum(axis=1)
    return {"out": out_degree, "in": in_degree, "undirected": undirected}


def _dominates(sorted_larger: List[int], sorted_smaller: List[int]) -> bool:
    """True when the k-th largest of one sequence is >= the k-th of the other."""
    if len(sorted_larger) < len(sorted_smaller):
        return False
    return all(
        sorted_larger[k] >= sorted_smaller[k] for k in range(len(sorted_smaller))
    )


def _node_degree_arrays(graph: CommunicationGraph,
                        problem: Optional[CompiledProblem]
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(out, in, undirected)`` node degrees in ``graph.nodes`` order."""
    if problem is not None:
        return problem.node_degrees()
    out_deg = np.fromiter((graph.out_degree(n) for n in graph.nodes),
                          dtype=np.int64, count=graph.num_nodes)
    in_deg = np.fromiter((graph.in_degree(n) for n in graph.nodes),
                         dtype=np.int64, count=graph.num_nodes)
    undirected = np.fromiter((graph.degree(n) for n in graph.nodes),
                             dtype=np.int64, count=graph.num_nodes)
    return out_deg, in_deg, undirected


def _node_profile_matrix(graph: CommunicationGraph,
                         problem: Optional[CompiledProblem]) -> np.ndarray:
    """Descending neighbour-degree profiles per node, padded with ``-inf``."""
    if problem is not None:
        return problem.neighbor_degree_profiles()
    width = max((graph.degree(n) for n in graph.nodes), default=0)
    profiles = np.full((graph.num_nodes, max(width, 1)), -np.inf)
    for i, node in enumerate(graph.nodes):
        neighbor_degrees = sorted(
            (graph.degree(m) for m in graph.neighbors(node)), reverse=True
        )
        profiles[i, : len(neighbor_degrees)] = neighbor_degrees
    return profiles


def compatibility_domains(graph: CommunicationGraph, allowed: np.ndarray,
                          refine_neighborhood: bool = True,
                          problem: Optional[CompiledProblem] = None
                          ) -> Dict[NodeId, Set[int]]:
    """Initial CP domains: which instance indices each node may map to.

    An instance index ``s`` stays in the domain of node ``i`` when:

    1. the out-degree and in-degree of ``s`` in the threshold graph are at
       least the out-/in-degree of ``i`` in the communication graph, and
    2. (optionally) the sorted undirected degrees of the threshold-graph
       neighbors of ``s`` dominate the sorted undirected degrees of the
       communication-graph neighbors of ``i``.

    Both checks are necessary conditions for a monomorphism to exist, so the
    filtering never removes feasible values.  The whole computation runs as
    a few broadcasted comparisons; ``problem`` (the compiled evaluation
    engine for the instance) supplies cached node degrees and profiles.
    """
    degrees = threshold_degrees(allowed)
    node_out, node_in, _ = _node_degree_arrays(graph, problem)

    # (n, m): degree compatibility of every (node, instance) pair at once.
    ok = (degrees["out"][None, :] >= node_out[:, None]) \
        & (degrees["in"][None, :] >= node_in[:, None])

    if refine_neighborhood:
        node_profiles = _node_profile_matrix(graph, problem)
        width = node_profiles.shape[1]
        undirected_allowed = allowed | allowed.T
        # Neighbour degrees of every instance, non-neighbours masked to -inf,
        # sorted descending and truncated to the widest node profile.
        instance_profiles = np.where(
            undirected_allowed, degrees["undirected"][None, :].astype(float),
            -np.inf,
        )
        instance_profiles = -np.sort(-instance_profiles, axis=1)[:, :width]
        if instance_profiles.shape[1] < width:
            instance_profiles = np.pad(
                instance_profiles,
                ((0, 0), (0, width - instance_profiles.shape[1])),
                constant_values=-np.inf,
            )
        # dominate[i, s]: instance s's profile covers node i's entry-wise;
        # -inf padding makes missing node entries vacuous and missing
        # instance neighbours (profile exhausted) fail, encoding the length
        # check of the reference implementation.
        dominate = np.all(
            instance_profiles[None, :, :] >= node_profiles[:, None, :], axis=2
        )
        ok &= dominate

    return {
        node: set(np.flatnonzero(ok[i]).tolist())
        for i, node in enumerate(graph.nodes)
    }


def compatibility_domains_reference(graph: CommunicationGraph,
                                    allowed: np.ndarray,
                                    refine_neighborhood: bool = True
                                    ) -> Dict[NodeId, Set[int]]:
    """Dict-walking oracle for :func:`compatibility_domains` (kept for tests)."""
    num_instances = allowed.shape[0]
    degrees = threshold_degrees(allowed)
    undirected_allowed = allowed | allowed.T

    node_out = {n: graph.out_degree(n) for n in graph.nodes}
    node_in = {n: graph.in_degree(n) for n in graph.nodes}
    node_neighbor_degrees = {
        n: sorted((graph.degree(m) for m in graph.neighbors(n)), reverse=True)
        for n in graph.nodes
    }
    instance_neighbor_degrees: List[List[int]] = []
    for s in range(num_instances):
        neighbor_indices = np.nonzero(undirected_allowed[s])[0]
        instance_neighbor_degrees.append(
            sorted(
                (int(degrees["undirected"][t]) for t in neighbor_indices),
                reverse=True,
            )
        )

    domains: Dict[NodeId, Set[int]] = {}
    for node in graph.nodes:
        candidates: Set[int] = set()
        for s in range(num_instances):
            if degrees["out"][s] < node_out[node]:
                continue
            if degrees["in"][s] < node_in[node]:
                continue
            if refine_neighborhood and not _dominates(
                instance_neighbor_degrees[s], node_neighbor_degrees[node]
            ):
                continue
            candidates.add(s)
        domains[node] = candidates
    return domains


def quick_infeasibility_check(graph: CommunicationGraph,
                              allowed: np.ndarray,
                              problem: Optional[CompiledProblem] = None
                              ) -> bool:
    """Cheap necessary conditions for a monomorphism to exist.

    Returns ``True`` when the threshold graph *might* contain the
    communication graph (the CP search still has to confirm), ``False`` when
    it provably cannot — e.g. not enough instances, not enough edges, or the
    degree profiles cannot be matched.  Vectorized; agrees exactly with
    :func:`quick_infeasibility_check_reference`.

    ``problem`` (the caller's compiled engine for the instance) supplies the
    cached node degree arrays; without it they are recomputed from the
    graph on every call — the CP solver repeats this check once per
    threshold iteration, so pass the engine when one exists.
    """
    num_instances = allowed.shape[0]
    if num_instances < graph.num_nodes:
        return False
    if int(allowed.sum()) < graph.num_edges:
        return False
    degrees = threshold_degrees(allowed)
    node_out, node_in, _ = _node_degree_arrays(graph, problem)
    instance_out = -np.sort(-degrees["out"].astype(np.int64))[: graph.num_nodes]
    instance_in = -np.sort(-degrees["in"].astype(np.int64))[: graph.num_nodes]
    if (instance_out < -np.sort(-node_out)).any():
        return False
    if (instance_in < -np.sort(-node_in)).any():
        return False
    return True


def quick_infeasibility_check_reference(graph: CommunicationGraph,
                                        allowed: np.ndarray) -> bool:
    """Dict-walking oracle for :func:`quick_infeasibility_check`."""
    num_instances = allowed.shape[0]
    if num_instances < graph.num_nodes:
        return False
    if int(allowed.sum()) < graph.num_edges:
        return False
    degrees = threshold_degrees(allowed)
    instance_out = sorted((int(d) for d in degrees["out"]), reverse=True)
    instance_in = sorted((int(d) for d in degrees["in"]), reverse=True)
    node_out = sorted((graph.out_degree(n) for n in graph.nodes), reverse=True)
    node_in = sorted((graph.in_degree(n) for n in graph.nodes), reverse=True)
    if not _dominates(instance_out, node_out):
        return False
    if not _dominates(instance_in, node_in):
        return False
    return True


def assignment_cost_lower_bounds_reference(
        graph: CommunicationGraph, cost_array: np.ndarray
) -> Dict[NodeId, Tuple[float, ...]]:
    """Dict-walking oracle for per-assignment longest-link lower bounds.

    Mirrors :meth:`CompiledProblem.assignment_cost_lower_bounds`: placing a
    node with ``k`` out-edges on instance ``s`` costs at least the ``k``-th
    cheapest outgoing link of ``s`` (dually for in-edges).  Returns, for
    each node, the per-instance bounds as a tuple.
    """
    num_instances = cost_array.shape[0]
    sorted_out = [
        sorted(float(cost_array[s, t]) for t in range(num_instances) if t != s)
        for s in range(num_instances)
    ]
    sorted_in = [
        sorted(float(cost_array[t, s]) for t in range(num_instances) if t != s)
        for s in range(num_instances)
    ]
    bounds: Dict[NodeId, Tuple[float, ...]] = {}
    for node in graph.nodes:
        out_deg = graph.out_degree(node)
        in_deg = graph.in_degree(node)
        per_instance = []
        for s in range(num_instances):
            bound = 0.0
            if out_deg > 0:
                bound = sorted_out[s][out_deg - 1]
            if in_deg > 0:
                bound = max(bound, sorted_in[s][in_deg - 1])
            per_instance.append(bound)
        bounds[node] = tuple(per_instance)
    return bounds


def longest_link_lower_bound_reference(graph: CommunicationGraph,
                                       cost_array: np.ndarray) -> float:
    """Dict-walking oracle for :meth:`CompiledProblem.longest_link_lower_bound`."""
    if graph.num_nodes == 0:
        return 0.0
    bounds = assignment_cost_lower_bounds_reference(graph, cost_array)
    return max(min(per_instance) for per_instance in bounds.values())
