"""Constraint-programming machinery for the longest-link deployment problem."""

from .alldifferent import matching_feasible, propagate_assignment, prune_singletons
from .domains import DomainStore
from .labeling import compatibility_domains, quick_infeasibility_check, threshold_degrees
from .llndp_cp import CPLongestLinkSolver
from .subgraph import SearchOutcome, SubgraphMonomorphismSearch

__all__ = [
    "CPLongestLinkSolver",
    "DomainStore",
    "SearchOutcome",
    "SubgraphMonomorphismSearch",
    "compatibility_domains",
    "matching_feasible",
    "propagate_assignment",
    "prune_singletons",
    "quick_infeasibility_check",
    "threshold_degrees",
]
