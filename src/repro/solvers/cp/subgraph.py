"""Subgraph-monomorphism search on the instance threshold graph.

Given a threshold cost ``c``, the CP formulation of Sect. 4.2 asks whether
the instance graph ``G_c`` (keeping only links of cost at most ``c``)
contains a subgraph isomorphic to the communication graph — equivalently,
whether an injective mapping of application nodes to instances exists that
only uses cheap links.  This module implements that satisfaction search with
standard CP machinery: compatibility-filtered initial domains, forward
checking along communication edges, ``alldifferent`` value elimination, an
optional bipartite-matching feasibility cut, smallest-domain variable
selection and degree-based value ordering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...core.communication_graph import CommunicationGraph
from ...core.deployment import DeploymentPlan
from ...core.evaluation import CompiledProblem
from ...core.types import InstanceId, NodeId
from .alldifferent import matching_feasible, propagate_assignment
from .domains import DomainStore
from .labeling import (
    compatibility_domains,
    compatibility_domains_reference,
    quick_infeasibility_check,
    quick_infeasibility_check_reference,
)


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one satisfaction search.

    Exactly one of the following holds: a plan was found (``plan`` is not
    ``None``), the instance was proven infeasible (``proven_infeasible``), or
    the search ran out of budget (``timed_out`` and/or hit the backtrack
    limit) without an answer.
    """

    plan: Optional[DeploymentPlan]
    proven_infeasible: bool
    timed_out: bool
    backtracks: int
    nodes_explored: int


class SubgraphMonomorphismSearch:
    """Backtracking search for an injective, edge-preserving node mapping.

    Args:
        graph: communication graph to embed.
        instance_ids: identifiers of the allocated instances; index ``k`` of
            ``allowed`` corresponds to ``instance_ids[k]``.
        allowed: boolean matrix; ``allowed[a, b]`` is ``True`` when the
            directed instance link ``a -> b`` may carry a communication edge.
        deadline: absolute ``time.perf_counter()`` value after which the
            search gives up (``None`` = no deadline).
        max_backtracks: backtrack limit (``None`` = unlimited).
        matching_check_interval: run the bipartite matching feasibility check
            every this many assignments (0 disables the check).
        problem: optional compiled evaluation engine for the instance; its
            cached degree arrays and profiles feed the vectorized labeling
            and the quick feasibility pre-check.
        use_engine: route the labeling bounds through the vectorized
            implementations (default); ``False`` keeps the dict-walking
            oracle path, which the agreement tests compare against.
        node_allowed: optional boolean ``(num_nodes, num_instances)``
            placement mask in ``graph.nodes`` × ``instance_ids`` order (see
            :class:`~repro.core.evaluation.CompiledConstraints`).  Root
            domains are intersected with each node's allowed row — the
            natural CP lowering of placement constraints: the whole search
            tree is pruned to the feasible region up front.

    Note on cost bounds: the search deliberately carries no per-assignment
    cost bounds.  Every value that survives the root compatibility filter
    already costs at most the threshold (the degree filter is equivalent to
    the k-th order-statistic bound of
    :meth:`CompiledProblem.assignment_cost_lower_bounds`), so a live
    completion bound can never prune a branch of this satisfaction search —
    the CP solver applies the degree bound once, globally, to cut its
    threshold loop instead.
    """

    def __init__(self, graph: CommunicationGraph, instance_ids: Sequence[InstanceId],
                 allowed: np.ndarray, deadline: float | None = None,
                 max_backtracks: int | None = None,
                 matching_check_interval: int = 8,
                 problem: Optional[CompiledProblem] = None,
                 use_engine: bool = True,
                 node_allowed: Optional[np.ndarray] = None):
        self.graph = graph
        self.instance_ids = list(instance_ids)
        self.allowed = allowed.astype(bool)
        np.fill_diagonal(self.allowed, False)
        self.deadline = deadline
        self.max_backtracks = max_backtracks
        self.matching_check_interval = matching_check_interval
        self.problem = problem
        self.use_engine = use_engine
        self.node_allowed = node_allowed

        self._undirected_allowed = self.allowed | self.allowed.T
        self._instance_degree = self._undirected_allowed.sum(axis=1)
        self._backtracks = 0
        self._nodes_explored = 0
        self._timed_out = False

    # ------------------------------------------------------------------ #

    def find(self) -> SearchOutcome:
        """Run the search and report the outcome."""
        self._backtracks = 0
        self._nodes_explored = 0
        self._timed_out = False

        if self.use_engine:
            feasible = quick_infeasibility_check(self.graph, self.allowed,
                                                 problem=self.problem)
        else:
            feasible = quick_infeasibility_check_reference(self.graph, self.allowed)
        if not feasible:
            return SearchOutcome(plan=None, proven_infeasible=True, timed_out=False,
                                 backtracks=0, nodes_explored=0)

        if self.use_engine:
            domains = compatibility_domains(self.graph, self.allowed,
                                            problem=self.problem)
        else:
            domains = compatibility_domains_reference(self.graph, self.allowed)
        if self.node_allowed is not None:
            # Placement constraints restrict the root domains directly: a
            # node may only map to instances its allowed row admits.
            for i, node in enumerate(self.graph.nodes):
                domains[node] = {
                    value for value in domains[node] if self.node_allowed[i, value]
                }
        if any(not values for values in domains.values()):
            return SearchOutcome(plan=None, proven_infeasible=True, timed_out=False,
                                 backtracks=0, nodes_explored=0)
        if not matching_feasible(domains):
            return SearchOutcome(plan=None, proven_infeasible=True, timed_out=False,
                                 backtracks=0, nodes_explored=0)

        store = DomainStore(domains)
        assignment: Dict[NodeId, int] = {}
        found = self._search(store, assignment)

        if found:
            plan = DeploymentPlan({
                node: self.instance_ids[index] for node, index in assignment.items()
            })
            return SearchOutcome(plan=plan, proven_infeasible=False,
                                 timed_out=False, backtracks=self._backtracks,
                                 nodes_explored=self._nodes_explored)
        return SearchOutcome(plan=None,
                             proven_infeasible=not self._timed_out,
                             timed_out=self._timed_out,
                             backtracks=self._backtracks,
                             nodes_explored=self._nodes_explored)

    # ------------------------------------------------------------------ #

    def _out_of_budget(self) -> bool:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self._timed_out = True
            return True
        if self.max_backtracks is not None and self._backtracks > self.max_backtracks:
            self._timed_out = True
            return True
        return False

    def _select_variable(self, store: DomainStore,
                         assignment: Dict[NodeId, int]) -> NodeId:
        """Smallest domain first; break ties by graph degree then by id."""
        unassigned = [n for n in self.graph.nodes if n not in assignment]
        return min(
            unassigned,
            key=lambda n: (store.size(n), -self.graph.degree(n), n),
        )

    def _order_values(self, node: NodeId, store: DomainStore,
                      assignment: Dict[NodeId, int]) -> List[int]:
        """Order candidate instances: most flexible (highest degree) first."""
        values = list(store.domain(node))
        values.sort(key=lambda idx: (-int(self._instance_degree[idx]), idx))
        return values

    def _propagate(self, store: DomainStore, node: NodeId, value: int,
                   assignment: Dict[NodeId, int]) -> bool:
        """Forward checking after assigning ``node`` to instance ``value``."""
        if not propagate_assignment(store, node, value):
            return False
        # Communication edges out of `node`: its successors must sit on
        # instances reachable from `value` through an allowed link.
        for successor in self.graph.successors(node):
            if successor in assignment:
                if not self.allowed[value, assignment[successor]]:
                    return False
            else:
                allowed_targets = {
                    idx for idx in store.domain(successor) if self.allowed[value, idx]
                }
                if not store.restrict(successor, allowed_targets):
                    return False
        for predecessor in self.graph.predecessors(node):
            if predecessor in assignment:
                if not self.allowed[assignment[predecessor], value]:
                    return False
            else:
                allowed_sources = {
                    idx for idx in store.domain(predecessor) if self.allowed[idx, value]
                }
                if not store.restrict(predecessor, allowed_sources):
                    return False
        return True

    def _search(self, store: DomainStore, assignment: Dict[NodeId, int]) -> bool:
        if len(assignment) == self.graph.num_nodes:
            return True
        if self._out_of_budget():
            return False

        node = self._select_variable(store, assignment)
        for value in self._order_values(node, store, assignment):
            self._nodes_explored += 1
            mark = store.checkpoint()
            ok = store.assign(node, value)
            if ok:
                assignment[node] = value
                ok = self._propagate(store, node, value, assignment)
                if ok and self.matching_check_interval and (
                    len(assignment) % self.matching_check_interval == 0
                ):
                    remaining = {
                        n: store.domain(n)
                        for n in self.graph.nodes if n not in assignment
                    }
                    ok = matching_feasible(remaining) if remaining else True
                if ok and self._search(store, assignment):
                    return True
                del assignment[node]
            store.restore(mark)
            self._backtracks += 1
            if self._out_of_budget():
                return False
        return False
