"""``alldifferent`` reasoning for the CP deployment solver.

The CP encoding of Sect. 4.2 keeps one integer variable per application
node whose value is the hosting instance, with an ``alldifferent``
constraint over all of them.  Two levels of propagation are provided:

* *value elimination* — once a variable is assigned, its value is removed
  from every other domain (arc consistency on the pairwise decomposition);
* *matching feasibility* — a bipartite matching test that detects, earlier
  than value elimination can, situations where the remaining domains cannot
  be completed to an injective assignment (a lightweight stand-in for
  Régin's filtering).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Sequence, Set

from .domains import DomainStore

Variable = Hashable


def propagate_assignment(store: DomainStore, assigned_var: Variable,
                         value: int) -> bool:
    """Remove ``value`` from the domain of every other variable.

    Returns ``False`` if this wipes out some domain.
    """
    for var in store.variables:
        if var == assigned_var:
            continue
        if not store.remove(var, value):
            return False
    return True


def matching_feasible(domains: Mapping[Variable, Iterable[int]]) -> bool:
    """Check whether an injective assignment consistent with the domains exists.

    Runs Kuhn's augmenting-path algorithm on the variable/value bipartite
    graph.  Complexity is O(V * E); with at most a few hundred variables and
    values this is cheap enough to run periodically during search.
    """
    variables = list(domains)
    # Order variables by domain size: tight variables first makes failures
    # appear earlier.
    variables.sort(key=lambda v: len(list(domains[v])))

    match_of_value: Dict[int, Variable] = {}
    match_of_var: Dict[Variable, int] = {}

    def try_augment(var: Variable, visited: Set[int]) -> bool:
        for value in domains[var]:
            if value in visited:
                continue
            visited.add(value)
            owner = match_of_value.get(value)
            if owner is None or try_augment(owner, visited):
                match_of_value[value] = var
                match_of_var[var] = value
                return True
        return False

    for var in variables:
        if not try_augment(var, set()):
            return False
    return True


def prune_singletons(store: DomainStore, variables: Sequence[Variable] | None = None) -> bool:
    """Repeatedly apply value elimination for every assigned variable.

    Returns ``False`` on wipeout.  This restores arc consistency after bulk
    domain restrictions (e.g. the initial compatibility filtering).
    """
    work = list(variables if variables is not None else store.variables)
    processed: Set[Variable] = set()
    while work:
        var = work.pop()
        if var in processed or not store.is_assigned(var):
            continue
        processed.add(var)
        value = store.value(var)
        for other in store.variables:
            if other == var:
                continue
            before = store.size(other)
            if not store.remove(other, value):
                return False
            if store.size(other) == 1 and before > 1:
                work.append(other)
    return True
