"""Deployment-plan search techniques (Sect. 4 of the paper)."""

from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_constrained_random_plan,
    best_random_plan,
    constrained_warm_start,
    default_limits,
    default_plan,
    random_plans,
    scoring_engine,
)
from .cp import (
    CPLongestLinkSolver,
    SearchOutcome,
    SubgraphMonomorphismSearch,
)
from .greedy import GreedyG1, GreedyG2
from .local_search import SimulatedAnnealing, SwapLocalSearch
from .mip import (
    LLNDPEncoding,
    LPNDPEncoding,
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
)
from .portfolio import PortfolioSolver
from .random_search import RandomSearch
from .registry import (
    SolverConfigError,
    SolverRegistry,
    SolverSpec,
    UnknownSolverError,
    default_registry,
)

__all__ = [
    "CPLongestLinkSolver",
    "ConvergenceTrace",
    "DeploymentSolver",
    "GreedyG1",
    "GreedyG2",
    "LLNDPEncoding",
    "LPNDPEncoding",
    "MIPLongestLinkSolver",
    "MIPLongestPathSolver",
    "PortfolioSolver",
    "RandomSearch",
    "SearchBudget",
    "SearchOutcome",
    "SimulatedAnnealing",
    "SolverConfigError",
    "SolverRegistry",
    "SolverResult",
    "SolverSpec",
    "Stopwatch",
    "SubgraphMonomorphismSearch",
    "SwapLocalSearch",
    "UnknownSolverError",
    "best_constrained_random_plan",
    "best_random_plan",
    "constrained_warm_start",
    "default_limits",
    "default_plan",
    "default_registry",
    "random_plans",
    "scoring_engine",
]
