"""Deployment-plan search techniques (Sect. 4 of the paper)."""

from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_random_plan,
    default_plan,
    random_plans,
)
from .cp import (
    CPLongestLinkSolver,
    SearchOutcome,
    SubgraphMonomorphismSearch,
)
from .greedy import GreedyG1, GreedyG2
from .local_search import SimulatedAnnealing, SwapLocalSearch
from .mip import (
    LLNDPEncoding,
    LPNDPEncoding,
    MIPLongestLinkSolver,
    MIPLongestPathSolver,
)
from .portfolio import PortfolioSolver
from .random_search import RandomSearch

__all__ = [
    "CPLongestLinkSolver",
    "ConvergenceTrace",
    "DeploymentSolver",
    "GreedyG1",
    "GreedyG2",
    "LLNDPEncoding",
    "LPNDPEncoding",
    "MIPLongestLinkSolver",
    "MIPLongestPathSolver",
    "PortfolioSolver",
    "RandomSearch",
    "SearchBudget",
    "SearchOutcome",
    "SimulatedAnnealing",
    "SolverResult",
    "Stopwatch",
    "SubgraphMonomorphismSearch",
    "SwapLocalSearch",
    "best_random_plan",
    "default_plan",
    "random_plans",
]
