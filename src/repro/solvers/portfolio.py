"""Solver portfolio: cheap heuristics first, exact search with the rest.

ClouDiA's practical recipe (Sects. 4 and 6.5): greedy and randomized
solutions are essentially free and give a good incumbent; the exact solver
(CP for longest link, MIP for longest path) then spends the remaining budget
trying to improve on it.  The portfolio returns the best plan any member
produced, together with a merged convergence trace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.deployment import DeploymentPlan
from ..core.objectives import Objective
from ..core.problem import DeploymentProblem
from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    default_limits,
)
from .random_search import RandomSearch


class PortfolioSolver(DeploymentSolver):
    """Run several solvers in sequence and keep the best deployment.

    Args:
        solvers: the member solvers, run in order.  When omitted, a default
            portfolio is chosen per objective at solve time: G2 + a short
            random search followed by CP (longest link) or the MIP branch
            and bound (longest path).
        exact_fraction: fraction of the time budget reserved for the last
            (exact) member; the earlier members share the remainder.
    """

    name = "portfolio"
    #: Members run through their public ``solve`` entry point, which
    #: enforces constraints per member (natively for the built-ins, via
    #: the repair fallback for custom legacy members), so every plan the
    #: portfolio sees — and the one it returns — is feasible.
    supports_constraints = True
    #: The caller's warm start is handed to the first member and the best
    #: incumbent so far is threaded into every later member.
    supports_warm_start = True

    def __init__(self, solvers: Optional[Sequence[DeploymentSolver]] = None,
                 exact_fraction: float = 0.8, seed: int | None = None):
        if not 0.0 < exact_fraction < 1.0:
            raise ValueError("exact_fraction must be in (0, 1)")
        self._solvers = list(solvers) if solvers is not None else None
        self.exact_fraction = exact_fraction
        self._seed = seed

    def _default_members(self, objective: Objective) -> List[DeploymentSolver]:
        # Imported lazily: the registry module registers this class, so a
        # module-level import would be circular.
        from .registry import default_registry

        members: List[DeploymentSolver] = [
            default_registry.make("greedy"),
            default_registry.make("random", num_samples=200, seed=self._seed),
        ]
        exact_key = default_registry.default_key(objective)
        members.append(default_registry.make(exact_key, seed=self._seed))
        return members

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(10.0))
        # Lower the instance once before starting the clock on members: the
        # compilation is cached process-wide, so every engine-backed member
        # (greedy, random search, local search) reuses this single lowering.
        self.compiled(graph, costs)
        watch = Stopwatch(budget)
        members = self._solvers if self._solvers is not None \
            else self._default_members(objective)

        total = budget.time_limit_s
        exact_budget = None if total is None else total * self.exact_fraction
        warm_budget = None if total is None else (total - exact_budget) / max(
            1, len(members) - 1
        )

        best: Optional[SolverResult] = None
        merged = ConvergenceTrace()
        iterations = 0
        warm_start = initial_plan

        for position, member in enumerate(members):
            if watch.expired():
                break
            is_last = position == len(members) - 1
            member_limit = exact_budget if is_last else warm_budget
            remaining = watch.remaining()
            if member_limit is not None and remaining is not None:
                member_limit = min(member_limit, remaining)
            member_budget = SearchBudget(
                time_limit_s=member_limit,
                max_iterations=budget.max_iterations,
                target_cost=budget.target_cost,
                workers=budget.workers,
            )
            result = member.solve(problem, budget=member_budget,
                                  initial_plan=warm_start)
            iterations += result.iterations
            offset = watch.elapsed() - result.solve_time_s
            for when, cost in result.trace:
                merged.record(max(0.0, offset + when), cost)
            if best is None or result.cost < best.cost:
                best = result
            if best is not None:
                warm_start = best.plan
            if budget.target_cost is not None and best is not None \
                    and best.cost <= budget.target_cost:
                break

        if best is None:
            fallback = RandomSearch(num_samples=1, seed=self._seed)
            best = fallback.solve(problem)
            merged.record(watch.elapsed(), best.cost)

        return SolverResult(
            plan=best.plan, cost=best.cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=best.optimal,
            trace=merged.as_tuples(),
            # A custom legacy member's plan may have been repaired by the
            # base class; surface that honestly instead of defaulting to
            # "native" (built-in members never set it).
            repair_applied=best.repair_applied,
        )
