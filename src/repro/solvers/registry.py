"""String-keyed registry of deployment solvers with typed configuration.

Every solver in the library registers here under a stable string key
together with a factory and its capabilities (supported objectives, an
optional practical size ceiling).  Consumers — the CLI, the advisor, the
portfolio and the batch advisor session — resolve solvers through the
registry instead of hand-rolled ``if``/``elif`` factories::

    from repro.solvers.registry import default_registry

    solver = default_registry.make("cp", seed=7)
    default_registry.available()
    default_registry.supporting(Objective.LONGEST_PATH)

Configuration is *typed* in the sense that :meth:`SolverRegistry.make`
validates every config field against the factory's signature before
instantiation, so a typo (``make("cp", sead=7)``) or an unsupported field
(``make("greedy", seed=7)``) fails fast with the list of accepted fields
instead of an opaque ``TypeError`` deep inside a constructor.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..core.errors import SolverError
from ..core.objectives import Objective
from ..core.problem import DeploymentProblem
from .base import DeploymentSolver
from .cp.llndp_cp import CPLongestLinkSolver
from .greedy import GreedyG1, GreedyG2
from .local_search import SimulatedAnnealing, SwapLocalSearch
from .mip.llndp_mip import MIPLongestLinkSolver
from .mip.lpndp_mip import MIPLongestPathSolver
from .portfolio import PortfolioSolver
from .random_search import RandomSearch


class UnknownSolverError(SolverError):
    """Raised when a solver key is not present in the registry."""


class SolverConfigError(SolverError):
    """Raised when a solver config contains fields the factory rejects."""


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver: key, factory and capabilities."""

    key: str
    factory: Callable[..., DeploymentSolver]
    summary: str
    objectives: Tuple[Objective, ...]
    #: Practical ceiling on the number of application nodes, used by
    #: capability filtering (``None`` = no ceiling).  The MIP encodings grow
    #: as ``|E| * |S|^2`` and stop being practical long before the
    #: lightweight solvers do.
    max_nodes: Optional[int] = None
    #: Whether the solver enforces placement constraints natively during
    #: the search (every built-in does); third-party legacy solvers fall
    #: back to the base class's post-hoc repair.
    supports_constraints: bool = False
    #: Whether the solver makes productive use of an ``initial_plan`` warm
    #: start (search solvers start from it, exact solvers seed their
    #: incumbent with it, constructive solvers bound their result by it).
    #: The live re-deployment watch loop filters on this so drift
    #: re-solves are only warm-started where that actually helps.
    supports_warm_start: bool = False
    #: Whether the solver offers an opt-in best-improvement acceptance
    #: mode (``acceptance="best"``) on top of its default serial-order
    #: first-improvement contract.  Introduced with the vectorized
    #: neighborhood kernels: block-scored solvers can commit the best
    #: candidate of each batch instead of the first improving one.
    supports_best_improvement: bool = False
    _parameters: Tuple[str, ...] = field(init=False, repr=False, default=())
    _has_kwargs: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        signature = inspect.signature(self.factory)
        names = []
        has_kwargs = False
        for parameter in signature.parameters.values():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                has_kwargs = True
            elif parameter.kind is not inspect.Parameter.VAR_POSITIONAL:
                names.append(parameter.name)
        object.__setattr__(self, "_parameters", tuple(names))
        object.__setattr__(self, "_has_kwargs", has_kwargs)

    @property
    def config_fields(self) -> Tuple[str, ...]:
        """Names of the configuration fields the factory accepts."""
        return self._parameters

    def accepts(self, name: str) -> bool:
        """Whether the factory accepts a config field called ``name``."""
        return self._has_kwargs or name in self._parameters

    def supports(self, objective: Objective,
                 num_nodes: Optional[int] = None,
                 constrained: Optional[bool] = None,
                 warm_start: Optional[bool] = None,
                 best_improvement: Optional[bool] = None) -> bool:
        """Capability check: objective, size, constraints, warm starts.

        ``constrained=True`` filters to solvers that enforce placement
        constraints natively inside their search; ``warm_start=True``
        filters to solvers that make productive use of an ``initial_plan``;
        ``best_improvement=True`` filters to solvers offering the opt-in
        best-improvement acceptance mode.  ``None`` (the default) does not
        filter on the respective capability.
        """
        if objective not in self.objectives:
            return False
        if constrained and not self.supports_constraints:
            return False
        if warm_start and not self.supports_warm_start:
            return False
        if best_improvement and not self.supports_best_improvement:
            return False
        if num_nodes is not None and self.max_nodes is not None:
            return num_nodes <= self.max_nodes
        return True

    def describe(self) -> Dict[str, Any]:
        """Machine-readable description of the spec (JSON-serializable).

        The single discovery payload shared by the CLI's ``solvers
        --json`` output and the service's ``GET /v1/solvers`` route, so
        scripts never have to parse the human-readable table.
        """
        return {
            "key": self.key,
            "summary": self.summary,
            "objectives": [objective.value for objective in self.objectives],
            "max_nodes": self.max_nodes,
            "supports_constraints": self.supports_constraints,
            "supports_warm_start": self.supports_warm_start,
            "supports_best_improvement": self.supports_best_improvement,
            "config_fields": list(self.config_fields),
        }

    def make(self, **config: Any) -> DeploymentSolver:
        """Instantiate the solver after validating the config fields."""
        unknown = sorted(name for name in config if not self.accepts(name))
        if unknown:
            raise SolverConfigError(
                f"solver {self.key!r} does not accept config field(s) "
                f"{', '.join(unknown)}; accepted fields: "
                f"{', '.join(self._parameters) or '(none)'}"
            )
        return self.factory(**config)


class SolverRegistry:
    """Mutable mapping from string keys to :class:`SolverSpec` entries."""

    def __init__(self) -> None:
        self._specs: Dict[str, SolverSpec] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, key: str, factory: Callable[..., DeploymentSolver],
                 *, summary: str,
                 objectives: Optional[Tuple[Objective, ...]] = None,
                 max_nodes: Optional[int] = None,
                 supports_constraints: Optional[bool] = None,
                 supports_warm_start: Optional[bool] = None,
                 supports_best_improvement: Optional[bool] = None,
                 replace: bool = False) -> SolverSpec:
        """Register a solver factory under ``key``.

        Args:
            key: the string key solvers are resolved by.
            factory: class or callable returning a configured solver.
            summary: one-line human description (shown by the CLI).
            objectives: supported objectives; defaults to the factory's
                ``supported_objectives`` attribute when it is a solver
                class.
            max_nodes: optional practical size ceiling.
            supports_constraints: whether the solver enforces placement
                constraints natively; defaults to the factory's
                ``supports_constraints`` attribute (``False`` when the
                factory carries none, e.g. a bare function).
            supports_warm_start: whether the solver makes productive use
                of an ``initial_plan``; defaults to the factory's
                ``supports_warm_start`` attribute, like constraints.
            supports_best_improvement: whether the solver offers the
                opt-in best-improvement acceptance mode; defaults to the
                factory's ``supports_best_improvement`` attribute.
            replace: allow overwriting an existing key (default refuses).
        """
        if key in self._specs and not replace:
            raise SolverError(f"solver key {key!r} is already registered")
        if objectives is None:
            objectives = tuple(getattr(factory, "supported_objectives", ()))
            if not objectives:
                raise SolverError(
                    f"cannot infer objectives for solver {key!r}; pass "
                    f"objectives= explicitly"
                )
        if supports_constraints is None:
            supports_constraints = bool(
                getattr(factory, "supports_constraints", False))
        if supports_warm_start is None:
            supports_warm_start = bool(
                getattr(factory, "supports_warm_start", False))
        if supports_best_improvement is None:
            supports_best_improvement = bool(
                getattr(factory, "supports_best_improvement", False))
        spec = SolverSpec(key=key, factory=factory, summary=summary,
                          objectives=tuple(objectives), max_nodes=max_nodes,
                          supports_constraints=supports_constraints,
                          supports_warm_start=supports_warm_start,
                          supports_best_improvement=supports_best_improvement)
        self._specs[key] = spec
        return spec

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    def spec(self, key: str) -> SolverSpec:
        """The :class:`SolverSpec` registered under ``key``."""
        try:
            return self._specs[key]
        except KeyError:
            raise UnknownSolverError(
                f"unknown solver {key!r}; available: "
                f"{', '.join(self.available())}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def make(self, key: str, **config: Any) -> DeploymentSolver:
        """Instantiate the solver registered under ``key``.

        Config fields are validated against the factory signature;
        unsupported fields raise :class:`SolverConfigError` naming the
        accepted ones.
        """
        return self.spec(key).make(**config)

    def accepts(self, key: str, name: str) -> bool:
        """Whether solver ``key`` accepts a config field called ``name``."""
        return self.spec(key).accepts(name)

    # ------------------------------------------------------------------ #
    # Discovery and capability filtering
    # ------------------------------------------------------------------ #

    def available(self) -> Tuple[str, ...]:
        """All registered keys, sorted."""
        return tuple(sorted(self._specs))

    def specs(self) -> Tuple[SolverSpec, ...]:
        """All registered specs, sorted by key."""
        return tuple(self._specs[key] for key in self.available())

    def supporting(self, objective: Objective,
                   num_nodes: Optional[int] = None,
                   constrained: Optional[bool] = None,
                   warm_start: Optional[bool] = None,
                   best_improvement: Optional[bool] = None
                   ) -> Tuple[str, ...]:
        """Keys of the solvers able to optimise ``objective``.

        When ``num_nodes`` is given, solvers whose practical size ceiling
        is below it are filtered out as well; ``constrained=True``
        additionally keeps only solvers that enforce placement constraints
        natively inside their search, ``warm_start=True`` only those
        that make productive use of an ``initial_plan``, and
        ``best_improvement=True`` only those offering the opt-in
        best-improvement acceptance mode.
        """
        return tuple(
            key for key in self.available()
            if self._specs[key].supports(objective, num_nodes, constrained,
                                         warm_start, best_improvement)
        )

    def for_problem(self, problem: DeploymentProblem,
                    warm_start: Optional[bool] = None) -> Tuple[str, ...]:
        """Keys of the solvers able to handle ``problem``.

        Constrained problems are answered with natively constraint-aware
        solvers only, so a caller picking from this list never pays the
        repair fallback.  Pass ``warm_start=True`` when the solve will be
        warm-started from an incumbent (as the live re-deployment watch
        loop does), to keep only solvers where that actually helps.
        """
        return self.supporting(problem.objective, problem.num_nodes,
                               constrained=problem.constraints is not None,
                               warm_start=warm_start)

    def default_key(self, objective: Objective) -> str:
        """The paper's default solver for an objective.

        CP for the longest link, the MIP branch and bound for the longest
        path (Sect. 4).
        """
        if objective is Objective.LONGEST_PATH:
            return "mip"
        return "cp"

    def seeded_config(self, key: Optional[str], seed: Optional[int],
                      extra: Optional[Mapping[str, Any]] = None
                      ) -> Dict[str, Any]:
        """Caller config overrides plus the seed, when the solver takes one.

        The single implementation of the seed-routing policy shared by the
        CLI and the advisor config: the seed is added unless the overrides
        already set it or the factory does not accept a ``seed`` field.
        ``"auto"`` / ``None`` keys pass the seed along unguarded — both
        paper-default solvers (CP and MIP) accept it.
        """
        config: Dict[str, Any] = dict(extra or {})
        if seed is not None and "seed" not in config and (
                key is None or key == "auto" or self.accepts(key, "seed")):
            config["seed"] = seed
        return config

    def resolve(self, key: Optional[str], objective: Objective) -> str:
        """Resolve a solver selection to a concrete registry key.

        ``None`` and ``"auto"`` pick the paper default for ``objective``;
        anything else must be a registered key.  This is the single place
        the ``auto`` convention is implemented — the CLI, the advisor
        config and the request schema all route through it.
        """
        if key is None or key == "auto":
            return self.default_key(objective)
        self.spec(key)  # raises UnknownSolverError with the available list
        return key


#: The process-wide registry all built-in solvers register into.
default_registry = SolverRegistry()

#: Practical node ceiling for the MIP encodings, whose constraint count
#: grows as ``|E| * |S|^2``.
_MIP_MAX_NODES = 64

default_registry.register(
    "cp", CPLongestLinkSolver,
    summary="threshold-lowering CP search over the subgraph-isomorphism "
            "formulation (paper default for longest link)",
)
default_registry.register(
    "mip", MIPLongestPathSolver,
    summary="longest-path MIP, branch-and-bound or HiGHS backend (paper "
            "default for longest path)",
    max_nodes=_MIP_MAX_NODES,
)
default_registry.register(
    "mip-ll", MIPLongestLinkSolver,
    summary="longest-link MIP encoding (Sect. 4.1), mostly for "
            "cross-checking CP",
    max_nodes=_MIP_MAX_NODES,
)
default_registry.register(
    "greedy", GreedyG2,
    summary="greedy G2: cheapest explicit + implicit link expansion",
)
default_registry.register(
    "g1", GreedyG1,
    summary="greedy G1: cheapest explicit link expansion",
)
default_registry.register(
    "random", RandomSearch,
    summary="uniform random plans; num_samples=None searches until the "
            "time budget runs out",
)
default_registry.register(
    "r1", RandomSearch.r1,
    summary="paper's R1: best of a fixed number of random plans",
    objectives=RandomSearch.supported_objectives,
    supports_constraints=RandomSearch.supports_constraints,
    supports_warm_start=RandomSearch.supports_warm_start,
)
default_registry.register(
    "r2", RandomSearch.r2,
    summary="paper's R2: random search bounded by wall-clock time",
    objectives=RandomSearch.supported_objectives,
    supports_constraints=RandomSearch.supports_constraints,
    supports_warm_start=RandomSearch.supports_warm_start,
)
default_registry.register(
    "local-search", SwapLocalSearch,
    summary="first-improvement hill climbing over swap/relocate moves",
)
default_registry.register(
    "annealing", SimulatedAnnealing,
    summary="simulated annealing over swap/relocate moves",
)
default_registry.register(
    "portfolio", PortfolioSolver,
    summary="greedy + random warm start, exact solver with the remaining "
            "budget",
)
