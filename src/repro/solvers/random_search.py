"""Randomized deployment search: the R1 and R2 baselines (Sects. 4.3.1, 4.5.1).

R1 evaluates a fixed number of uniformly random deployment plans and keeps
the best.  R2 keeps generating random plans until a wall-clock budget runs
out, which is how the paper gives the randomized approach the same amount of
time (and, conceptually, hardware) as the CP and MIP solvers.

On a constrained problem every sample is drawn feasible through the
compiled constraint view (:class:`~repro.core.evaluation.CompiledConstraints`),
so no search budget is wasted on plans the constraints rule out and the
returned plan never needs the base-class repair.  The unconstrained path is
untouched — it consumes the RNG exactly as before, keeping seeded results
bit-identical.
"""

from __future__ import annotations

from typing import Optional

from ..core.deployment import DeploymentPlan
from ..core.problem import DeploymentProblem
from ..core.types import make_rng
from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    constrained_warm_start,
    default_limits,
    scoring_engine,
)

#: Batch sizes for vectorized plan evaluation.  Chunks start small so a
#: tight time budget is respected, then grow to amortise the per-call
#: overhead of the evaluation engine.
_MIN_CHUNK = 32
_MAX_CHUNK = 1024


class RandomSearch(DeploymentSolver):
    """Generate random injective deployments and keep the cheapest one.

    Args:
        num_samples: number of random plans to evaluate.  When ``None`` the
            solver runs until the budget's time limit (R2 behaviour); when
            set, it stops after that many samples even if time remains
            (R1 behaviour).
        parallel_factor: emulates generating plans on several workers by
            multiplying the number of samples evaluated per unit of time
            accounting; only used to document R2 configurations, the search
            itself is sequential and deterministic.
        seed: RNG seed.
    """

    name = "random"
    supports_constraints = True
    supports_warm_start = True

    def __init__(self, num_samples: Optional[int] = 1000,
                 seed: int | None = None, parallel_factor: int = 1):
        if num_samples is not None and num_samples <= 0:
            raise ValueError("num_samples must be positive or None")
        if parallel_factor < 1:
            raise ValueError("parallel_factor must be >= 1")
        self.num_samples = num_samples
        self.parallel_factor = parallel_factor
        self._seed = seed

    @classmethod
    def r1(cls, num_samples: int = 1000, seed: int | None = None) -> "RandomSearch":
        """The paper's R1 configuration: a fixed number of random plans."""
        solver = cls(num_samples=num_samples, seed=seed)
        solver.name = "R1"
        return solver

    @classmethod
    def r2(cls, seed: int | None = None, parallel_factor: int = 8) -> "RandomSearch":
        """The paper's R2 configuration: random search bounded by wall-clock time."""
        solver = cls(num_samples=None, seed=seed, parallel_factor=parallel_factor)
        solver.name = "R2"
        return solver

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.unlimited())
        if self.num_samples is None and budget.time_limit_s is None \
                and budget.max_iterations is None:
            raise ValueError(
                "time-bounded random search needs a time or iteration budget"
            )

        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        instances = list(costs.instance_ids)
        engine = self.compiled(graph, costs)
        scorer = scoring_engine(engine, budget.workers)
        view = problem.compiled_constraints()
        initial_plan = constrained_warm_start(problem, initial_plan)

        best_plan = initial_plan
        best_cost = (
            engine.evaluate_plan(initial_plan, objective)
            if initial_plan is not None else float("inf")
        )
        if best_plan is not None:
            trace.record(watch.elapsed(), best_cost)

        # Plans are still drawn one at a time (the RNG stream is part of the
        # solver's contract) but scored in growing batches through the
        # vectorized engine; the incumbent scan below keeps the exact
        # first-strict-improvement semantics of the old per-plan loop.
        iterations = 0
        done = False
        chunk_size = _MIN_CHUNK
        while not done:
            remaining = None
            if self.num_samples is not None:
                remaining = self.num_samples - iterations
            if budget.max_iterations is not None:
                cap = budget.max_iterations - iterations
                remaining = cap if remaining is None else min(remaining, cap)
            if remaining is not None and remaining <= 0:
                break
            if watch.expired():
                break
            size = chunk_size if remaining is None else min(chunk_size, remaining)
            if view is None:
                assignments = None
                plans = [
                    DeploymentPlan.random(graph.nodes, instances, rng)
                    for _ in range(size)
                ]
                plan_costs = scorer.evaluate_plans(plans, objective)
            else:
                # Constrained problems: every sample is feasible by
                # construction (drawn from the allowed-index arrays).
                assignments = view.random_assignments(size, rng)
                plans = None
                plan_costs = scorer.evaluate_batch(assignments, objective)
            for index, cost in enumerate(plan_costs):
                iterations += 1
                if cost < best_cost:
                    best_plan = (
                        plans[index] if assignments is None
                        else engine.plan_from_assignment(assignments[index])
                    )
                    best_cost = float(cost)
                    trace.record(watch.elapsed(), best_cost)
                if budget.target_cost is not None and best_cost <= budget.target_cost:
                    done = True
                    break
            chunk_size = min(chunk_size * 2, _MAX_CHUNK)

        if best_plan is None:
            # The loop ran zero iterations (e.g. expired budget); fall back to
            # a single random plan so callers always get a feasible result.
            if view is None:
                best_plan = DeploymentPlan.random(graph.nodes, instances, rng)
            else:
                best_plan = engine.plan_from_assignment(
                    view.random_assignment(rng))
            best_cost = engine.evaluate_plan(best_plan, objective)
            trace.record(watch.elapsed(), best_cost)

        return SolverResult(
            plan=best_plan,
            cost=best_cost,
            objective=objective,
            solver_name=self.name,
            solve_time_s=watch.elapsed(),
            iterations=iterations,
            optimal=False,
            trace=trace.as_tuples(),
        )
