"""Swap-based local search and simulated annealing.

These solvers are not part of the paper's evaluated algorithm set; they are
the natural "next lightweight step" after R2 and are included as an ablation
extension (DESIGN.md, experiment A3).  Moves preserve injectivity:

* *swap* — exchange the instances of two mapped nodes;
* *relocate* — move a node to a currently unused (over-allocated) instance.

Candidate moves are scored through the incremental
:class:`~repro.core.evaluation.DeltaEvaluator`: a longest-link candidate
only touches the edges incident to the moved nodes, so proposals cost
O(degree) instead of a full O(|E|) re-evaluation.  The move-sampling code
consumes the RNG exactly as the original implementation did, so results are
reproducible seed for seed across the rewrite.

On constrained problems the search is natively constraint-aware: it starts
from a feasible plan (constrained sampling, or the warm start repaired up
front) and proposes only moves the compiled allowed mask admits — the
evaluator's mask filtering keeps pinned nodes pinned and forbidden
placements out of the walk, so the final plan never needs the base-class
repair.  The unconstrained path consumes the RNG exactly as before.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..core.deployment import DeploymentPlan
from ..core.evaluation import DeltaEvaluator
from ..core.problem import DeploymentProblem
from ..core.types import make_rng
from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_constrained_random_plan,
    best_random_plan,
    constrained_warm_start,
    default_limits,
)

#: A proposed move in engine coordinates: ``("swap", node_idx, node_idx)``
#: or ``("relocate", node_idx, instance_idx)``.
Move = Tuple[str, int, int]


def _propose_move(evaluator: DeltaEvaluator, rng) -> Optional[Move]:
    """Sample a random swap or relocation move.

    The RNG consumption pattern is part of the solvers' reproducibility
    contract (it must keep producing the pre-engine move sequences): the
    relocate branch draws ``rng.random()`` only when a free instance
    exists, node and target picks use ``rng.integers``, and swaps use
    ``rng.choice(n, size=2, replace=False)`` — in exactly this order.
    Single-node problems (no swap population) return a relocation when a
    free instance exists and ``None`` otherwise; the solvers count a
    ``None`` proposal as a stall.
    """
    n_nodes = evaluator.problem.num_nodes
    if n_nodes < 2:
        free = evaluator.free_instance_indices()
        if not free.size:
            return None
        return ("relocate", 0, int(free[int(rng.integers(free.size))]))
    free = evaluator.free_instance_indices()
    if free.size and rng.random() < 0.3:
        node = int(rng.integers(n_nodes))
        target = int(free[int(rng.integers(free.size))])
        return ("relocate", node, target)
    a, b = rng.choice(n_nodes, size=2, replace=False)
    return ("swap", int(a), int(b))


def _propose_constrained_move(evaluator: DeltaEvaluator, rng,
                              max_attempts: int = 32) -> Optional[Move]:
    """Sample a move the evaluator's allowed mask admits.

    Mirrors :func:`_propose_move` but draws relocate targets from the
    node's *allowed* free instances and rejection-samples swaps against the
    mask.  Returns ``None`` when no admissible move surfaced within the
    attempt budget (e.g. every node pinned) — callers treat that as a
    non-improving proposal.
    """
    n_nodes = evaluator.problem.num_nodes
    free = evaluator.free_instance_indices()
    if free.size and rng.random() < 0.3:
        node = int(rng.integers(n_nodes))
        # Reuse the free array already in hand instead of re-scanning the
        # instance table through free_instance_indices(node).
        targets = free[evaluator.allowed_mask[node, free]]
        if targets.size:
            target = int(targets[int(rng.integers(targets.size))])
            return ("relocate", node, target)
    if n_nodes < 2:
        return None  # no swap population; relocate (above) was the only hope
    for _ in range(max_attempts):
        a, b = rng.choice(n_nodes, size=2, replace=False)
        if evaluator.swap_allowed(int(a), int(b)):
            return ("swap", int(a), int(b))
    return None


def _peek_move(evaluator: DeltaEvaluator, move: Move) -> float:
    kind, first, second = move
    if kind == "swap":
        return evaluator.swap_cost(first, second)
    return evaluator.relocate_cost(first, second)


def _apply_move(evaluator: DeltaEvaluator, move: Move) -> float:
    kind, first, second = move
    if kind == "swap":
        return evaluator.apply_swap(first, second)
    return evaluator.apply_relocate(first, second)


class SwapLocalSearch(DeploymentSolver):
    """First-improvement hill climbing over swap and relocate moves.

    Args:
        restarts: how many random restarts to perform when time allows.
        seed: RNG seed.
        max_moves_without_improvement: stop a descent after this many
            consecutive non-improving proposals.
    """

    name = "local-search"
    supports_constraints = True
    supports_warm_start = True

    def __init__(self, restarts: int = 3, seed: int | None = None,
                 max_moves_without_improvement: int = 2000):
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.restarts = restarts
        self.max_moves_without_improvement = max_moves_without_improvement
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(2.0))
        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        engine = self.compiled(graph, costs)
        view = problem.compiled_constraints()
        mask = None if view is None else view.allowed_mask
        initial_plan = constrained_warm_start(problem, initial_plan)

        best_plan: Optional[DeploymentPlan] = initial_plan
        best_cost = (
            engine.evaluate_plan(initial_plan, objective)
            if initial_plan is not None else float("inf")
        )
        iterations = 0

        def target_reached() -> bool:
            # Early-exit contract shared with the other search solvers: a
            # warm re-solve under SearchBudget.target_cost stops the moment
            # the incumbent is good enough instead of burning the rest of
            # the budget polishing it.
            return (budget.target_cost is not None
                    and best_plan is not None
                    and best_cost <= budget.target_cost)

        for restart in range(self.restarts):
            if watch.expired() or target_reached():
                break
            if restart == 0 and initial_plan is not None:
                plan, cost = initial_plan, best_cost
            elif view is None:
                plan, cost = best_random_plan(graph, costs, objective, 10, rng,
                                              workers=budget.workers)
            else:
                plan, cost = best_constrained_random_plan(
                    problem, 10, rng, workers=budget.workers)
            trace.record(watch.elapsed(), min(cost, best_cost if best_plan else cost))
            evaluator = engine.delta_evaluator(plan, objective,
                                               allowed_mask=mask)

            stall = 0
            while stall < self.max_moves_without_improvement and not watch.expired():
                iterations += 1
                if view is None:
                    move = _propose_move(evaluator, rng)
                else:
                    move = _propose_constrained_move(evaluator, rng)
                if move is None:
                    stall += 1
                    if budget.max_iterations is not None \
                            and iterations >= budget.max_iterations:
                        break
                    continue
                candidate_cost = _peek_move(evaluator, move)
                if candidate_cost < cost:
                    _apply_move(evaluator, move)
                    cost = candidate_cost
                    stall = 0
                    if cost < best_cost:
                        best_plan, best_cost = evaluator.plan(), cost
                        trace.record(watch.elapsed(), cost)
                        if target_reached():
                            break
                else:
                    stall += 1
                if budget.max_iterations is not None and iterations >= budget.max_iterations:
                    break
            if cost < best_cost:
                best_plan, best_cost = evaluator.plan(), cost
                trace.record(watch.elapsed(), cost)
            if target_reached():
                break
            if budget.max_iterations is not None and iterations >= budget.max_iterations:
                break

        if best_plan is None:
            if view is None:
                best_plan, best_cost = best_random_plan(
                    graph, costs, objective, 1, rng, workers=budget.workers)
            else:
                best_plan, best_cost = best_constrained_random_plan(
                    problem, 1, rng, workers=budget.workers)
            trace.record(watch.elapsed(), best_cost)

        return SolverResult(
            plan=best_plan, cost=best_cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=False, trace=trace.as_tuples(),
        )

class SimulatedAnnealing(DeploymentSolver):
    """Simulated annealing over the same move set as :class:`SwapLocalSearch`.

    Args:
        initial_temperature: starting temperature relative to the initial
            cost (a fraction; the absolute temperature is ``fraction * cost``).
        cooling: multiplicative cooling factor applied per accepted move.
        seed: RNG seed.
    """

    name = "annealing"
    supports_constraints = True
    supports_warm_start = True

    def __init__(self, initial_temperature: float = 0.3, cooling: float = 0.995,
                 seed: int | None = None):
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(2.0))
        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        engine = self.compiled(graph, costs)
        view = problem.compiled_constraints()
        mask = None if view is None else view.allowed_mask
        initial_plan = constrained_warm_start(problem, initial_plan)

        if initial_plan is not None:
            plan = initial_plan
            cost = engine.evaluate_plan(plan, objective)
        elif view is None:
            plan, cost = best_random_plan(graph, costs, objective, 10, rng,
                                          workers=budget.workers)
        else:
            plan, cost = best_constrained_random_plan(
                problem, 10, rng, workers=budget.workers)
        evaluator = engine.delta_evaluator(plan, objective, allowed_mask=mask)
        best_plan, best_cost = plan, cost
        trace.record(watch.elapsed(), best_cost)

        temperature = self.initial_temperature * max(cost, 1e-9)
        iterations = 0
        no_move_streak = 0
        while not watch.expired():
            if budget.max_iterations is not None and iterations >= budget.max_iterations:
                break
            iterations += 1
            if view is None:
                move = _propose_move(evaluator, rng)
            else:
                move = _propose_constrained_move(evaluator, rng)
            if move is None:
                # Heavily constrained walks can run out of admissible
                # moves entirely (e.g. every node pinned); stop instead of
                # spinning through the remaining wall-clock budget.
                no_move_streak += 1
                if no_move_streak >= 100:
                    break
                continue
            no_move_streak = 0
            candidate_cost = _peek_move(evaluator, move)
            delta = candidate_cost - cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                _apply_move(evaluator, move)
                cost = candidate_cost
                temperature *= self.cooling
                if cost < best_cost:
                    best_plan, best_cost = evaluator.plan(), cost
                    trace.record(watch.elapsed(), best_cost)
            if budget.target_cost is not None and best_cost <= budget.target_cost:
                break

        return SolverResult(
            plan=best_plan, cost=best_cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=False, trace=trace.as_tuples(),
        )
