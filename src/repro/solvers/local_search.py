"""Swap-based local search and simulated annealing.

These solvers are not part of the paper's evaluated algorithm set; they are
the natural "next lightweight step" after R2 and are included as an ablation
extension (DESIGN.md, experiment A3).  Moves preserve injectivity:

* *swap* — exchange the instances of two mapped nodes;
* *relocate* — move a node to a currently unused (over-allocated) instance.

Candidate moves are scored through the incremental
:class:`~repro.core.evaluation.DeltaEvaluator`.  The hot loop is *blocked*:
each pass draws up to ``peek_block`` proposals, scores them in one
vectorized :meth:`~repro.core.evaluation.DeltaEvaluator.peek_many` batch,
and then replays the serial bookkeeping over the cached costs — selecting
the serial-order-first admissible improvement, so trajectories are
bit-identical seed for seed to the historical per-move loop at any block
size.  Bit-identity rests on two invariants:

* **Peeks are state-free.**  Every proposal in a block is scored against
  the same committed assignment, exactly as the serial loop scores each
  proposal before any of them is applied; the first accepted move ends the
  block (later peeks would be stale).
* **The RNG stream is re-synchronised.**  Proposals are drawn through the
  same sampling functions (preserving the documented draw order), and when
  a block is cut short — an accepted move, a stall limit, an iteration
  cap — the generator is rewound to the block's start state and the
  consumed prefix of proposals is re-drawn, leaving the stream exactly
  where the serial loop would have left it.  Simulated annealing
  additionally rewinds before every Metropolis acceptance draw so
  ``rng.random()`` lands at its serial stream position; since an accepted
  *or* rejected uphill candidate consumes that draw, annealing's usable
  lookahead is one scored candidate per block (the block machinery still
  amortises runs of inadmissible proposals).

:class:`SwapLocalSearch` additionally offers an opt-in *best-improvement*
acceptance mode (``acceptance="best"``): each block commits the best
improving candidate instead of the first one.  That mode trades the serial
trajectory contract for deeper block utilisation and is surfaced as a
registry capability (``supports_best_improvement``).

On constrained problems the search is natively constraint-aware: it starts
from a feasible plan (constrained sampling, or the warm start repaired up
front) and proposes only moves the compiled allowed mask admits.  Swap
partners are drawn directly from the precomputed admissible-partner set
(no rejection-sampling spin on tightly constrained instances), so the
constrained walk makes progress whenever any admissible swap exists for
the drawn node.  The unconstrained path consumes the RNG exactly as
before.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.deployment import DeploymentPlan
from ..core.evaluation import DeltaEvaluator, MoveBatch
from ..core.problem import DeploymentProblem
from ..core.types import make_rng
from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_constrained_random_plan,
    best_random_plan,
    constrained_warm_start,
    default_limits,
)

#: A proposed move in engine coordinates: ``("swap", node_idx, node_idx)``
#: or ``("relocate", node_idx, instance_idx)``.
Move = Tuple[str, int, int]

#: Default number of candidate moves drawn and batch-scored per block by
#: :class:`SwapLocalSearch` when the budget does not pin ``peek_block``.
#: Plateau scanning (long runs of rejected proposals) batches perfectly;
#: accepted moves cut a block short with only a cheap RNG replay, so a
#: moderate default wins on both phases.
DEFAULT_PEEK_BLOCK = 32


def _propose_move(evaluator: DeltaEvaluator, rng) -> Optional[Move]:
    """Sample a random swap or relocation move.

    The RNG consumption pattern is part of the solvers' reproducibility
    contract (it must keep producing the pre-engine move sequences): the
    relocate branch draws ``rng.random()`` only when a free instance
    exists, node and target picks use ``rng.integers``, and swaps use
    ``rng.choice(n, size=2, replace=False)`` — in exactly this order.
    Single-node problems (no swap population) return a relocation when a
    free instance exists and ``None`` otherwise; the solvers count a
    ``None`` proposal as a stall.
    """
    n_nodes = evaluator.problem.num_nodes
    if n_nodes < 2:
        free = evaluator.free_instance_indices()
        if not free.size:
            return None
        return ("relocate", 0, int(free[int(rng.integers(free.size))]))
    free = evaluator.free_instance_indices()
    if free.size and rng.random() < 0.3:
        node = int(rng.integers(n_nodes))
        target = int(free[int(rng.integers(free.size))])
        return ("relocate", node, target)
    a, b = rng.choice(n_nodes, size=2, replace=False)
    return ("swap", int(a), int(b))


def _admissible_swap_partners(evaluator: DeltaEvaluator,
                              node: int) -> np.ndarray:
    """Node indices whose instance swap with ``node`` satisfies the mask.

    One vectorized mask gather instead of per-candidate ``swap_allowed``
    probes: partner ``c`` qualifies iff ``node`` may sit on ``c``'s
    instance and ``c`` may sit on ``node``'s.
    """
    mask = evaluator.allowed_mask
    asg = evaluator.assignment
    ok = mask[node, asg] & mask[:, asg[node]]
    ok[node] = False
    return np.flatnonzero(ok)


def _propose_constrained_move(evaluator: DeltaEvaluator, rng) -> Optional[Move]:
    """Sample a move the evaluator's allowed mask admits.

    Mirrors :func:`_propose_move` but draws relocate targets from the
    node's *allowed* free instances, and swap partners directly from the
    precomputed admissible-partner set: the first pair draw is kept (so
    lightly constrained walks stay cheap), and when it is inadmissible the
    partner is re-drawn uniformly from the nodes that actually admit a
    swap with either endpoint — no rejection-sampling spin on tightly
    constrained instances.  Returns ``None`` only when neither drawn
    endpoint has any admissible partner at all (e.g. every node pinned) —
    callers treat that as a non-improving proposal.
    """
    n_nodes = evaluator.problem.num_nodes
    free = evaluator.free_instance_indices()
    if free.size and rng.random() < 0.3:
        node = int(rng.integers(n_nodes))
        # Reuse the free array already in hand instead of re-scanning the
        # instance table through free_instance_indices(node).
        targets = free[evaluator.allowed_mask[node, free]]
        if targets.size:
            target = int(targets[int(rng.integers(targets.size))])
            return ("relocate", node, target)
    if n_nodes < 2:
        return None  # no swap population; relocate (above) was the only hope
    a, b = rng.choice(n_nodes, size=2, replace=False)
    if evaluator.swap_allowed(int(a), int(b)):
        return ("swap", int(a), int(b))
    for anchor in (int(a), int(b)):
        partners = _admissible_swap_partners(evaluator, anchor)
        if partners.size:
            partner = int(partners[int(rng.integers(partners.size))])
            return ("swap", anchor, partner)
    return None


def _peek_move(evaluator: DeltaEvaluator, move: Move) -> float:
    kind, first, second = move
    if kind == "swap":
        return evaluator.swap_cost(first, second)
    return evaluator.relocate_cost(first, second)


def _apply_move(evaluator: DeltaEvaluator, move: Move) -> float:
    kind, first, second = move
    if kind == "swap":
        return evaluator.apply_swap(first, second)
    return evaluator.apply_relocate(first, second)


def _draw_proposals(evaluator: DeltaEvaluator, rng, constrained: bool,
                    count: int) -> List[Optional[Move]]:
    """Draw ``count`` proposals through the contract-preserving samplers.

    All proposals are drawn against the current committed state (nothing
    is applied in between), so a rewound generator re-drawing the same
    prefix reproduces the exact same moves.
    """
    propose = _propose_constrained_move if constrained else _propose_move
    return [propose(evaluator, rng) for _ in range(count)]


def _block_costs(evaluator: DeltaEvaluator,
                 proposals: List[Optional[Move]],
                 workers: Optional[int | str]) -> List[Optional[float]]:
    """Scores aligned with ``proposals`` (``None`` rows stay ``None``).

    A single real proposal takes the serial sparse peek (cheaper than a
    batch-of-one kernel dispatch); larger blocks go through one
    :meth:`~repro.core.evaluation.DeltaEvaluator.peek_many` call.  Either
    path returns bit-identical costs.
    """
    rows = [k for k, move in enumerate(proposals) if move is not None]
    costs: List[Optional[float]] = [None] * len(proposals)
    if not rows:
        return costs
    if len(rows) == 1:
        costs[rows[0]] = _peek_move(evaluator, proposals[rows[0]])
        return costs
    batch = MoveBatch.from_moves([proposals[k] for k in rows])
    for k, cost in zip(rows, evaluator.peek_many(batch, workers=workers)):
        costs[k] = float(cost)
    return costs


def _resync_rng(rng, snapshot, evaluator: DeltaEvaluator, constrained: bool,
                consumed: int, drawn: int) -> None:
    """Rewind ``rng`` to ``snapshot`` and replay ``consumed`` proposals.

    After a block of ``drawn`` proposals is cut short at ``consumed``, the
    serial loop would have drawn only the consumed prefix; replaying it
    from the snapshot leaves the stream bit-identical to the serial
    trajectory.  No-op when the whole block was consumed.
    """
    if consumed >= drawn:
        return
    rng.bit_generator.state = snapshot
    _draw_proposals(evaluator, rng, constrained, consumed)


class SwapLocalSearch(DeploymentSolver):
    """Hill climbing over swap and relocate moves, block-scored.

    Args:
        restarts: how many random restarts to perform when time allows.
        seed: RNG seed.
        max_moves_without_improvement: stop a descent after this many
            consecutive non-improving proposals.
        acceptance: ``"first"`` (default) commits the serial-order-first
            improving move of each block — trajectories bit-identical to
            the historical per-move loop; ``"best"`` commits the best
            improving move of each block (opt-in, different trajectories).
    """

    name = "local-search"
    supports_constraints = True
    supports_warm_start = True
    supports_best_improvement = True

    def __init__(self, restarts: int = 3, seed: int | None = None,
                 max_moves_without_improvement: int = 2000,
                 acceptance: str = "first"):
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if acceptance not in ("first", "best"):
            raise ValueError("acceptance must be 'first' or 'best'")
        self.restarts = restarts
        self.max_moves_without_improvement = max_moves_without_improvement
        self.acceptance = acceptance
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(2.0))
        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        engine = self.compiled(graph, costs)
        view = problem.compiled_constraints()
        mask = None if view is None else view.allowed_mask
        constrained = view is not None
        initial_plan = constrained_warm_start(problem, initial_plan)
        peek_block = budget.peek_block or DEFAULT_PEEK_BLOCK

        best_plan: Optional[DeploymentPlan] = initial_plan
        best_cost = (
            engine.evaluate_plan(initial_plan, objective)
            if initial_plan is not None else float("inf")
        )
        iterations = 0

        def target_reached() -> bool:
            # Early-exit contract shared with the other search solvers: a
            # warm re-solve under SearchBudget.target_cost stops the moment
            # the incumbent is good enough instead of burning the rest of
            # the budget polishing it.
            return (budget.target_cost is not None
                    and best_plan is not None
                    and best_cost <= budget.target_cost)

        for restart in range(self.restarts):
            if watch.expired() or target_reached():
                break
            if restart == 0 and initial_plan is not None:
                plan, cost = initial_plan, best_cost
            elif view is None:
                plan, cost = best_random_plan(graph, costs, objective, 10, rng,
                                              workers=budget.workers)
            else:
                plan, cost = best_constrained_random_plan(
                    problem, 10, rng, workers=budget.workers)
            trace.record(watch.elapsed(), min(cost, best_cost if best_plan else cost))
            evaluator = engine.delta_evaluator(plan, objective,
                                               allowed_mask=mask)

            stall = 0
            exit_inner = False
            while (not exit_inner
                   and stall < self.max_moves_without_improvement
                   and not watch.expired()):
                block = peek_block
                if budget.max_iterations is not None:
                    block = min(block, budget.max_iterations - iterations)
                block = max(1, block)
                snapshot = (rng.bit_generator.state if block > 1 else None)
                proposals = _draw_proposals(evaluator, rng, constrained, block)
                costs_block = _block_costs(evaluator, proposals,
                                           budget.workers)

                if self.acceptance == "best":
                    # Opt-in best-improvement: every proposal counts one
                    # iteration, the best improving candidate (serial order
                    # breaks ties) is committed.  No RNG replay — this mode
                    # has no serial-trajectory contract to preserve.
                    iterations += len(proposals)
                    accept_idx: Optional[int] = None
                    accept_cost = cost
                    for j, move in enumerate(proposals):
                        if move is None:
                            continue
                        if costs_block[j] < accept_cost:
                            accept_idx, accept_cost = j, costs_block[j]
                    if accept_idx is None:
                        stall += len(proposals)
                    else:
                        move = proposals[accept_idx]
                        _peek_move(evaluator, move)  # prime the commit memo
                        _apply_move(evaluator, move)
                        cost = accept_cost
                        stall = 0
                        if cost < best_cost:
                            best_plan, best_cost = evaluator.plan(), cost
                            trace.record(watch.elapsed(), cost)
                            if target_reached():
                                exit_inner = True
                    if budget.max_iterations is not None \
                            and iterations >= budget.max_iterations:
                        exit_inner = True
                    continue

                # First-improvement: replay the serial loop's bookkeeping
                # over the batch costs, stopping at the first accepted move
                # (later peeks would be stale) or wherever the serial loop
                # would have stopped; then re-synchronise the RNG stream.
                accept_idx = None
                consumed = 0
                for j, move in enumerate(proposals):
                    if j > 0 and (
                            stall >= self.max_moves_without_improvement
                            or watch.expired()):
                        break
                    consumed = j + 1
                    iterations += 1
                    if move is None:
                        stall += 1
                        if budget.max_iterations is not None \
                                and iterations >= budget.max_iterations:
                            exit_inner = True
                            break
                        continue
                    if costs_block[j] < cost:
                        accept_idx = j
                        break
                    stall += 1
                    if budget.max_iterations is not None \
                            and iterations >= budget.max_iterations:
                        exit_inner = True
                        break
                if snapshot is not None:
                    _resync_rng(rng, snapshot, evaluator, constrained,
                                consumed, len(proposals))
                if accept_idx is not None:
                    move = proposals[accept_idx]
                    candidate_cost = costs_block[accept_idx]
                    _peek_move(evaluator, move)  # prime the commit memo
                    _apply_move(evaluator, move)
                    cost = candidate_cost
                    stall = 0
                    if cost < best_cost:
                        best_plan, best_cost = evaluator.plan(), cost
                        trace.record(watch.elapsed(), cost)
                        if target_reached():
                            exit_inner = True
                    if budget.max_iterations is not None \
                            and iterations >= budget.max_iterations:
                        exit_inner = True
            if cost < best_cost:
                best_plan, best_cost = evaluator.plan(), cost
                trace.record(watch.elapsed(), cost)
            if target_reached():
                break
            if budget.max_iterations is not None and iterations >= budget.max_iterations:
                break

        if best_plan is None:
            if view is None:
                best_plan, best_cost = best_random_plan(
                    graph, costs, objective, 1, rng, workers=budget.workers)
            else:
                best_plan, best_cost = best_constrained_random_plan(
                    problem, 1, rng, workers=budget.workers)
            trace.record(watch.elapsed(), best_cost)

        return SolverResult(
            plan=best_plan, cost=best_cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=False, trace=trace.as_tuples(),
        )


class SimulatedAnnealing(DeploymentSolver):
    """Simulated annealing over the same move set as :class:`SwapLocalSearch`.

    Args:
        initial_temperature: starting temperature relative to the initial
            cost (a fraction; the absolute temperature is ``fraction * cost``).
        cooling: multiplicative cooling factor applied per accepted move.
        seed: RNG seed.
    """

    name = "annealing"
    supports_constraints = True
    supports_warm_start = True

    def __init__(self, initial_temperature: float = 0.3, cooling: float = 0.995,
                 seed: int | None = None):
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(2.0))
        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        engine = self.compiled(graph, costs)
        view = problem.compiled_constraints()
        mask = None if view is None else view.allowed_mask
        constrained = view is not None
        initial_plan = constrained_warm_start(problem, initial_plan)
        # Metropolis interleaves an acceptance draw after every scored
        # candidate, so a pre-drawn block invalidates at the first real
        # proposal; the usable lookahead is one scored candidate per block
        # and the serial per-move loop is the fastest bit-identical
        # schedule.  peek_block > 1 still runs the block machinery (and
        # stays bit-identical through the rewind/replay), it just cannot
        # help — see the module docstring.
        peek_block = budget.peek_block or 1

        if initial_plan is not None:
            plan = initial_plan
            cost = engine.evaluate_plan(plan, objective)
        elif view is None:
            plan, cost = best_random_plan(graph, costs, objective, 10, rng,
                                          workers=budget.workers)
        else:
            plan, cost = best_constrained_random_plan(
                problem, 10, rng, workers=budget.workers)
        evaluator = engine.delta_evaluator(plan, objective, allowed_mask=mask)
        best_plan, best_cost = plan, cost
        trace.record(watch.elapsed(), best_cost)

        temperature = self.initial_temperature * max(cost, 1e-9)
        iterations = 0
        no_move_streak = 0
        exit_walk = False
        while not exit_walk and not watch.expired():
            if budget.max_iterations is not None and iterations >= budget.max_iterations:
                break
            block = peek_block
            if budget.max_iterations is not None:
                block = min(block, budget.max_iterations - iterations)
            if block <= 1:
                # Fast serial path for the default lookahead-1 schedule:
                # the block machinery's per-iteration list allocations are
                # measurable in this hot loop, and a 1-wide block buys
                # nothing.  Same RNG stream and bookkeeping by construction.
                move = (_propose_constrained_move(evaluator, rng)
                        if constrained else _propose_move(evaluator, rng))
                iterations += 1
                if move is None:
                    # Heavily constrained walks can run out of admissible
                    # moves entirely (e.g. every node pinned); stop instead
                    # of spinning through the remaining wall-clock budget.
                    no_move_streak += 1
                    if no_move_streak >= 100:
                        break
                    continue
                no_move_streak = 0
                candidate_cost = _peek_move(evaluator, move)
                primed = True  # the serial peek just filled the commit memo
            else:
                snapshot = rng.bit_generator.state
                proposals = _draw_proposals(evaluator, rng, constrained, block)
                costs_block = _block_costs(evaluator, proposals, budget.workers)

                consumed = 0
                scored: Optional[int] = None
                for j, move in enumerate(proposals):
                    if j > 0 and (
                            watch.expired()
                            or (budget.max_iterations is not None
                                and iterations >= budget.max_iterations)):
                        break
                    consumed = j + 1
                    iterations += 1
                    if move is None:
                        # See the no-admissible-moves note on the serial
                        # path above.
                        no_move_streak += 1
                        if no_move_streak >= 100:
                            exit_walk = True
                            break
                        continue
                    no_move_streak = 0
                    scored = j
                    break  # the acceptance decision consumes the RNG stream
                _resync_rng(rng, snapshot, evaluator, constrained,
                            consumed, len(proposals))
                if scored is None:
                    continue
                move = proposals[scored]
                candidate_cost = costs_block[scored]
                primed = False  # batch peeks bypass the serial commit memo
            delta = candidate_cost - cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                if not primed:
                    _peek_move(evaluator, move)  # prime the commit memo
                _apply_move(evaluator, move)
                cost = candidate_cost
                temperature *= self.cooling
                if cost < best_cost:
                    best_plan, best_cost = evaluator.plan(), cost
                    trace.record(watch.elapsed(), best_cost)
            if budget.target_cost is not None and best_cost <= budget.target_cost:
                break

        return SolverResult(
            plan=best_plan, cost=best_cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=False, trace=trace.as_tuples(),
        )
