"""Swap-based local search and simulated annealing.

These solvers are not part of the paper's evaluated algorithm set; they are
the natural "next lightweight step" after R2 and are included as an ablation
extension (DESIGN.md, experiment A3).  Moves preserve injectivity:

* *swap* — exchange the instances of two mapped nodes;
* *relocate* — move a node to a currently unused (over-allocated) instance.

Candidate moves are scored through the incremental
:class:`~repro.core.evaluation.DeltaEvaluator`: a longest-link candidate
only touches the edges incident to the moved nodes, so proposals cost
O(degree) instead of a full O(|E|) re-evaluation.  The move-sampling code
consumes the RNG exactly as the original implementation did, so results are
reproducible seed for seed across the rewrite.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..core.deployment import DeploymentPlan
from ..core.evaluation import DeltaEvaluator
from ..core.problem import DeploymentProblem
from ..core.types import make_rng
from .base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_random_plan,
)

#: A proposed move in engine coordinates: ``("swap", node_idx, node_idx)``
#: or ``("relocate", node_idx, instance_idx)``.
Move = Tuple[str, int, int]


def _propose_move(evaluator: DeltaEvaluator, rng) -> Move:
    """Sample a random swap or relocation move.

    The RNG consumption pattern is part of the solvers' reproducibility
    contract (it must keep producing the pre-engine move sequences): the
    relocate branch draws ``rng.random()`` only when a free instance
    exists, node and target picks use ``rng.integers``, and swaps use
    ``rng.choice(n, size=2, replace=False)`` — in exactly this order.
    """
    n_nodes = evaluator.problem.num_nodes
    free = evaluator.free_instance_indices()
    if free.size and rng.random() < 0.3:
        node = int(rng.integers(n_nodes))
        target = int(free[int(rng.integers(free.size))])
        return ("relocate", node, target)
    a, b = rng.choice(n_nodes, size=2, replace=False)
    return ("swap", int(a), int(b))


def _peek_move(evaluator: DeltaEvaluator, move: Move) -> float:
    kind, first, second = move
    if kind == "swap":
        return evaluator.swap_cost(first, second)
    return evaluator.relocate_cost(first, second)


def _apply_move(evaluator: DeltaEvaluator, move: Move) -> float:
    kind, first, second = move
    if kind == "swap":
        return evaluator.apply_swap(first, second)
    return evaluator.apply_relocate(first, second)


class SwapLocalSearch(DeploymentSolver):
    """First-improvement hill climbing over swap and relocate moves.

    Args:
        restarts: how many random restarts to perform when time allows.
        seed: RNG seed.
        max_moves_without_improvement: stop a descent after this many
            consecutive non-improving proposals.
    """

    name = "local-search"

    def __init__(self, restarts: int = 3, seed: int | None = None,
                 max_moves_without_improvement: int = 2000):
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.restarts = restarts
        self.max_moves_without_improvement = max_moves_without_improvement
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = budget or SearchBudget.seconds(2.0)
        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        engine = self.compiled(graph, costs)

        best_plan: Optional[DeploymentPlan] = initial_plan
        best_cost = (
            engine.evaluate_plan(initial_plan, objective)
            if initial_plan is not None else float("inf")
        )
        iterations = 0

        for restart in range(self.restarts):
            if watch.expired():
                break
            if restart == 0 and initial_plan is not None:
                plan, cost = initial_plan, best_cost
            else:
                plan, cost = best_random_plan(graph, costs, objective, 10, rng)
            trace.record(watch.elapsed(), min(cost, best_cost if best_plan else cost))
            evaluator = engine.delta_evaluator(plan, objective)

            stall = 0
            while stall < self.max_moves_without_improvement and not watch.expired():
                iterations += 1
                move = _propose_move(evaluator, rng)
                candidate_cost = _peek_move(evaluator, move)
                if candidate_cost < cost:
                    _apply_move(evaluator, move)
                    cost = candidate_cost
                    stall = 0
                    if cost < best_cost:
                        best_plan, best_cost = evaluator.plan(), cost
                        trace.record(watch.elapsed(), cost)
                else:
                    stall += 1
                if budget.max_iterations is not None and iterations >= budget.max_iterations:
                    break
            if cost < best_cost:
                best_plan, best_cost = evaluator.plan(), cost
                trace.record(watch.elapsed(), cost)
            if budget.max_iterations is not None and iterations >= budget.max_iterations:
                break

        if best_plan is None:
            best_plan, best_cost = best_random_plan(graph, costs, objective, 1, rng)
            trace.record(watch.elapsed(), best_cost)

        return SolverResult(
            plan=best_plan, cost=best_cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=False, trace=trace.as_tuples(),
        )

class SimulatedAnnealing(DeploymentSolver):
    """Simulated annealing over the same move set as :class:`SwapLocalSearch`.

    Args:
        initial_temperature: starting temperature relative to the initial
            cost (a fraction; the absolute temperature is ``fraction * cost``).
        cooling: multiplicative cooling factor applied per accepted move.
        seed: RNG seed.
    """

    name = "annealing"

    def __init__(self, initial_temperature: float = 0.3, cooling: float = 0.995,
                 seed: int | None = None):
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = budget or SearchBudget.seconds(2.0)
        rng = make_rng(self._seed)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        engine = self.compiled(graph, costs)

        if initial_plan is not None:
            plan = initial_plan
            cost = engine.evaluate_plan(plan, objective)
        else:
            plan, cost = best_random_plan(graph, costs, objective, 10, rng)
        evaluator = engine.delta_evaluator(plan, objective)
        best_plan, best_cost = plan, cost
        trace.record(watch.elapsed(), best_cost)

        temperature = self.initial_temperature * max(cost, 1e-9)
        iterations = 0
        while not watch.expired():
            if budget.max_iterations is not None and iterations >= budget.max_iterations:
                break
            iterations += 1
            move = _propose_move(evaluator, rng)
            candidate_cost = _peek_move(evaluator, move)
            delta = candidate_cost - cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                _apply_move(evaluator, move)
                cost = candidate_cost
                temperature *= self.cooling
                if cost < best_cost:
                    best_plan, best_cost = evaluator.plan(), cost
                    trace.record(watch.elapsed(), best_cost)
            if budget.target_cost is not None and best_cost <= budget.target_cost:
                break

        return SolverResult(
            plan=best_plan, cost=best_cost, objective=objective,
            solver_name=self.name, solve_time_s=watch.elapsed(),
            iterations=iterations, optimal=False, trace=trace.as_tuples(),
        )
