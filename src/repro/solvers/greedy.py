"""Greedy deployment construction: Algorithms 1 (G1) and 2 (G2) of the paper.

Both algorithms grow a partial deployment one application node at a time,
always picking the cheapest instance link available:

* **G1** only looks at the *explicit* cost of the link it is about to add.
  Its weakness, noted in Sect. 4.3.2, is that mapping a node to an instance
  also fixes the cost of every other communication edge between that node
  and already-mapped neighbors ("implicit links"), which can be expensive.
* **G2** repairs this by charging each candidate the maximum over the
  explicit link cost and all implicit link costs it would introduce.

For the longest-path problem (LPNDP) the paper uses the same greedy
construction as a heuristic (Sect. 4.5.2): the plan is built with the
longest-link logic and then evaluated under the longest-path objective.

Candidate scans run on the dense cost array of the compiled problem
(:mod:`repro.core.evaluation`); ``np.argmin`` returns the first occurrence
of the minimum, which reproduces the historical first-strict-improvement
tie-breaking of the Python loops exactly.

On constrained problems both algorithms are natively constraint-aware:
forced placements (pins, or forbidden sets leaving one instance) are
installed before the first greedy step, and every candidate scan draws only
from each node's allowed instances (per the compiled
:class:`~repro.core.evaluation.CompiledConstraints` view).  Should the
greedy order paint itself into a corner — possible, since cheapest-first is
not a matching algorithm — the construction completes on arbitrary free
instances and the solver re-establishes feasibility itself through the
constraint matching, so the returned plan never needs the base-class
repair.  Unconstrained problems take the historical code path untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.cost_matrix import CostMatrix
from ..core.deployment import DeploymentPlan
from ..core.errors import SolverError
from ..core.evaluation import CompiledConstraints, CompiledProblem, compile_problem
from ..core.problem import DeploymentProblem
from ..core.types import InstanceId, NodeId
from .base import (
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    constrained_warm_start,
    default_limits,
)


def _incumbent_bounded(plan: DeploymentPlan, cost: float,
                       problem: DeploymentProblem,
                       initial_plan: Optional[DeploymentPlan],
                       engine: CompiledProblem) -> Tuple[DeploymentPlan, float]:
    """Apply warm-start upper-bound semantics to a constructed plan.

    A greedy construction cannot be steered by an incumbent, but its
    *result* can be bounded by one: when the caller supplies an
    ``initial_plan`` (e.g. the plan currently deployed, during a drift
    re-solve), the solver never returns anything worse than it.  Violating
    incumbents are repaired up front on constrained problems, mirroring
    the search solvers' warm-start handling.
    """
    if initial_plan is None:
        return plan, cost
    incumbent = constrained_warm_start(problem, initial_plan)
    incumbent_cost = engine.evaluate_plan(incumbent, problem.objective)
    if incumbent_cost < cost:
        return incumbent, incumbent_cost
    return plan, cost


class _GreedyState:
    """Bookkeeping for a growing partial deployment.

    With a constraint ``view``, forced placements are installed eagerly and
    :meth:`allowed_unused_idx` exposes the per-node candidate instances the
    constrained scans draw from.
    """

    def __init__(self, graph: CommunicationGraph, costs: CostMatrix,
                 problem: CompiledProblem | None = None,
                 view: CompiledConstraints | None = None):
        self.graph = graph
        self.costs = costs
        self.problem = problem if problem is not None else compile_problem(graph, costs)
        self.view = view
        self.node_to_instance: Dict[NodeId, InstanceId] = {}
        self.instance_to_node: Dict[InstanceId, NodeId] = {}
        self.unmapped_nodes: Set[NodeId] = set(graph.nodes)
        self.unused_instances: Set[InstanceId] = set(costs.instance_ids)
        if view is not None:
            for row in np.flatnonzero(view.forced_assignment >= 0):
                node = self.problem.node_ids[row]
                instance = self.problem.instance_ids[
                    view.forced_assignment[row]]
                self.assign(node, instance)

    def assign(self, node: NodeId, instance: InstanceId) -> None:
        self.node_to_instance[node] = instance
        self.instance_to_node[instance] = node
        self.unmapped_nodes.discard(node)
        self.unused_instances.discard(instance)

    def unmatched_neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbors of ``node`` in the communication graph not yet mapped."""
        return [n for n in self.graph.neighbors(node) if n in self.unmapped_nodes]

    def frontier_instances(self) -> List[InstanceId]:
        """Instances hosting a node that still has unmatched neighbors."""
        return [
            instance
            for instance, node in self.instance_to_node.items()
            if self.unmatched_neighbors(node)
        ]

    def finished(self) -> bool:
        return not self.unmapped_nodes

    def unused_indices(self, ordered: bool = False) -> np.ndarray:
        """Dense indices of the unused instances.

        Set-iteration order by default (matching the unconstrained scans'
        tie-breaking); ``ordered=True`` sorts by instance id, which the
        seeding steps use for deterministic first-allowed picks.
        """
        problem = self.problem
        source = sorted(self.unused_instances) if ordered \
            else self.unused_instances
        return np.fromiter(
            (problem.instance_idx(v) for v in source),
            dtype=np.intp, count=len(self.unused_instances),
        )

    def allowed_unused_idx(self, node: NodeId,
                           unused_idx: np.ndarray) -> np.ndarray:
        """Subset of ``unused_idx`` the constraints allow for ``node``."""
        if self.view is None:
            return unused_idx
        return self.view.filter_instances(self.problem.node_idx(node),
                                          unused_idx)

    def plan(self) -> DeploymentPlan:
        return DeploymentPlan(self.node_to_instance)


def _cheapest_link(problem: CompiledProblem,
                   sources: List[InstanceId],
                   destinations: Set[InstanceId]) -> Optional[Tuple[InstanceId, InstanceId, float]]:
    """Cheapest directed link from ``sources`` into ``destinations``.

    Scans the dense cost array in one vectorized pass.  The flattened
    ``argmin`` walks sources in their given order and destinations in their
    iteration order, so ties resolve identically to the original nested
    loop with a strict-improvement comparison.
    """
    if not sources or not destinations:
        return None
    dest_list = list(destinations)
    src_idx = np.fromiter((problem.instance_idx(u) for u in sources),
                          dtype=np.intp, count=len(sources))
    dst_idx = np.fromiter((problem.instance_idx(v) for v in dest_list),
                          dtype=np.intp, count=len(dest_list))
    sub = problem.cost_array[np.ix_(src_idx, dst_idx)].copy()
    sub[src_idx[:, None] == dst_idx[None, :]] = np.inf
    flat = int(np.argmin(sub))
    best_cost = float(sub.ravel()[flat])
    if not np.isfinite(best_cost):
        return None
    u = sources[flat // len(dest_list)]
    v = dest_list[flat % len(dest_list)]
    return (u, v, best_cost)


def _seed_state(state: _GreedyState) -> None:
    """Place the first edge of a (new) connected component.

    Following lines 1–3 of Algorithms 1 and 2: find the globally cheapest
    available instance link and map an arbitrary unmapped communication edge
    onto it.  When only isolated nodes remain, they are placed one by one on
    arbitrary free instances (their placement cannot affect the objective).
    """
    graph = state.graph
    unmapped_edges = [
        (x, y) for x, y in graph.edges
        if x in state.unmapped_nodes and y in state.unmapped_nodes
    ]
    free = sorted(state.unused_instances)
    if not unmapped_edges:
        # Only isolated (or already partially covered) nodes remain.
        node = min(state.unmapped_nodes)
        state.assign(node, free[0])
        return
    best = _cheapest_link(state.problem, free, set(free))
    if best is None:
        raise SolverError("not enough free instances to seed the deployment")
    u0, v0, _ = best
    x, y = unmapped_edges[0]
    state.assign(x, u0)
    state.assign(y, v0)


def _seed_state_constrained(state: _GreedyState) -> bool:
    """Constraint-aware twin of :func:`_seed_state`.

    Maps the first unmapped communication edge onto the cheapest free
    instance link both endpoints are allowed to use (isolated nodes go to
    their first allowed free instance).  Returns ``False`` on a dead end —
    the constrained greedy then completes through the matching fallback.
    """
    graph, problem = state.graph, state.problem
    unmapped_edges = [
        (x, y) for x, y in graph.edges
        if x in state.unmapped_nodes and y in state.unmapped_nodes
    ]
    free_idx = state.unused_indices(ordered=True)
    if not unmapped_edges:
        node = min(state.unmapped_nodes)
        allowed = state.allowed_unused_idx(node, free_idx)
        if not allowed.size:
            return False
        state.assign(node, problem.instance_ids[int(allowed[0])])
        return True
    x, y = unmapped_edges[0]
    src_idx = state.allowed_unused_idx(x, free_idx)
    dst_idx = state.allowed_unused_idx(y, free_idx)
    if not src_idx.size or not dst_idx.size:
        return False
    sub = problem.cost_array[np.ix_(src_idx, dst_idx)].copy()
    sub[src_idx[:, None] == dst_idx[None, :]] = np.inf
    flat = int(np.argmin(sub))
    if not np.isfinite(sub.ravel()[flat]):
        return False
    u0 = int(src_idx[flat // dst_idx.size])
    v0 = int(dst_idx[flat % dst_idx.size])
    state.assign(x, problem.instance_ids[u0])
    state.assign(y, problem.instance_ids[v0])
    return True


def _cheapest_allowed_expansion(state: _GreedyState
                                ) -> Optional[Tuple[NodeId, InstanceId]]:
    """G1's constrained expansion step.

    Scans every (frontier anchor, unmatched neighbor ``w``, free instance
    allowed for ``w``) candidate and returns the pair realising the
    cheapest explicit link — the same explicit-cost-only criterion as the
    unconstrained G1, restricted to the allowed region.
    """
    problem = state.problem
    unused_idx = state.unused_indices()
    if not unused_idx.size:
        return None
    best_cost = np.inf
    best: Optional[Tuple[NodeId, InstanceId]] = None
    for u in state.frontier_instances():
        u_idx = problem.instance_idx(u)
        anchor = state.instance_to_node[u]
        for w in state.unmatched_neighbors(anchor):
            candidates = state.allowed_unused_idx(w, unused_idx)
            if not candidates.size:
                continue
            row = problem.cost_array[u_idx, candidates]
            k = int(np.argmin(row))
            if row[k] < best_cost:
                best_cost = float(row[k])
                best = (w, problem.instance_ids[int(candidates[k])])
    return best


def _finalize_constrained(state: _GreedyState,
                          problem: DeploymentProblem) -> DeploymentPlan:
    """Complete a (possibly dead-ended) constrained construction feasibly.

    Remaining unmapped nodes are parked on arbitrary free instances; if the
    resulting plan violates a constraint (only possible after a dead end),
    the solver re-establishes feasibility itself through the
    minimum-change constraint matching — natively, not via the base-class
    repair, so ``repair_applied`` stays ``False``.
    """
    free = sorted(state.unused_instances)
    for node in sorted(state.unmapped_nodes):
        state.assign(node, free.pop(0))
    plan = state.plan()
    constraints = problem.constraints
    if constraints is not None and not constraints.satisfied_by(plan):
        plan = constraints.repair(plan, problem.costs.instance_ids)
    return plan


class GreedyG1(DeploymentSolver):
    """Algorithm 1: greedy expansion by cheapest explicit link."""

    name = "G1"
    supports_constraints = True
    supports_warm_start = True

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.unlimited())
        watch = Stopwatch(budget)
        engine = self.compiled(graph, costs)
        view = problem.compiled_constraints()
        state = _GreedyState(graph, costs, engine, view)
        iterations = 0
        dead_end = False

        if view is None:
            _seed_state(state)
            while not state.finished():
                iterations += 1
                frontier = state.frontier_instances()
                best = _cheapest_link(engine, frontier, state.unused_instances)
                if best is None:
                    # Disconnected remainder: start a new component.
                    _seed_state(state)
                    continue
                u_min, v_min, _ = best
                anchor_node = state.instance_to_node[u_min]
                w = state.unmatched_neighbors(anchor_node)[0]
                state.assign(w, v_min)
        else:
            if not state.finished() and not state.frontier_instances():
                dead_end = not _seed_state_constrained(state)
            while not dead_end and not state.finished():
                iterations += 1
                choice = _cheapest_allowed_expansion(state)
                if choice is None:
                    # New component — or a node whose allowed instances are
                    # all taken (resolved by the matching fallback below).
                    if not _seed_state_constrained(state):
                        dead_end = True
                    continue
                state.assign(*choice)

        if view is None:
            plan = state.plan()
        else:
            plan = _finalize_constrained(state, problem)
        cost = engine.evaluate_plan(plan, objective)
        plan, cost = _incumbent_bounded(plan, cost, problem, initial_plan,
                                        engine)
        return SolverResult(
            plan=plan, cost=cost, objective=objective, solver_name=self.name,
            solve_time_s=watch.elapsed(), iterations=iterations, optimal=False,
            trace=((watch.elapsed(), cost),),
        )


class GreedyG2(DeploymentSolver):
    """Algorithm 2: greedy expansion accounting for implicit link costs."""

    name = "G2"
    supports_constraints = True
    supports_warm_start = True

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.unlimited())
        watch = Stopwatch(budget)
        engine = self.compiled(graph, costs)
        view = problem.compiled_constraints()
        state = _GreedyState(graph, costs, engine, view)
        iterations = 0
        dead_end = False

        if view is None:
            _seed_state(state)
        elif not state.finished() and not state.frontier_instances():
            dead_end = not _seed_state_constrained(state)

        while not dead_end and not state.finished():
            iterations += 1
            choice = self._best_candidate(state)
            if choice is None:
                if view is None:
                    _seed_state(state)
                elif not _seed_state_constrained(state):
                    dead_end = True
                continue
            w_min, v_min = choice
            state.assign(w_min, v_min)

        if view is None:
            plan = state.plan()
        else:
            plan = _finalize_constrained(state, problem)
        cost = engine.evaluate_plan(plan, objective)
        plan, cost = _incumbent_bounded(plan, cost, problem, initial_plan,
                                        engine)
        return SolverResult(
            plan=plan, cost=cost, objective=objective, solver_name=self.name,
            solve_time_s=watch.elapsed(), iterations=iterations, optimal=False,
            trace=((watch.elapsed(), cost),),
        )

    def _best_candidate(self, state: _GreedyState) -> Optional[Tuple[NodeId, InstanceId]]:
        """Pick the (node, instance) addition minimising explicit + implicit cost.

        For a candidate that maps node ``w`` (an unmatched neighbor of an
        already-mapped node hosted on instance ``u``) onto free instance
        ``v``, the charged cost is the maximum of ``CL(u, v)`` and the cost
        of every communication edge between ``w`` and any already-mapped
        node ``x`` evaluated in the direction the edge specifies.  The scan
        over free instances is a vectorized max over cost-array rows and
        columns; the per-``(u, w)`` ``argmin`` keeps first-occurrence
        tie-breaking, so the construction matches the historical triple
        loop move for move.  On constrained problems each node's scan is
        restricted to its allowed free instances (same order, so the
        tie-breaking is the restriction of the unconstrained one).
        """
        graph, problem = state.graph, state.problem
        cost_array = problem.cost_array
        free_list = list(state.unused_instances)
        if not free_list:
            return None
        free_idx = np.fromiter((problem.instance_idx(v) for v in free_list),
                               dtype=np.intp, count=len(free_list))
        best_cost = float("inf")
        best: Optional[Tuple[NodeId, InstanceId]] = None
        for u in state.frontier_instances():
            u_idx = problem.instance_idx(u)
            anchor = state.instance_to_node[u]
            for w in state.unmatched_neighbors(anchor):
                w_free_idx = state.allowed_unused_idx(w, free_idx)
                if not w_free_idx.size:
                    continue
                candidate = cost_array[u_idx, w_free_idx].copy()
                for x in graph.successors(w):
                    mapped = state.node_to_instance.get(x)
                    if mapped is not None:
                        np.maximum(candidate,
                                   cost_array[w_free_idx, problem.instance_idx(mapped)],
                                   out=candidate)
                for x in graph.predecessors(w):
                    mapped = state.node_to_instance.get(x)
                    if mapped is not None:
                        np.maximum(candidate,
                                   cost_array[problem.instance_idx(mapped), w_free_idx],
                                   out=candidate)
                k = int(np.argmin(candidate))
                if candidate[k] < best_cost:
                    best_cost = float(candidate[k])
                    best = (w, problem.instance_ids[int(w_free_idx[k])])
        return best
