"""Common interfaces shared by all node-deployment solvers.

A solver receives a :class:`~repro.core.problem.DeploymentProblem` (graph +
costs + objective + optional placement constraints) and returns a
:class:`SolverResult` containing the best deployment plan found, the plan's
cost, a convergence trace and whether optimality was proven.  Solvers
respect a :class:`SearchBudget` (time limit and/or iteration limit) so the
benchmarks can compare them under equal conditions, as the paper does
(Sect. 6.5).

The public entry point is :meth:`DeploymentSolver.solve`, which takes the
problem object; the historical ``solve(graph, costs, objective=...)``
positional form is still accepted through a deprecation shim that wraps the
arguments into a problem and warns.
"""

from __future__ import annotations

import abc
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.cost_matrix import CostMatrix
from ..core.deployment import DeploymentPlan, provider_order_plan
from ..core.errors import SolverError
from ..core.evaluation import (
    CompiledProblem,
    ParallelEvaluator,
    compile_problem,
    resolve_workers,
    workers_spec,
)
from ..core.parallel import ProcessPoolEvaluator
from ..core.objectives import Objective
from ..core.problem import DeploymentProblem
from ..core.types import make_rng

#: Message of the deprecation warning emitted by the legacy ``solve`` form;
#: the pytest configuration filters on its prefix to keep tier-1 clean.
_LEGACY_SOLVE_MESSAGE = (
    "Passing (graph, costs, objective) to DeploymentSolver.solve() is "
    "deprecated; construct a DeploymentProblem and call "
    "solve(problem, budget=..., initial_plan=...) instead"
)


@dataclass(frozen=True)
class SearchBudget:
    """Limits on how long a solver may search, plus execution knobs.

    Attributes:
        time_limit_s: wall-clock limit in seconds (``None`` = unlimited).
        max_iterations: iteration limit whose meaning is solver-specific
            (random plans generated, branch-and-bound nodes, CP backtracks).
        target_cost: stop early once a plan at or below this cost is found.
        workers: evaluation parallelism for batch-scoring solvers (random
            search batches, MIP candidate rounding, restart repopulation):
            ``None`` keeps the serial path, ``"auto"`` uses one thread per
            available CPU, an explicit positive ``int`` pins the thread
            count, and ``"procs"`` / ``"procs:auto"`` / ``"procs:N"``
            scores through a shared-memory worker-process pool (see
            :class:`~repro.core.parallel.ProcessPoolEvaluator`; falls back
            to threads where fork or shared memory is unavailable).
            Results are bit-identical at any setting (see
            :class:`~repro.core.evaluation.ParallelEvaluator`); only the
            wall-clock changes, so seeded runs stay reproducible.
        peek_block: neighborhood block size for the move-based searches
            (local search, annealing): how many candidate moves are drawn
            and scored per :meth:`~repro.core.evaluation.DeltaEvaluator.peek_many`
            batch.  ``None`` keeps each solver's default, ``1`` disables
            batching (the pure per-move loop).  Trajectories are
            bit-identical at any setting — the solvers select the
            serial-order-first admissible move and re-synchronise their
            RNG stream — so this knob, like ``workers``, only moves
            wall-clock.
    """

    time_limit_s: Optional[float] = None
    max_iterations: Optional[int] = None
    target_cost: Optional[float] = None
    workers: Optional[int | str] = None
    peek_block: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None:
            resolve_workers(self.workers)  # validate eagerly; resolve lazily
        if self.peek_block is not None:
            if (not isinstance(self.peek_block, int)
                    or isinstance(self.peek_block, bool)
                    or self.peek_block < 1):
                raise SolverError("peek_block must be a positive integer")

    @classmethod
    def unlimited(cls) -> "SearchBudget":
        """A budget with no limits (use with care)."""
        return cls()

    def has_limits(self) -> bool:
        """Whether any stopping limit (time, iterations, target) is set."""
        return (self.time_limit_s is not None
                or self.max_iterations is not None
                or self.target_cost is not None)

    @classmethod
    def seconds(cls, seconds: float) -> "SearchBudget":
        """A pure time budget."""
        return cls(time_limit_s=seconds)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "time_limit_s": self.time_limit_s,
            "max_iterations": self.max_iterations,
            "target_cost": self.target_cost,
            "workers": self.workers,
            "peek_block": self.peek_block,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchBudget":
        """Rebuild a budget from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise SolverError(
                f"search budget payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return cls(
            time_limit_s=payload.get("time_limit_s"),
            max_iterations=payload.get("max_iterations"),
            target_cost=payload.get("target_cost"),
            workers=payload.get("workers"),
            peek_block=payload.get("peek_block"),
        )


class Stopwatch:
    """Tracks elapsed time against an optional deadline."""

    def __init__(self, budget: SearchBudget):
        self._budget = budget
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since the solver started."""
        return time.perf_counter() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when the budget has no time limit."""
        if self._budget.time_limit_s is None:
            return None
        return self._budget.time_limit_s - self.elapsed()

    def expired(self) -> bool:
        """Whether the time limit has been reached."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0


@dataclass
class ConvergenceTrace:
    """Incumbent cost over time, for convergence plots (Figs. 6, 7, 9)."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, elapsed_s: float, cost: float) -> None:
        """Record a new incumbent if it improves on the previous one."""
        if not self.points or cost < self.points[-1][1]:
            self.points.append((elapsed_s, cost))

    def best_cost(self) -> Optional[float]:
        """Cost of the last (best) incumbent, if any."""
        return self.points[-1][1] if self.points else None

    def cost_at(self, elapsed_s: float) -> Optional[float]:
        """Best cost known at a given point in time."""
        best = None
        for when, cost in self.points:
            if when <= elapsed_s:
                best = cost
            else:
                break
        return best

    def as_tuples(self) -> Tuple[Tuple[float, float], ...]:
        """Immutable copy of the trace points."""
        return tuple(self.points)


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver run."""

    plan: DeploymentPlan
    cost: float
    objective: Objective
    solver_name: str
    solve_time_s: float
    iterations: int
    optimal: bool
    trace: Tuple[Tuple[float, float], ...] = ()
    #: Proven lower bound on the optimal cost, when the solver derives one
    #: (the CP solver's degree-based bound, a MIP's best LP bound).
    lower_bound: Optional[float] = None
    #: Whether the *base class's* repair fallback fired after the search
    #: to satisfy placement constraints.  Always ``False`` for natively
    #: constraint-aware solvers (which guarantee feasibility themselves,
    #: even on search dead-ends); ``True`` marks the legacy fallback that
    #: post-hoc repairs a constraint-blind search result.
    repair_applied: bool = False

    def improvement_over(self, baseline_cost: float) -> float:
        """Relative improvement of this result over a baseline cost.

        Raises:
            ValueError: if ``baseline_cost`` is zero or negative.  A
                non-positive baseline makes the ratio meaningless, and the
                old convention of returning ``0.0`` silently hid
                regressions against degenerate baselines.
        """
        if baseline_cost <= 0:
            raise ValueError(
                f"baseline_cost must be positive, got {baseline_cost!r}"
            )
        return max(0.0, (baseline_cost - self.cost) / baseline_cost)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (plan included)."""
        return {
            "plan": self.plan.to_dict(),
            "cost": self.cost,
            "objective": self.objective.value,
            "solver_name": self.solver_name,
            "solve_time_s": self.solve_time_s,
            "iterations": self.iterations,
            "optimal": self.optimal,
            "trace": [[when, cost] for when, cost in self.trace],
            "lower_bound": self.lower_bound,
            "repair_applied": self.repair_applied,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolverResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                plan=DeploymentPlan.from_dict(payload["plan"]),
                cost=payload["cost"],
                objective=Objective(payload["objective"]),
                solver_name=payload["solver_name"],
                solve_time_s=payload["solve_time_s"],
                iterations=payload["iterations"],
                optimal=payload["optimal"],
                trace=tuple((when, cost)
                            for when, cost in payload.get("trace", [])),
                lower_bound=payload.get("lower_bound"),
                repair_applied=payload.get("repair_applied", False),
            )
        except (KeyError, TypeError) as exc:
            raise SolverError(
                f"malformed solver result payload: {exc}"
            ) from exc


class DeploymentSolver(abc.ABC):
    """Base class for all node-deployment solvers.

    Subclasses implement :meth:`_solve`, which receives a validated
    :class:`~repro.core.problem.DeploymentProblem`.  The public
    :meth:`solve` entry point normalises arguments (including the
    deprecated ``solve(graph, costs, objective=...)`` form), checks that
    the solver supports the problem's objective, and enforces placement
    constraints on the returned plan.
    """

    #: Human-readable solver name used in results and benchmark output.
    name: str = "solver"

    #: Objectives the solver can optimise.
    supported_objectives: Tuple[Objective, ...] = (
        Objective.LONGEST_LINK,
        Objective.LONGEST_PATH,
    )

    #: Objective assumed by the deprecated positional ``solve`` form when
    #: the caller does not name one.
    default_objective: Objective = Objective.LONGEST_LINK

    #: Whether this solver class enforces placement constraints natively
    #: during the search (drawing candidates only from the allowed region)
    #: instead of relying on the base class's post-hoc repair.  Registered
    #: through :class:`~repro.solvers.registry.SolverSpec` as a capability.
    supports_constraints: bool = False

    #: Whether this solver class makes productive use of ``initial_plan``:
    #: search solvers start from it, exact solvers seed their incumbent /
    #: initial upper bound with it, constructive solvers treat its cost as
    #: an upper bound on the result they return.  This is what makes
    #: re-solving after a small cost drift cost a fraction of a cold solve.
    #: Registered through :class:`~repro.solvers.registry.SolverSpec` as a
    #: capability; a legacy solver that ignores ``initial_plan`` should
    #: leave this ``False`` so the watch loop knows a warm start buys
    #: nothing.
    supports_warm_start: bool = False

    #: Whether this solver class offers an opt-in best-improvement
    #: acceptance mode (scanning a whole candidate block and committing
    #: the best improving move instead of the serial-order first one).
    #: Registered through :class:`~repro.solvers.registry.SolverSpec` as a
    #: capability so clients can discover it before configuring a solver.
    supports_best_improvement: bool = False

    def handles_constraints(self, problem: DeploymentProblem) -> bool:
        """Whether this *instance* natively enforces ``problem``'s constraints.

        Defaults to the class capability; solvers with a legacy reference
        path (``use_engine=False``) override this to fall back to the
        repair on that path.
        """
        return self.supports_constraints

    def check_problem(self, problem: DeploymentProblem) -> None:
        """Validate that this solver can work on ``problem``.

        Feasibility (enough instances, acyclicity for longest path) is
        already guaranteed by :class:`DeploymentProblem` itself; this check
        only adds the solver-specific objective capability.
        """
        if problem.objective not in self.supported_objectives:
            raise SolverError(
                f"{self.name} does not support objective "
                f"{problem.objective.value}"
            )

    def compiled(self, graph: CommunicationGraph,
                 costs: CostMatrix) -> CompiledProblem:
        """The vectorized evaluation engine for a problem instance.

        Compilations are shared process-wide (see
        :func:`repro.core.evaluation.compile_problem`), so portfolio members
        solving the same instance reuse one lowering.
        """
        return compile_problem(graph, costs)

    def solve(self, problem: DeploymentProblem | CommunicationGraph,
              costs: CostMatrix | None = None,
              objective: Objective | None = None,
              budget: SearchBudget | None = None,
              initial_plan: DeploymentPlan | None = None) -> SolverResult:
        """Search for a low-cost deployment plan.

        Args:
            problem: the deployment problem to solve.  Passing a
                :class:`~repro.core.communication_graph.CommunicationGraph`
                here (with ``costs`` and optionally ``objective``) is the
                deprecated legacy form; it still works but emits a
                :class:`DeprecationWarning`.
            costs: legacy form only — pairwise costs over instances.
            objective: legacy form only — the cost function to minimise.
            budget: optional time / iteration limits.
            initial_plan: optional warm-start plan.

        Returns:
            The best plan found, its cost, and bookkeeping information.
            When the problem carries placement constraints, a natively
            constraint-aware solver (``handles_constraints``) must return
            a feasible plan — the base class asserts it; for legacy
            solvers the plan is repaired to satisfy the constraints and
            re-scored (``optimal`` is cleared and ``repair_applied`` set
            if the repair changed the plan).
        """
        if isinstance(problem, DeploymentProblem):
            if costs is not None or objective is not None:
                raise TypeError(
                    "solve(problem, ...) does not accept costs/objective; "
                    "they are part of the DeploymentProblem"
                )
        else:
            warnings.warn(_LEGACY_SOLVE_MESSAGE, DeprecationWarning,
                          stacklevel=2)
            if costs is None:
                raise TypeError(
                    "legacy solve(graph, costs, ...) form requires a cost "
                    "matrix as the second argument"
                )
            chosen = objective if objective is not None else self.default_objective
            if chosen not in self.supported_objectives:
                raise SolverError(
                    f"{self.name} does not support objective {chosen.value}"
                )
            problem = DeploymentProblem(problem, costs, objective=chosen)
        self.check_problem(problem)
        result = self._solve(problem, budget=budget, initial_plan=initial_plan)
        constraints = problem.constraints
        if constraints is not None:
            if self.handles_constraints(problem):
                violations = constraints.violations(result.plan)
                if violations:
                    raise SolverError(
                        f"{self.name} declares native constraint support "
                        f"but returned a violating plan: "
                        + "; ".join(violations[:3])
                    )
            elif not constraints.satisfied_by(result.plan):
                plan = constraints.repair(result.plan,
                                          problem.costs.instance_ids)
                cost = problem.evaluate(plan)
                trace = result.trace
                if trace and cost > trace[-1][1]:
                    # The repaired plan is the one actually returned; close
                    # the convergence trace with its honest (possibly
                    # worse) cost.
                    trace = trace + ((result.solve_time_s, cost),)
                result = replace(result, plan=plan, cost=cost, optimal=False,
                                 trace=trace, repair_applied=True)
        return result

    @abc.abstractmethod
    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        """Solver-specific search over a validated problem instance."""


def random_plans(graph: CommunicationGraph, costs: CostMatrix, count: int,
                 rng: np.random.Generator | int | None = None) -> List[DeploymentPlan]:
    """Generate ``count`` uniformly random deployment plans."""
    generator = make_rng(rng)
    instances = list(costs.instance_ids)
    return [
        DeploymentPlan.random(graph.nodes, instances, generator)
        for _ in range(count)
    ]


def default_limits(budget: Optional[SearchBudget],
                   default: SearchBudget) -> SearchBudget:
    """Solver-side budget defaulting, aware of the ``workers`` knob.

    Replaces the ``budget or default`` idiom: a missing budget becomes
    ``default`` as before, and a budget carrying *only* execution knobs
    (``workers`` and/or ``peek_block``, no time / iteration / target
    limit) adopts ``default``'s limits while keeping the knobs —
    otherwise a session-level ``workers`` or ``peek_block`` default would
    silently disable a solver's default time cap (and purely time-bounded
    searches such as simulated annealing would never stop).  A budget with
    any explicit limit passes through untouched.
    """
    if budget is None:
        return default
    if ((budget.workers is not None or budget.peek_block is not None)
            and not budget.has_limits()):
        return replace(default, workers=budget.workers,
                       peek_block=budget.peek_block)
    return budget


def scoring_engine(
    engine: CompiledProblem, workers: Optional[int | str]
) -> "CompiledProblem | ParallelEvaluator | ProcessPoolEvaluator":
    """The batch scorer a solver should use under a budget's ``workers``.

    Returns ``engine`` untouched when ``workers`` is ``None`` (the serial
    path, zero overhead), a
    :class:`~repro.core.parallel.ProcessPoolEvaluator` for the
    ``"procs[:N]"`` spec (shared-memory worker processes, degrading to
    threads where unavailable), and a
    :class:`~repro.core.evaluation.ParallelEvaluator` otherwise.  All
    expose the same ``evaluate_batch`` / ``evaluate_plans`` surface and
    return bit-identical costs, so callers can treat the result as a
    drop-in engine.
    """
    if workers is None:
        return engine
    mode, count = workers_spec(workers)
    if mode == "procs":
        return ProcessPoolEvaluator(engine, workers=count)
    return ParallelEvaluator(engine, workers=count)


def best_random_plan(graph: CommunicationGraph, costs: CostMatrix,
                     objective: Objective, count: int,
                     rng: np.random.Generator | int | None = None,
                     workers: Optional[int | str] = None
                     ) -> Tuple[DeploymentPlan, float]:
    """Best of ``count`` random plans; used to bootstrap exact solvers.

    The paper seeds its solvers with the best of 10 random deployments
    (Sect. 6.3.1).  Plans are drawn one by one (keeping the RNG stream
    identical to older releases) but scored in a single batch through the
    vectorized evaluation engine; ties keep the earliest plan, matching the
    previous strict-improvement loop.  ``workers`` routes the batch through
    a :class:`~repro.core.evaluation.ParallelEvaluator` (bit-identical).
    """
    generator = make_rng(rng)
    plans = random_plans(graph, costs, count, generator)
    if not plans:
        raise SolverError("count must be positive to draw a random plan")
    scorer = scoring_engine(compile_problem(graph, costs), workers)
    plan_costs = scorer.evaluate_plans(plans, objective)
    best_index = int(np.argmin(plan_costs))
    return plans[best_index], float(plan_costs[best_index])


def best_constrained_random_plan(problem: DeploymentProblem, count: int,
                                 rng: np.random.Generator | int | None = None,
                                 workers: Optional[int | str] = None
                                 ) -> Tuple[DeploymentPlan, float]:
    """Best of ``count`` random *feasible* plans of a constrained problem.

    The constrained twin of :func:`best_random_plan`: assignments are drawn
    through the problem's compiled constraint view (so every sample honours
    pins and forbidden placements) and scored in one batch.  Falls back to
    :func:`best_random_plan` for unconstrained problems.
    """
    view = problem.compiled_constraints()
    if view is None:
        return best_random_plan(problem.graph, problem.costs,
                                problem.objective, count, rng, workers=workers)
    if count <= 0:
        raise SolverError("count must be positive to draw a random plan")
    engine = problem.compiled()
    assignments = view.random_assignments(count, make_rng(rng))
    plan_costs = scoring_engine(engine, workers).evaluate_batch(
        assignments, problem.objective)
    best_index = int(np.argmin(plan_costs))
    return (engine.plan_from_assignment(assignments[best_index]),
            float(plan_costs[best_index]))


def constrained_warm_start(problem: DeploymentProblem,
                           initial_plan: Optional[DeploymentPlan]
                           ) -> Optional[DeploymentPlan]:
    """A caller-supplied warm start made safe for a native constrained search.

    Constraint-aware solvers search only the allowed region, so a violating
    warm start is repaired up front (instead of silently dropping it or
    poisoning the search); feasible or absent warm starts pass through
    untouched, as does everything on unconstrained problems.
    """
    constraints = problem.constraints
    if (constraints is None or initial_plan is None
            or constraints.satisfied_by(initial_plan)):
        return initial_plan
    return constraints.repair(initial_plan, problem.costs.instance_ids)


def default_plan(graph: CommunicationGraph, costs: CostMatrix) -> DeploymentPlan:
    """The default deployment: nodes mapped to instances in provider order.

    This is the baseline every experiment in Sect. 6.4 compares against.
    """
    return provider_order_plan(graph.nodes, costs.instance_ids)
