"""Common interfaces shared by all node-deployment solvers.

A solver receives a communication graph, a cost matrix over allocated
instances and an objective, and returns a :class:`SolverResult` containing
the best deployment plan found, the plan's cost, a convergence trace and
whether optimality was proven.  Solvers respect a :class:`SearchBudget`
(time limit and/or iteration limit) so the benchmarks can compare them under
equal conditions, as the paper does (Sect. 6.5).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.communication_graph import CommunicationGraph
from ..core.cost_matrix import CostMatrix
from ..core.deployment import DeploymentPlan
from ..core.errors import InfeasibleProblemError, SolverError
from ..core.evaluation import CompiledProblem, compile_problem
from ..core.objectives import Objective
from ..core.types import make_rng


@dataclass(frozen=True)
class SearchBudget:
    """Limits on how long a solver may search.

    Attributes:
        time_limit_s: wall-clock limit in seconds (``None`` = unlimited).
        max_iterations: iteration limit whose meaning is solver-specific
            (random plans generated, branch-and-bound nodes, CP backtracks).
        target_cost: stop early once a plan at or below this cost is found.
    """

    time_limit_s: Optional[float] = None
    max_iterations: Optional[int] = None
    target_cost: Optional[float] = None

    @classmethod
    def unlimited(cls) -> "SearchBudget":
        """A budget with no limits (use with care)."""
        return cls()

    @classmethod
    def seconds(cls, seconds: float) -> "SearchBudget":
        """A pure time budget."""
        return cls(time_limit_s=seconds)


class Stopwatch:
    """Tracks elapsed time against an optional deadline."""

    def __init__(self, budget: SearchBudget):
        self._budget = budget
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since the solver started."""
        return time.perf_counter() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when the budget has no time limit."""
        if self._budget.time_limit_s is None:
            return None
        return self._budget.time_limit_s - self.elapsed()

    def expired(self) -> bool:
        """Whether the time limit has been reached."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0


@dataclass
class ConvergenceTrace:
    """Incumbent cost over time, for convergence plots (Figs. 6, 7, 9)."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, elapsed_s: float, cost: float) -> None:
        """Record a new incumbent if it improves on the previous one."""
        if not self.points or cost < self.points[-1][1]:
            self.points.append((elapsed_s, cost))

    def best_cost(self) -> Optional[float]:
        """Cost of the last (best) incumbent, if any."""
        return self.points[-1][1] if self.points else None

    def cost_at(self, elapsed_s: float) -> Optional[float]:
        """Best cost known at a given point in time."""
        best = None
        for when, cost in self.points:
            if when <= elapsed_s:
                best = cost
            else:
                break
        return best

    def as_tuples(self) -> Tuple[Tuple[float, float], ...]:
        """Immutable copy of the trace points."""
        return tuple(self.points)


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver run."""

    plan: DeploymentPlan
    cost: float
    objective: Objective
    solver_name: str
    solve_time_s: float
    iterations: int
    optimal: bool
    trace: Tuple[Tuple[float, float], ...] = ()
    #: Proven lower bound on the optimal cost, when the solver derives one
    #: (the CP solver's degree-based bound, a MIP's best LP bound).
    lower_bound: Optional[float] = None

    def improvement_over(self, baseline_cost: float) -> float:
        """Relative improvement of this result over a baseline cost."""
        if baseline_cost <= 0:
            return 0.0
        return max(0.0, (baseline_cost - self.cost) / baseline_cost)


class DeploymentSolver(abc.ABC):
    """Base class for all node-deployment solvers."""

    #: Human-readable solver name used in results and benchmark output.
    name: str = "solver"

    #: Objectives the solver can optimise.
    supported_objectives: Tuple[Objective, ...] = (
        Objective.LONGEST_LINK,
        Objective.LONGEST_PATH,
    )

    def check_problem(self, graph: CommunicationGraph, costs: CostMatrix,
                      objective: Objective) -> None:
        """Validate a problem instance before solving it."""
        if objective not in self.supported_objectives:
            raise SolverError(
                f"{self.name} does not support objective {objective.value}"
            )
        if costs.num_instances < graph.num_nodes:
            raise InfeasibleProblemError(
                f"{graph.num_nodes} application nodes cannot be deployed on "
                f"{costs.num_instances} instances"
            )

    def compiled(self, graph: CommunicationGraph,
                 costs: CostMatrix) -> CompiledProblem:
        """The vectorized evaluation engine for a problem instance.

        Compilations are shared process-wide (see
        :func:`repro.core.evaluation.compile_problem`), so portfolio members
        solving the same instance reuse one lowering.
        """
        return compile_problem(graph, costs)

    @abc.abstractmethod
    def solve(self, graph: CommunicationGraph, costs: CostMatrix,
              objective: Objective = Objective.LONGEST_LINK,
              budget: SearchBudget | None = None,
              initial_plan: DeploymentPlan | None = None) -> SolverResult:
        """Search for a low-cost deployment plan.

        Args:
            graph: the application communication graph.
            costs: pairwise communication costs over allocated instances.
            objective: which deployment cost function to minimise.
            budget: optional time / iteration limits.
            initial_plan: optional warm-start plan.

        Returns:
            The best plan found, its cost, and bookkeeping information.
        """


def random_plans(graph: CommunicationGraph, costs: CostMatrix, count: int,
                 rng: np.random.Generator | int | None = None) -> List[DeploymentPlan]:
    """Generate ``count`` uniformly random deployment plans."""
    generator = make_rng(rng)
    instances = list(costs.instance_ids)
    return [
        DeploymentPlan.random(graph.nodes, instances, generator)
        for _ in range(count)
    ]


def best_random_plan(graph: CommunicationGraph, costs: CostMatrix,
                     objective: Objective, count: int,
                     rng: np.random.Generator | int | None = None
                     ) -> Tuple[DeploymentPlan, float]:
    """Best of ``count`` random plans; used to bootstrap exact solvers.

    The paper seeds its solvers with the best of 10 random deployments
    (Sect. 6.3.1).  Plans are drawn one by one (keeping the RNG stream
    identical to older releases) but scored in a single batch through the
    vectorized evaluation engine; ties keep the earliest plan, matching the
    previous strict-improvement loop.
    """
    generator = make_rng(rng)
    plans = random_plans(graph, costs, count, generator)
    if not plans:
        raise SolverError("count must be positive to draw a random plan")
    plan_costs = compile_problem(graph, costs).evaluate_plans(plans, objective)
    best_index = int(np.argmin(plan_costs))
    return plans[best_index], float(plan_costs[best_index])


def default_plan(graph: CommunicationGraph, costs: CostMatrix) -> DeploymentPlan:
    """The default deployment: nodes mapped to instances in provider order.

    This is the baseline every experiment in Sect. 6.4 compares against.
    """
    instances: Sequence[int] = costs.instance_ids[: graph.num_nodes]
    return DeploymentPlan.identity(graph.nodes, instances)
