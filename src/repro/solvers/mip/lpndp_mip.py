"""MIP encoding and solver for the Longest Path problem (Sect. 4.4).

The encoding introduces, on top of the assignment variables ``x_ij``:

* ``c_{ii'}`` — the realised cost of communication edge ``(i, i')`` under
  the assignment;
* ``t_i`` — the cost of the most expensive directed path reaching node ``i``;
* ``t`` — the overall objective, an upper bound on every ``t_i``.

As the paper notes, this objective interacts poorly with the subgraph
structure of the problem (it only prunes once most nodes are placed), which
is why no CP formulation is provided for LPNDP and why randomized search is
surprisingly competitive (Sect. 6.5.3).  Placement constraints are lowered
as assignment-variable fixings through the shared
:class:`~repro.solvers.mip.deployment.DeploymentEncoding` hooks.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...core.communication_graph import CommunicationGraph
from ...core.errors import InvalidGraphError
from ...core.objectives import Objective
from .deployment import DeploymentEncoding, MipDeploymentSolver


class LPNDPEncoding(DeploymentEncoding):
    """Builds and decodes the longest-path MIP for one problem instance."""

    def _validate_graph(self, graph: CommunicationGraph) -> None:
        if not graph.is_dag():
            raise InvalidGraphError("LPNDP requires an acyclic communication graph")

    def _add_objective_variables(self) -> None:
        self.edge_cost_index: Dict[Tuple[int, int], int] = {
            edge: self.model.add_variable(f"c[{edge[0]},{edge[1]}]", lower=0.0)
            for edge in self.graph.edges
        }
        self.path_index: Dict[int, int] = {
            node: self.model.add_variable(f"t[{node}]", lower=0.0)
            for node in self.graph.nodes
        }
        self.t_index = self.model.add_variable("t", lower=0.0)

    def _add_objective_constraints(self) -> None:
        # Edge-cost linking: c_ii' >= CL(j, j') (x_ij + x_i'j' - 1).
        for (i, i_prime), c_var in self.edge_cost_index.items():
            for j in range(self.num_instances):
                for j_prime in range(self.num_instances):
                    if j == j_prime:
                        continue
                    link_cost = float(self.cost_array[j, j_prime])
                    if link_cost <= 0.0:
                        continue
                    self.model.add_constraint(
                        {
                            c_var: 1.0,
                            self.x_index[(i, j)]: -link_cost,
                            self.x_index[(i_prime, j_prime)]: -link_cost,
                        },
                        lower=-link_cost,
                    )

        # Path propagation: t_i' >= t_i + c_ii' and t >= t_i.
        for (i, i_prime), c_var in self.edge_cost_index.items():
            self.model.add_constraint(
                {
                    self.path_index[i_prime]: 1.0,
                    self.path_index[i]: -1.0,
                    c_var: -1.0,
                },
                lower=0.0,
            )
        for node in self.graph.nodes:
            self.model.add_constraint(
                {self.t_index: 1.0, self.path_index[node]: -1.0}, lower=0.0
            )

        self.model.set_objective({self.t_index: 1.0})

    def solution_vector(self, assignment: Dict[int, int]) -> np.ndarray:
        """Full variable vector realising the given node -> instance-index map."""
        vector = np.zeros(self.model.num_variables)
        for node, j in assignment.items():
            vector[self.x_index[(node, j)]] = 1.0

        edge_costs: Dict[Tuple[int, int], float] = {}
        for (i, i_prime), c_var in self.edge_cost_index.items():
            cost = float(self.cost_array[assignment[i], assignment[i_prime]])
            edge_costs[(i, i_prime)] = cost
            vector[c_var] = cost

        longest_to: Dict[int, float] = {n: 0.0 for n in self.graph.nodes}
        for node in self.graph.topological_order():
            for successor in self.graph.successors(node):
                candidate = longest_to[node] + edge_costs[(node, successor)]
                if candidate > longest_to[successor]:
                    longest_to[successor] = candidate
        for node, t_var in self.path_index.items():
            vector[t_var] = longest_to[node]
        vector[self.t_index] = max(longest_to.values()) if longest_to else 0.0
        return vector


class MIPLongestPathSolver(MipDeploymentSolver):
    """Longest-path solver backed by the MIP encoding of Sect. 4.4.

    A thin :class:`~repro.solvers.mip.deployment.MipDeploymentSolver`
    subclass — see that class for the constructor arguments.  Note the
    clustering default stays off: the paper finds clustering does *not*
    help LPNDP because path costs are sums.
    """

    name = "MIP-LP"
    supported_objectives = (Objective.LONGEST_PATH,)
    default_objective = Objective.LONGEST_PATH
    encoding_factory = LPNDPEncoding
