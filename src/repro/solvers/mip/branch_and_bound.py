"""Pure-Python best-first branch and bound over LP relaxations.

This solver plays the role of the commercial MIP solver in the paper.  It
keeps a best-first frontier of subproblems ordered by their LP-relaxation
bound, branches on the most fractional integer variable, and — crucially for
the deployment MIPs, whose LP relaxations are notoriously weak (Sect. 6.3.2)
— lets the caller provide a *rounding callback* that turns a fractional LP
solution into a feasible incumbent, so useful deployments appear early even
when proving optimality is hopeless.  Incumbent improvements are recorded
with timestamps, which is what the convergence figures (Figs. 7 and 9) plot.

Two rounding interfaces are supported.  The scalar ``rounding_callback``
builds one full solution vector per LP solution and scores it through the
model (kept as the reference oracle).  A :class:`DeploymentRounder` instead
batches the LP candidates of each branch-and-bound node, scores the rounded
deployments in one ``evaluate_batch`` call on the compiled evaluation
engine, and only materialises the full solution vector for candidates that
actually improve the incumbent.  The decision sequence (filters, incumbent
updates, pushes) replays the scalar path exactly, so both produce
bit-identical incumbents, traces and node sequences.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..base import scoring_engine
from .model import MipModel, MipSolution
from .scipy_backend import solve_lp_relaxation

#: Turns a (possibly fractional) solution vector into a feasible integer
#: solution vector, or returns ``None`` when it cannot.
RoundingCallback = Callable[[np.ndarray], Optional[np.ndarray]]


def warm_start_assignment(encoding, plan) -> Dict[int, int]:
    """Node -> instance-index map realising ``plan`` on a MIP encoding.

    Shared by both deployment encodings (their padded-graph layout is
    identical): real nodes follow the plan, dummy (padding) nodes take the
    instance indices the plan leaves unused, so the result satisfies both
    assignment equality blocks and can be fed to the encoding's
    ``solution_vector`` as a warm-start incumbent.
    """
    index = {instance: j for j, instance in enumerate(encoding.instance_ids)}
    assignment = {node: index[plan.instance_for(node)]
                  for node in encoding.graph.nodes}
    used = set(assignment.values())
    spare = (j for j in range(encoding.num_instances) if j not in used)
    for node in encoding.nodes:
        if node not in assignment:
            assignment[node] = next(spare)
    return assignment


class DeploymentRounder:
    """Batch primal heuristic over a deployment encoding.

    Rounds LP solution vectors to injective deployments (through the
    encoding's Hungarian extraction), scores the whole batch with the
    compiled evaluation engine, and rebuilds the full MIP solution vector
    only for a candidate that is about to become the incumbent.  For the
    deployment encodings every rounded candidate is feasible by
    construction (perfect matching plus exactly-propagated auxiliaries), so
    the per-candidate model feasibility check of the scalar path is skipped
    without changing any outcome.

    Args:
        encoding: an ``LLNDPEncoding`` / ``LPNDPEncoding`` style object
            exposing ``_extract_assignment`` and ``solution_vector``.
        problem: compiled evaluation engine for (graph, costs) of the
            encoding.
        objective: which deployment objective the encoding minimises.
        workers: optional evaluation parallelism (``"auto"``, a positive
            int, or a ``"procs[:N]"`` process-pool spec); batches are
            scored through a bit-identical parallel evaluator when set
            (see :func:`~repro.solvers.base.scoring_engine`).
    """

    def __init__(self, encoding, problem, objective, workers=None):
        self.encoding = encoding
        self.problem = problem
        self.objective = objective
        self._scorer = scoring_engine(problem, workers)

    def round_batch(self, batch: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, List[Dict[int, int]]]:
        """Objective values and assignments of the rounded candidates.

        Returns a ``(k,)`` cost array (bit-identical to what the scalar
        path's ``model.evaluate_objective`` would report for the same
        candidates) and the node -> instance-index assignments realising
        them.
        """
        assignments = [self.encoding._extract_assignment(v) for v in batch]
        rows = np.array(
            [[assignment[node] for node in self.problem.node_ids]
             for assignment in assignments],
            dtype=np.intp,
        ).reshape(len(assignments), self.problem.num_nodes)
        costs = self._scorer.evaluate_batch(rows, self.objective)
        return costs, assignments

    def realize(self, assignment: Dict[int, int]) -> np.ndarray:
        """Full MIP solution vector for one rounded assignment."""
        return self.encoding.solution_vector(assignment)


@dataclass(order=True)
class _Node:
    """A branch-and-bound node, ordered by its LP bound."""

    bound: float
    sequence: int
    extra_bounds: Dict[int, Tuple[float, float]] = field(compare=False)
    lp_values: Optional[np.ndarray] = field(compare=False, default=None)


@dataclass
class BranchAndBoundResult:
    """Outcome of a branch-and-bound run."""

    solution: MipSolution
    incumbent_trace: Tuple[Tuple[float, float], ...]
    nodes_explored: int
    proven_optimal: bool
    #: ``(bound, sequence)`` of every node popped from the frontier, in
    #: order, when the search ran with ``record_nodes=True`` (used by the
    #: engine-vs-oracle agreement tests); empty otherwise.
    node_sequence: Tuple[Tuple[float, int], ...] = ()


class BranchAndBound:
    """Best-first branch and bound with LP bounding.

    Args:
        model: the mixed-integer model to minimise.
        rounding_callback: optional scalar primal heuristic applied to every
            LP solution encountered (the reference oracle path).
        batch_rounder: optional :class:`DeploymentRounder`; when given it
            replaces ``rounding_callback`` and scores each node's LP
            candidates in one engine batch.
        integrality_tolerance: threshold below which a value counts as integral.
        record_nodes: record the popped node sequence in the result.
    """

    def __init__(self, model: MipModel,
                 rounding_callback: RoundingCallback | None = None,
                 batch_rounder: DeploymentRounder | None = None,
                 integrality_tolerance: float = 1e-6,
                 record_nodes: bool = False):
        self.model = model
        self.rounding_callback = rounding_callback
        self.batch_rounder = batch_rounder
        self.integrality_tolerance = integrality_tolerance
        self.record_nodes = record_nodes

    # ------------------------------------------------------------------ #

    def solve(self, time_limit_s: float | None = None,
              node_limit: int | None = None,
              initial_incumbent: np.ndarray | None = None
              ) -> BranchAndBoundResult:
        """Run the search until optimality, the time limit or the node limit.

        Args:
            time_limit_s: wall-clock limit.
            node_limit: cap on explored nodes.
            initial_incumbent: optional feasible solution vector installed
                as the starting incumbent, so bound-based pruning is active
                from the first node (the paper's warm start, Sect. 6.3.1).
        """
        start = time.perf_counter()
        deadline = None if time_limit_s is None else start + time_limit_s
        counter = itertools.count()
        trace: List[Tuple[float, float]] = []
        node_log: List[Tuple[float, int]] = []

        best_values: Optional[np.ndarray] = None
        best_objective = np.inf

        def consider_incumbent(values: np.ndarray) -> None:
            nonlocal best_values, best_objective
            if not self.model.is_feasible(values):
                return
            objective = self.model.evaluate_objective(values)
            if objective < best_objective - 1e-12:
                best_values = values.copy()
                best_objective = objective
                trace.append((time.perf_counter() - start, objective))

        def consider_rounded(cost: float, assignment: Dict[int, int]) -> None:
            # Engine-path twin of rounding + consider_incumbent: same
            # improvement threshold on the same float, but the full vector
            # is only built for an actual improvement (rounded deployments
            # are feasible by construction).
            nonlocal best_values, best_objective
            if cost < best_objective - 1e-12:
                best_values = self.batch_rounder.realize(assignment)
                best_objective = cost
                trace.append((time.perf_counter() - start, cost))

        def round_lp(values: np.ndarray) -> None:
            """Primal heuristic on a single LP solution (either path)."""
            if self.batch_rounder is not None:
                costs, assignments = self.batch_rounder.round_batch([values])
                consider_rounded(float(costs[0]), assignments[0])
            else:
                self._try_round(values, consider_incumbent)

        if initial_incumbent is not None:
            consider_incumbent(initial_incumbent)

        root_lp = solve_lp_relaxation(self.model)
        nodes_explored = 0
        proven_optimal = False

        if root_lp.status == "infeasible":
            solution = MipSolution(status="infeasible", objective_value=None,
                                   values=None, optimal=False,
                                   solve_time_s=time.perf_counter() - start)
            return BranchAndBoundResult(solution=solution, incumbent_trace=(),
                                        nodes_explored=0, proven_optimal=True)

        heap: List[_Node] = []
        if root_lp.values is not None:
            round_lp(root_lp.values)
            heapq.heappush(heap, _Node(bound=root_lp.objective_value or -np.inf,
                                       sequence=next(counter), extra_bounds={},
                                       lp_values=root_lp.values))

        while heap:
            if deadline is not None and time.perf_counter() > deadline:
                break
            if node_limit is not None and nodes_explored >= node_limit:
                break
            node = heapq.heappop(heap)
            nodes_explored += 1
            if self.record_nodes:
                node_log.append((node.bound, node.sequence))
            if node.bound >= best_objective - 1e-9:
                # Bound can no longer improve on the incumbent; since the heap
                # is ordered by bound, nothing later can either.
                proven_optimal = True
                break

            lp_values = node.lp_values
            if lp_values is None:
                lp = solve_lp_relaxation(self.model, extra_bounds=node.extra_bounds)
                if lp.status != "optimal" or lp.values is None:
                    continue
                if lp.objective_value is not None and lp.objective_value >= best_objective - 1e-9:
                    continue
                lp_values = lp.values
                round_lp(lp_values)

            branch_variable = self._most_fractional(lp_values)
            if branch_variable is None:
                consider_incumbent(np.round(lp_values))
                continue

            value = lp_values[branch_variable]
            children = []
            for low, high in ((np.floor(value) + 1, np.inf), (-np.inf, np.floor(value))):
                child_bounds = dict(node.extra_bounds)
                previous = child_bounds.get(branch_variable, (-np.inf, np.inf))
                child_bounds[branch_variable] = (
                    max(previous[0], low), min(previous[1], high)
                )
                lp = solve_lp_relaxation(self.model, extra_bounds=child_bounds)
                if lp.status != "optimal" or lp.values is None:
                    continue
                children.append((child_bounds, lp))

            rounded: Dict[int, Tuple[float, Dict[int, int]]] = {}
            if self.batch_rounder is not None and children:
                # One engine batch scores the children's roundings; rounding
                # a child does not depend on the incumbent, so precomputing
                # the costs and replaying the scalar path's filter/update
                # order below keeps every decision identical.  Children the
                # current incumbent already bound-prunes are excluded up
                # front — the incumbent only improves during the replay, so
                # a pre-pruned child can never pass the replay filter and
                # its Hungarian rounding would be wasted work.
                survivors = [
                    index for index, (_, lp) in enumerate(children)
                    if lp.objective_value is None
                    or lp.objective_value < best_objective - 1e-9
                ]
                if survivors:
                    child_costs, child_assignments = self.batch_rounder.round_batch(
                        [children[index][1].values for index in survivors]
                    )
                    rounded = {
                        index: (float(child_costs[k]), child_assignments[k])
                        for k, index in enumerate(survivors)
                    }
            for index, (child_bounds, lp) in enumerate(children):
                if lp.objective_value is not None and lp.objective_value >= best_objective - 1e-9:
                    continue
                if self.batch_rounder is not None:
                    consider_rounded(*rounded[index])
                else:
                    self._try_round(lp.values, consider_incumbent)
                heapq.heappush(heap, _Node(
                    bound=lp.objective_value if lp.objective_value is not None else -np.inf,
                    sequence=next(counter),
                    extra_bounds=child_bounds,
                    lp_values=lp.values,
                ))

        if not heap and not proven_optimal and best_values is not None:
            # Search tree exhausted without pruning by bound: optimal.
            proven_optimal = (deadline is None or time.perf_counter() <= deadline) and \
                (node_limit is None or nodes_explored < node_limit)

        elapsed = time.perf_counter() - start
        if best_values is None:
            solution = MipSolution(status="no-solution", objective_value=None,
                                   values=None, optimal=False, solve_time_s=elapsed)
        else:
            solution = MipSolution(
                status="optimal" if proven_optimal else "feasible",
                objective_value=best_objective, values=best_values,
                optimal=proven_optimal, solve_time_s=elapsed,
            )
        return BranchAndBoundResult(solution=solution,
                                    incumbent_trace=tuple(trace),
                                    nodes_explored=nodes_explored,
                                    proven_optimal=proven_optimal,
                                    node_sequence=tuple(node_log))

    # ------------------------------------------------------------------ #

    def _most_fractional(self, values: np.ndarray) -> Optional[int]:
        """Integer variable whose LP value is farthest from integral."""
        integers = self.model.integer_indices()
        if not integers:
            return None
        integer_values = values[integers]
        distances = np.abs(integer_values - np.round(integer_values))
        best = int(np.argmax(distances))
        if distances[best] > self.integrality_tolerance:
            return integers[best]
        return None

    def _try_round(self, values: np.ndarray,
                   consider_incumbent: Callable[[np.ndarray], None]) -> None:
        """Run the scalar primal rounding heuristic, if any, on an LP solution."""
        if self.rounding_callback is None:
            return
        rounded = self.rounding_callback(values)
        if rounded is not None:
            consider_incumbent(rounded)
