"""Pure-Python best-first branch and bound over LP relaxations.

This solver plays the role of the commercial MIP solver in the paper.  It
keeps a best-first frontier of subproblems ordered by their LP-relaxation
bound, branches on the most fractional integer variable, and — crucially for
the deployment MIPs, whose LP relaxations are notoriously weak (Sect. 6.3.2)
— lets the caller provide a *rounding callback* that turns a fractional LP
solution into a feasible incumbent, so useful deployments appear early even
when proving optimality is hopeless.  Incumbent improvements are recorded
with timestamps, which is what the convergence figures (Figs. 7 and 9) plot.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .model import MipModel, MipSolution
from .scipy_backend import solve_lp_relaxation

#: Turns a (possibly fractional) solution vector into a feasible integer
#: solution vector, or returns ``None`` when it cannot.
RoundingCallback = Callable[[np.ndarray], Optional[np.ndarray]]


@dataclass(order=True)
class _Node:
    """A branch-and-bound node, ordered by its LP bound."""

    bound: float
    sequence: int
    extra_bounds: Dict[int, Tuple[float, float]] = field(compare=False)
    lp_values: Optional[np.ndarray] = field(compare=False, default=None)


@dataclass
class BranchAndBoundResult:
    """Outcome of a branch-and-bound run."""

    solution: MipSolution
    incumbent_trace: Tuple[Tuple[float, float], ...]
    nodes_explored: int
    proven_optimal: bool


class BranchAndBound:
    """Best-first branch and bound with LP bounding.

    Args:
        model: the mixed-integer model to minimise.
        rounding_callback: optional primal heuristic applied to every LP
            solution encountered.
        integrality_tolerance: threshold below which a value counts as integral.
    """

    def __init__(self, model: MipModel,
                 rounding_callback: RoundingCallback | None = None,
                 integrality_tolerance: float = 1e-6):
        self.model = model
        self.rounding_callback = rounding_callback
        self.integrality_tolerance = integrality_tolerance

    # ------------------------------------------------------------------ #

    def solve(self, time_limit_s: float | None = None,
              node_limit: int | None = None) -> BranchAndBoundResult:
        """Run the search until optimality, the time limit or the node limit."""
        start = time.perf_counter()
        deadline = None if time_limit_s is None else start + time_limit_s
        counter = itertools.count()
        trace: List[Tuple[float, float]] = []

        best_values: Optional[np.ndarray] = None
        best_objective = np.inf

        def consider_incumbent(values: np.ndarray) -> None:
            nonlocal best_values, best_objective
            if not self.model.is_feasible(values):
                return
            objective = self.model.evaluate_objective(values)
            if objective < best_objective - 1e-12:
                best_values = values.copy()
                best_objective = objective
                trace.append((time.perf_counter() - start, objective))

        root_lp = solve_lp_relaxation(self.model)
        nodes_explored = 0
        proven_optimal = False

        if root_lp.status == "infeasible":
            solution = MipSolution(status="infeasible", objective_value=None,
                                   values=None, optimal=False,
                                   solve_time_s=time.perf_counter() - start)
            return BranchAndBoundResult(solution=solution, incumbent_trace=(),
                                        nodes_explored=0, proven_optimal=True)

        heap: List[_Node] = []
        if root_lp.values is not None:
            self._try_round(root_lp.values, consider_incumbent)
            heapq.heappush(heap, _Node(bound=root_lp.objective_value or -np.inf,
                                       sequence=next(counter), extra_bounds={},
                                       lp_values=root_lp.values))

        while heap:
            if deadline is not None and time.perf_counter() > deadline:
                break
            if node_limit is not None and nodes_explored >= node_limit:
                break
            node = heapq.heappop(heap)
            nodes_explored += 1
            if node.bound >= best_objective - 1e-9:
                # Bound can no longer improve on the incumbent; since the heap
                # is ordered by bound, nothing later can either.
                proven_optimal = True
                break

            lp_values = node.lp_values
            if lp_values is None:
                lp = solve_lp_relaxation(self.model, extra_bounds=node.extra_bounds)
                if lp.status != "optimal" or lp.values is None:
                    continue
                if lp.objective_value is not None and lp.objective_value >= best_objective - 1e-9:
                    continue
                lp_values = lp.values
                self._try_round(lp_values, consider_incumbent)

            branch_variable = self._most_fractional(lp_values)
            if branch_variable is None:
                consider_incumbent(np.round(lp_values))
                continue

            value = lp_values[branch_variable]
            for low, high in ((np.floor(value) + 1, np.inf), (-np.inf, np.floor(value))):
                child_bounds = dict(node.extra_bounds)
                previous = child_bounds.get(branch_variable, (-np.inf, np.inf))
                child_bounds[branch_variable] = (
                    max(previous[0], low), min(previous[1], high)
                )
                lp = solve_lp_relaxation(self.model, extra_bounds=child_bounds)
                if lp.status != "optimal" or lp.values is None:
                    continue
                if lp.objective_value is not None and lp.objective_value >= best_objective - 1e-9:
                    continue
                self._try_round(lp.values, consider_incumbent)
                heapq.heappush(heap, _Node(
                    bound=lp.objective_value if lp.objective_value is not None else -np.inf,
                    sequence=next(counter),
                    extra_bounds=child_bounds,
                    lp_values=lp.values,
                ))

        if not heap and not proven_optimal and best_values is not None:
            # Search tree exhausted without pruning by bound: optimal.
            proven_optimal = (deadline is None or time.perf_counter() <= deadline) and \
                (node_limit is None or nodes_explored < node_limit)

        elapsed = time.perf_counter() - start
        if best_values is None:
            solution = MipSolution(status="no-solution", objective_value=None,
                                   values=None, optimal=False, solve_time_s=elapsed)
        else:
            solution = MipSolution(
                status="optimal" if proven_optimal else "feasible",
                objective_value=best_objective, values=best_values,
                optimal=proven_optimal, solve_time_s=elapsed,
            )
        return BranchAndBoundResult(solution=solution,
                                    incumbent_trace=tuple(trace),
                                    nodes_explored=nodes_explored,
                                    proven_optimal=proven_optimal)

    # ------------------------------------------------------------------ #

    def _most_fractional(self, values: np.ndarray) -> Optional[int]:
        """Integer variable whose LP value is farthest from integral."""
        best_index: Optional[int] = None
        best_distance = self.integrality_tolerance
        for index in self.model.integer_indices():
            distance = abs(values[index] - round(values[index]))
            if distance > best_distance:
                best_distance = distance
                best_index = index
        return best_index

    def _try_round(self, values: np.ndarray,
                   consider_incumbent: Callable[[np.ndarray], None]) -> None:
        """Run the primal rounding heuristic, if any, on an LP solution."""
        if self.rounding_callback is None:
            return
        rounded = self.rounding_callback(values)
        if rounded is not None:
            consider_incumbent(rounded)
