"""A small mixed-integer programming modelling layer.

The paper encodes both deployment problems as MIPs and hands them to CPLEX.
CPLEX is not available offline, so this module provides a minimal model
container (variables, linear constraints, a linear objective) that can be
solved either by SciPy's HiGHS-based ``milp`` (see
:mod:`repro.solvers.mip.scipy_backend`) or by the pure-Python branch and
bound in :mod:`repro.solvers.mip.branch_and_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from ...core.errors import SolverError


@dataclass
class Variable:
    """One decision variable of the model."""

    index: int
    name: str
    lower: float
    upper: float
    integer: bool


@dataclass
class LinearConstraintRow:
    """A linear constraint ``lower <= sum_k coeffs[k] * x_k <= upper``."""

    coefficients: Dict[int, float]
    lower: float
    upper: float


@dataclass
class MipModel:
    """Container for a minimisation MIP.

    The dense/sparse views used by the solvers (objective vector, bound
    arrays, constraint matrix, integer indices) are built once and cached —
    branch and bound evaluates thousands of LP relaxations and incumbent
    candidates against the same model, and rebuilding the CSR matrix per
    query used to dominate those paths.  Mutating the model through the
    ``add_*`` / ``set_objective`` methods invalidates the caches.
    """

    variables: List[Variable] = field(default_factory=list)
    constraints: List[LinearConstraintRow] = field(default_factory=list)
    objective: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def _invalidate_caches(self) -> None:
        self._cached_objective = None
        self._cached_bounds = None
        self._cached_matrix = None
        self._cached_integers = None

    def add_variable(self, name: str = "", lower: float = 0.0,
                     upper: float | None = None, integer: bool = False) -> int:
        """Add a variable and return its index."""
        upper_value = np.inf if upper is None else float(upper)
        if lower > upper_value:
            raise SolverError(f"variable {name!r} has empty bounds")
        index = len(self.variables)
        self.variables.append(
            Variable(index=index, name=name or f"x{index}",
                     lower=float(lower), upper=upper_value, integer=integer)
        )
        self._invalidate_caches()
        return index

    def add_binary(self, name: str = "") -> int:
        """Add a 0/1 variable."""
        return self.add_variable(name=name, lower=0.0, upper=1.0, integer=True)

    def set_variable_bounds(self, index: int, lower: float | None = None,
                            upper: float | None = None) -> None:
        """Tighten a variable's bounds in place.

        Used by the deployment encodings to fix assignment variables out of
        (or into) the model when placement constraints disallow (or pin) a
        node-instance pair — both backends and :meth:`is_feasible` read the
        bound arrays, so a fixing removes the variable from the search
        everywhere at once.
        """
        variable = self.variables[index]
        new_lower = variable.lower if lower is None else float(lower)
        new_upper = variable.upper if upper is None else float(upper)
        if new_lower > new_upper:
            raise SolverError(
                f"variable {variable.name!r} would get empty bounds "
                f"[{new_lower}, {new_upper}]"
            )
        variable.lower = new_lower
        variable.upper = new_upper
        self._invalidate_caches()

    def add_constraint(self, coefficients: Dict[int, float],
                       lower: float = -np.inf, upper: float = np.inf) -> int:
        """Add ``lower <= coeffs . x <= upper`` and return the constraint index."""
        if not coefficients:
            raise SolverError("constraint must reference at least one variable")
        for index in coefficients:
            if not 0 <= index < len(self.variables):
                raise SolverError(f"constraint references unknown variable {index}")
        self.constraints.append(
            LinearConstraintRow(coefficients=dict(coefficients),
                                lower=float(lower), upper=float(upper))
        )
        self._invalidate_caches()
        return len(self.constraints) - 1

    def add_equality(self, coefficients: Dict[int, float], value: float) -> int:
        """Add ``coeffs . x == value``."""
        return self.add_constraint(coefficients, lower=value, upper=value)

    def set_objective(self, coefficients: Dict[int, float]) -> None:
        """Set the (minimisation) objective."""
        self.objective = dict(coefficients)
        self._invalidate_caches()

    # ------------------------------------------------------------------ #
    # Introspection and export
    # ------------------------------------------------------------------ #

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        """Number of linear constraints."""
        return len(self.constraints)

    def integer_indices(self) -> List[int]:
        """Indices of integer-restricted variables."""
        cached = getattr(self, "_cached_integers", None)
        if cached is None:
            cached = [v.index for v in self.variables if v.integer]
            self._cached_integers = cached
        return cached

    def objective_vector(self) -> np.ndarray:
        """Dense objective coefficient vector (cached; treat as read-only)."""
        cached = getattr(self, "_cached_objective", None)
        if cached is None:
            cached = np.zeros(self.num_variables)
            for index, coefficient in self.objective.items():
                cached[index] = coefficient
            self._cached_objective = cached
        return cached

    def _bounds_cache(self) -> Tuple[np.ndarray, np.ndarray]:
        cached = getattr(self, "_cached_bounds", None)
        if cached is None:
            cached = (
                np.array([v.lower for v in self.variables]),
                np.array([v.upper for v in self.variables]),
            )
            self._cached_bounds = cached
        return cached

    def bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lower and upper variable bound vectors (fresh copies per call).

        Copies are returned because the LP relaxation solver tightens the
        arrays in place with branching bounds.
        """
        lower, upper = self._bounds_cache()
        return lower.copy(), upper.copy()

    def constraint_matrix(self) -> Tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """Sparse constraint matrix with per-row lower/upper bounds.

        Cached across calls; callers must not mutate the returned objects.
        """
        cached = getattr(self, "_cached_matrix", None)
        if cached is not None:
            return cached
        if not self.constraints:
            cached = (sparse.csr_matrix((0, self.num_variables)),
                      np.array([]), np.array([]))
            self._cached_matrix = cached
            return cached
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        lower = np.empty(len(self.constraints))
        upper = np.empty(len(self.constraints))
        for row_index, row in enumerate(self.constraints):
            lower[row_index] = row.lower
            upper[row_index] = row.upper
            for col, coefficient in row.coefficients.items():
                rows.append(row_index)
                cols.append(col)
                data.append(coefficient)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self.constraints), self.num_variables)
        )
        cached = (matrix, lower, upper)
        self._cached_matrix = cached
        return cached

    def evaluate_objective(self, solution: np.ndarray) -> float:
        """Objective value of a solution vector (one cached-vector dot product)."""
        return float(self.objective_vector() @ solution)

    def is_feasible(self, solution: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Check variable bounds, integrality and every linear constraint."""
        lower, upper = self._bounds_cache()
        if (solution < lower - tolerance).any() or (solution > upper + tolerance).any():
            return False
        integers = self.integer_indices()
        if integers:
            integral = solution[integers]
            if (np.abs(integral - np.round(integral)) > tolerance).any():
                return False
        matrix, c_lower, c_upper = self.constraint_matrix()
        if matrix.shape[0]:
            values = matrix @ solution
            if (values < c_lower - tolerance).any() or (values > c_upper + tolerance).any():
                return False
        return True


@dataclass(frozen=True)
class MipSolution:
    """Outcome of solving a :class:`MipModel`."""

    status: str
    objective_value: Optional[float]
    values: Optional[np.ndarray]
    optimal: bool
    solve_time_s: float

    @property
    def feasible(self) -> bool:
        """Whether a (possibly suboptimal) solution vector is available."""
        return self.values is not None
