"""MIP encoding and solver for the Longest Link problem (Sect. 4.1).

The encoding follows the paper exactly: binary variables ``x_ij`` select
which instance hosts each application node (the graph is padded with dummy
nodes so the mapping is a perfect matching), and a continuous variable ``c``
is forced above the cost of every link actually used through the big-M-free
constraints ``c >= CL(j, j') * (x_ij + x_i'j' - 1)``.

The encoding grows as ``|E| * |S|^2`` constraints, which is why the paper
observes that MIP "performs poorly at the scale of 100 instances"; the same
holds here, and the benchmarks exercise this solver at smaller scales.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ...core.communication_graph import CommunicationGraph, augment_with_dummy_nodes
from ...core.cost_matrix import CostMatrix
from ...core.deployment import DeploymentPlan
from ...core.evaluation import compile_problem
from ...core.objectives import Objective, deployment_cost
from ...core.problem import DeploymentProblem
from ..base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_random_plan,
)
from .branch_and_bound import (
    BranchAndBound,
    DeploymentRounder,
    warm_start_assignment,
)
from .model import MipModel
from .scipy_backend import solve_milp


class LLNDPEncoding:
    """Builds and decodes the longest-link MIP for one problem instance."""

    def __init__(self, graph: CommunicationGraph, costs: CostMatrix):
        self.graph = graph
        self.costs = costs
        self.instance_ids = list(costs.instance_ids)
        self.cost_array = costs.as_array()
        self.padded_graph = augment_with_dummy_nodes(graph, costs.num_instances)
        self.nodes = list(self.padded_graph.nodes)
        self.num_instances = costs.num_instances

        self.model = MipModel()
        self.x_index: Dict[Tuple[int, int], int] = {}
        for node in self.nodes:
            for j in range(self.num_instances):
                self.x_index[(node, j)] = self.model.add_binary(f"x[{node},{j}]")
        self.c_index = self.model.add_variable("c", lower=0.0)
        # Variable indices of the x block as a (nodes, instances) gather map,
        # so solution vectors can be reshaped into assignment weights without
        # a per-entry Python loop.
        self._x_block = np.array(
            [[self.x_index[(node, j)] for j in range(self.num_instances)]
             for node in self.nodes],
            dtype=np.intp,
        )

        # Assignment constraints: each node on exactly one instance and each
        # instance hosting exactly one (possibly dummy) node.
        for node in self.nodes:
            self.model.add_equality(
                {self.x_index[(node, j)]: 1.0 for j in range(self.num_instances)}, 1.0
            )
        for j in range(self.num_instances):
            self.model.add_equality(
                {self.x_index[(node, j)]: 1.0 for node in self.nodes}, 1.0
            )

        # Longest-link constraints: c >= CL(j, j') (x_ij + x_i'j' - 1).
        for (i, i_prime) in graph.edges:
            for j in range(self.num_instances):
                for j_prime in range(self.num_instances):
                    if j == j_prime:
                        continue
                    link_cost = float(self.cost_array[j, j_prime])
                    if link_cost <= 0.0:
                        continue
                    self.model.add_constraint(
                        {
                            self.c_index: 1.0,
                            self.x_index[(i, j)]: -link_cost,
                            self.x_index[(i_prime, j_prime)]: -link_cost,
                        },
                        lower=-link_cost,
                    )

        self.model.set_objective({self.c_index: 1.0})

    # ------------------------------------------------------------------ #

    def decode(self, values: np.ndarray) -> DeploymentPlan:
        """Extract an injective deployment plan from a solution vector.

        A Hungarian assignment on the ``x`` block guards against slightly
        fractional or degenerate solutions.
        """
        return self._assignment_to_plan(self._extract_assignment(values))

    def rounding_callback(self, values: np.ndarray) -> Optional[np.ndarray]:
        """Primal heuristic: round a fractional LP solution to a deployment."""
        assignment = self._extract_assignment(values)
        return self.solution_vector(assignment)

    def solution_vector(self, assignment: Dict[int, int]) -> np.ndarray:
        """Full variable vector realising the given node -> instance-index map."""
        vector = np.zeros(self.model.num_variables)
        for node, j in assignment.items():
            vector[self.x_index[(node, j)]] = 1.0
        worst = 0.0
        for i, i_prime in self.graph.edges:
            worst = max(worst, float(self.cost_array[assignment[i], assignment[i_prime]]))
        vector[self.c_index] = worst
        return vector

    def _extract_assignment(self, values: np.ndarray) -> Dict[int, int]:
        weights = np.asarray(values)[self._x_block]
        rows, cols = linear_sum_assignment(-weights)
        return {self.nodes[int(r)]: int(c) for r, c in zip(rows, cols)}

    def _assignment_to_plan(self, assignment: Dict[int, int]) -> DeploymentPlan:
        return DeploymentPlan({
            node: self.instance_ids[assignment[node]] for node in self.graph.nodes
        })


class MIPLongestLinkSolver(DeploymentSolver):
    """Longest-link solver backed by the MIP encoding of Sect. 4.1.

    Args:
        backend: ``"bnb"`` uses the pure-Python branch and bound (produces an
            incumbent convergence trace, like reading a CPLEX log);
            ``"milp"`` hands the model to SciPy's HiGHS MILP solver.
        k_clusters: optional cost clustering applied before encoding.
        round_to: rounding grid for clustering.
        node_limit: branch-and-bound node limit.
        use_engine: score branch-and-bound incumbent roundings in batches
            through the compiled evaluation engine (default); ``False``
            keeps the scalar model-scored rounding path as the reference.
        initial_random_plans: number of random plans drawn to seed the
            incumbent when ``seed`` is given and no warm start is supplied
            (the paper seeds its solvers with the best of 10 random
            deployments, Sect. 6.3.1).
        seed: RNG seed for the random warm start.  ``None`` (the default)
            draws no warm start, preserving the historical behaviour.
    """

    name = "MIP"
    supported_objectives = (Objective.LONGEST_LINK,)

    def __init__(self, backend: str = "bnb", k_clusters: Optional[int] = None,
                 round_to: float | None = 0.01, node_limit: int | None = 5000,
                 use_engine: bool = True, initial_random_plans: int = 10,
                 seed: int | None = None):
        if backend not in ("bnb", "milp"):
            raise ValueError("backend must be 'bnb' or 'milp'")
        self.backend = backend
        self.k_clusters = k_clusters
        self.round_to = round_to
        self.node_limit = node_limit
        self.use_engine = use_engine
        self.initial_random_plans = max(1, initial_random_plans)
        self._seed = seed

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = budget or SearchBudget.seconds(30.0)
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        if initial_plan is None and self._seed is not None:
            initial_plan, _ = best_random_plan(
                graph, costs, objective, self.initial_random_plans,
                rng=self._seed,
            )

        clustered = costs.clustered(self.k_clusters, round_to=self.round_to) \
            if self.k_clusters is not None else costs
        encoding = LLNDPEncoding(graph, clustered)

        if self.use_engine:
            engine = compile_problem(graph, costs)

            def score(plan: DeploymentPlan) -> float:
                return engine.evaluate_plan(plan, objective)
        else:
            def score(plan: DeploymentPlan) -> float:
                return deployment_cost(plan, graph, costs, objective)

        if initial_plan is not None:
            trace.record(watch.elapsed(), score(initial_plan))

        if self.backend == "milp":
            solution = solve_milp(encoding.model, time_limit_s=budget.time_limit_s)
            optimal = solution.optimal
            iterations = 1
            incumbents: Tuple[Tuple[float, float], ...] = ()
            values = solution.values
        else:
            if self.use_engine:
                bnb = BranchAndBound(encoding.model, batch_rounder=DeploymentRounder(
                    encoding, compile_problem(graph, clustered), objective))
            else:
                bnb = BranchAndBound(encoding.model,
                                     rounding_callback=encoding.rounding_callback)
            warm_vector = None
            if initial_plan is not None:
                warm_vector = encoding.solution_vector(
                    warm_start_assignment(encoding, initial_plan))
            result = bnb.solve(time_limit_s=budget.time_limit_s,
                               node_limit=self.node_limit
                               if budget.max_iterations is None
                               else budget.max_iterations,
                               initial_incumbent=warm_vector)
            solution = result.solution
            optimal = result.proven_optimal
            iterations = result.nodes_explored
            incumbents = result.incumbent_trace
            values = solution.values

        if values is None:
            # No feasible solution produced within budget: fall back to the
            # warm start or the identity plan so callers always get a plan.
            plan = initial_plan if initial_plan is not None else \
                DeploymentPlan.identity(graph.nodes,
                                        costs.instance_ids[: graph.num_nodes])
            optimal = False
        else:
            plan = encoding.decode(values)

        cost = score(plan)
        if initial_plan is not None:
            warm_cost = score(initial_plan)
            if warm_cost < cost:
                plan, cost = initial_plan, warm_cost
        for when, objective_value in incumbents:
            trace.record(when, objective_value)
        trace.record(watch.elapsed(), cost)

        return SolverResult(
            plan=plan, cost=cost, objective=objective, solver_name=self.name,
            solve_time_s=watch.elapsed(), iterations=iterations,
            optimal=optimal and self.k_clusters is None,
            trace=trace.as_tuples(),
        )
