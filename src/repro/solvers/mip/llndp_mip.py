"""MIP encoding and solver for the Longest Link problem (Sect. 4.1).

The encoding follows the paper exactly: binary variables ``x_ij`` select
which instance hosts each application node (the graph is padded with dummy
nodes so the mapping is a perfect matching), and a continuous variable ``c``
is forced above the cost of every link actually used through the big-M-free
constraints ``c >= CL(j, j') * (x_ij + x_i'j' - 1)``.

The encoding grows as ``|E| * |S|^2`` constraints, which is why the paper
observes that MIP "performs poorly at the scale of 100 instances"; the same
holds here, and the benchmarks exercise this solver at smaller scales.
Placement constraints shrink the model instead of growing it: disallowed
assignment variables are fixed out through the shared
:class:`~repro.solvers.mip.deployment.DeploymentEncoding` hooks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...core.objectives import Objective
from .deployment import DeploymentEncoding, MipDeploymentSolver


class LLNDPEncoding(DeploymentEncoding):
    """Builds and decodes the longest-link MIP for one problem instance."""

    def _add_objective_variables(self) -> None:
        self.c_index = self.model.add_variable("c", lower=0.0)

    def _add_objective_constraints(self) -> None:
        # Longest-link constraints: c >= CL(j, j') (x_ij + x_i'j' - 1).
        for (i, i_prime) in self.graph.edges:
            for j in range(self.num_instances):
                for j_prime in range(self.num_instances):
                    if j == j_prime:
                        continue
                    link_cost = float(self.cost_array[j, j_prime])
                    if link_cost <= 0.0:
                        continue
                    self.model.add_constraint(
                        {
                            self.c_index: 1.0,
                            self.x_index[(i, j)]: -link_cost,
                            self.x_index[(i_prime, j_prime)]: -link_cost,
                        },
                        lower=-link_cost,
                    )
        self.model.set_objective({self.c_index: 1.0})

    def solution_vector(self, assignment: Dict[int, int]) -> np.ndarray:
        """Full variable vector realising the given node -> instance-index map."""
        vector = np.zeros(self.model.num_variables)
        for node, j in assignment.items():
            vector[self.x_index[(node, j)]] = 1.0
        worst = 0.0
        for i, i_prime in self.graph.edges:
            worst = max(worst, float(self.cost_array[assignment[i], assignment[i_prime]]))
        vector[self.c_index] = worst
        return vector


class MIPLongestLinkSolver(MipDeploymentSolver):
    """Longest-link solver backed by the MIP encoding of Sect. 4.1.

    A thin :class:`~repro.solvers.mip.deployment.MipDeploymentSolver`
    subclass — see that class for the constructor arguments (backend
    selection, clustering, warm starts, constraint lowering).
    """

    name = "MIP"
    supported_objectives = (Objective.LONGEST_LINK,)
    encoding_factory = LLNDPEncoding
