"""Solve :class:`MipModel` instances with SciPy's HiGHS interfaces.

Two entry points are provided:

* :func:`solve_lp_relaxation` — drop integrality and solve the continuous
  relaxation (used for bounding inside the branch-and-bound solver);
* :func:`solve_milp` — hand the full mixed-integer program to
  :func:`scipy.optimize.milp`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from ...core.errors import SolverError
from .model import MipModel, MipSolution


def solve_lp_relaxation(model: MipModel,
                        extra_bounds: Optional[Dict[int, tuple]] = None) -> MipSolution:
    """Solve the LP relaxation of ``model``.

    Args:
        model: the mixed-integer model.
        extra_bounds: optional per-variable ``(lower, upper)`` overrides used
            by branch and bound to impose branching decisions.
    """
    start = time.perf_counter()
    cost = model.objective_vector()
    lower, upper = model.bounds_arrays()
    if extra_bounds:
        for index, (low, high) in extra_bounds.items():
            lower[index] = max(lower[index], low)
            upper[index] = min(upper[index], high)
            if lower[index] > upper[index] + 1e-12:
                return MipSolution(status="infeasible", objective_value=None,
                                   values=None, optimal=False,
                                   solve_time_s=time.perf_counter() - start)

    matrix, c_lower, c_upper = model.constraint_matrix()
    constraints = []
    if matrix.shape[0]:
        constraints.append(LinearConstraint(matrix, c_lower, c_upper))

    result = linprog(
        c=cost,
        A_ub=None, b_ub=None, A_eq=None, b_eq=None,
        bounds=np.column_stack([lower, upper]),
        constraints=constraints,
        method="highs",
    ) if _linprog_supports_constraints() else _linprog_fallback(
        cost, matrix, c_lower, c_upper, lower, upper
    )

    elapsed = time.perf_counter() - start
    if result.status == 0:
        return MipSolution(status="optimal", objective_value=float(result.fun),
                           values=np.asarray(result.x), optimal=True,
                           solve_time_s=elapsed)
    if result.status == 2:
        return MipSolution(status="infeasible", objective_value=None, values=None,
                           optimal=False, solve_time_s=elapsed)
    return MipSolution(status=f"linprog-status-{result.status}", objective_value=None,
                       values=None, optimal=False, solve_time_s=elapsed)


def _linprog_supports_constraints() -> bool:
    """Older SciPy ``linprog`` versions do not accept a ``constraints`` kwarg."""
    return False


def _linprog_fallback(cost, matrix, c_lower, c_upper, lower, upper):
    """Translate two-sided row bounds into A_ub / A_eq form for ``linprog``."""
    a_ub_rows = []
    b_ub = []
    a_eq_rows = []
    b_eq = []
    if matrix.shape[0]:
        dense = matrix.tocsr()
        for row_index in range(dense.shape[0]):
            row = dense.getrow(row_index)
            low = c_lower[row_index]
            high = c_upper[row_index]
            if np.isfinite(low) and np.isfinite(high) and abs(high - low) < 1e-12:
                a_eq_rows.append(row)
                b_eq.append(high)
                continue
            if np.isfinite(high):
                a_ub_rows.append(row)
                b_ub.append(high)
            if np.isfinite(low):
                a_ub_rows.append(-row)
                b_ub.append(-low)
    from scipy import sparse as _sparse

    a_ub = _sparse.vstack(a_ub_rows) if a_ub_rows else None
    a_eq = _sparse.vstack(a_eq_rows) if a_eq_rows else None
    return linprog(
        c=cost,
        A_ub=a_ub, b_ub=np.array(b_ub) if b_ub else None,
        A_eq=a_eq, b_eq=np.array(b_eq) if b_eq else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )


def solve_milp(model: MipModel, time_limit_s: float | None = None,
               mip_rel_gap: float | None = None) -> MipSolution:
    """Solve the full mixed-integer program with ``scipy.optimize.milp``."""
    start = time.perf_counter()
    cost = model.objective_vector()
    lower, upper = model.bounds_arrays()
    matrix, c_lower, c_upper = model.constraint_matrix()

    integrality = np.zeros(model.num_variables)
    for index in model.integer_indices():
        integrality[index] = 1

    constraints = []
    if matrix.shape[0]:
        constraints.append(LinearConstraint(matrix, c_lower, c_upper))

    options = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)

    try:
        result = milp(
            c=cost,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lower, upper),
            options=options or None,
        )
    except (TypeError, ValueError) as exc:
        raise SolverError(f"scipy milp failed: {exc}") from exc

    elapsed = time.perf_counter() - start
    if result.x is None:
        status = "infeasible" if result.status == 2 else f"milp-status-{result.status}"
        return MipSolution(status=status, objective_value=None, values=None,
                           optimal=False, solve_time_s=elapsed)
    return MipSolution(
        status="optimal" if result.status == 0 else f"milp-status-{result.status}",
        objective_value=float(result.fun),
        values=np.asarray(result.x),
        optimal=result.status == 0,
        solve_time_s=elapsed,
    )
