"""Shared skeleton of the deployment MIP encodings and solvers.

The longest-link (Sect. 4.1) and longest-path (Sect. 4.4) MIPs differ only
in their objective machinery; everything else — the padded assignment
block, the Hungarian decode, the warm-start plumbing, the whole
branch-and-bound / HiGHS driving logic — used to be duplicated between the
two solver modules.  This module is the template-method factoring:

* :class:`DeploymentEncoding` builds the common model structure (binary
  assignment variables over the dummy-padded graph, the two assignment
  equality blocks, the solution decoding) and defers the objective
  variables / constraints to two hooks subclasses implement.
* :class:`MipDeploymentSolver` is the common ``_solve`` body: clustering,
  warm starts, backend selection, fallback plans and result assembly; a
  subclass only names its encoding class and solver metadata.

Placement constraints are lowered directly into the model through the
variable-fixing hook: a disallowed assignment variable is fixed to 0 (and a
pin's variable to 1) via bounds, which eliminates the disallowed block of
the ``|E| * |S|^2`` constraint interactions from every LP relaxation — the
MIP searches only the feasible region instead of relying on the post-hoc
repair.  The ``use_engine=False`` reference path keeps the historical
constraint-blind model (and the base-class repair) so the engine-vs-oracle
agreement suite stays meaningful.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ...core.communication_graph import CommunicationGraph, augment_with_dummy_nodes
from ...core.cost_matrix import CostMatrix
from ...core.deployment import DeploymentPlan
from ...core.evaluation import compile_problem
from ...core.objectives import deployment_cost
from ...core.problem import DeploymentProblem
from ..base import (
    ConvergenceTrace,
    DeploymentSolver,
    SearchBudget,
    SolverResult,
    Stopwatch,
    best_constrained_random_plan,
    best_random_plan,
    constrained_warm_start,
    default_limits,
)
from .branch_and_bound import (
    BranchAndBound,
    DeploymentRounder,
    warm_start_assignment,
)
from .model import MipModel
from .scipy_backend import solve_milp


class DeploymentEncoding:
    """Template-method base of the two deployment MIP encodings.

    Builds the shared structure — binary ``x_ij`` assignment variables over
    the dummy-padded graph, the per-node and per-instance assignment
    equalities, the gather map used to decode solution vectors — and calls
    two hooks in a fixed order that keeps variable and constraint indices
    identical to the historical hand-written encodings:

    1. ``_add_objective_variables()`` — right after the ``x`` block;
    2. ``_add_objective_constraints()`` — after the assignment equalities
       (this hook also sets the objective).

    Args:
        graph: the application communication graph.
        costs: pairwise link costs over the allocated instances.
        allowed_mask: optional boolean ``(num_nodes, num_instances)``
            placement mask in ``graph.nodes`` × instance-index order (see
            :class:`~repro.core.evaluation.CompiledConstraints`).  When
            given, disallowed assignment variables are fixed to 0 and
            forced ones to 1 via bounds, and the Hungarian decode is
            steered away from disallowed cells.
    """

    def __init__(self, graph: CommunicationGraph, costs: CostMatrix,
                 allowed_mask: Optional[np.ndarray] = None):
        self._validate_graph(graph)
        self.graph = graph
        self.costs = costs
        self.instance_ids = list(costs.instance_ids)
        self.cost_array = costs.as_array()
        self.padded_graph = augment_with_dummy_nodes(graph, costs.num_instances)
        self.nodes = list(self.padded_graph.nodes)
        self.num_instances = costs.num_instances

        self.model = MipModel()
        self.x_index: Dict[Tuple[int, int], int] = {}
        for node in self.nodes:
            for j in range(self.num_instances):
                self.x_index[(node, j)] = self.model.add_binary(f"x[{node},{j}]")
        self._add_objective_variables()
        # Variable indices of the x block as a (nodes, instances) gather map,
        # so solution vectors can be reshaped into assignment weights without
        # a per-entry Python loop.
        self._x_block = np.array(
            [[self.x_index[(node, j)] for j in range(self.num_instances)]
             for node in self.nodes],
            dtype=np.intp,
        )

        # Assignment constraints: each node on exactly one instance and each
        # instance hosting exactly one (possibly dummy) node.
        for node in self.nodes:
            self.model.add_equality(
                {self.x_index[(node, j)]: 1.0 for j in range(self.num_instances)}, 1.0
            )
        for j in range(self.num_instances):
            self.model.add_equality(
                {self.x_index[(node, j)]: 1.0 for node in self.nodes}, 1.0
            )

        self._decode_mask: Optional[np.ndarray] = None
        if allowed_mask is not None:
            self._fix_placements(np.asarray(allowed_mask, dtype=bool))

        self._add_objective_constraints()

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def _validate_graph(self, graph: CommunicationGraph) -> None:
        """Reject graphs the encoding cannot express (hook; default: none)."""

    def _add_objective_variables(self) -> None:
        """Add the objective-side variables (hook)."""
        raise NotImplementedError

    def _add_objective_constraints(self) -> None:
        """Add the objective-side constraints and set the objective (hook)."""
        raise NotImplementedError

    def solution_vector(self, assignment: Dict[int, int]) -> np.ndarray:
        """Full variable vector realising a node -> instance-index map (hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Constraint lowering
    # ------------------------------------------------------------------ #

    def _fix_placements(self, mask: np.ndarray) -> None:
        """Fix assignment variables according to a placement mask.

        Disallowed ``(node, instance)`` pairs get ``x_ij`` fixed to 0 —
        eliminating their share of the ``|E| * |S|^2`` objective
        interactions from every LP relaxation — and a node whose row leaves
        a single instance (a pin, or a forbidden set squeezed to one value)
        gets that variable fixed to 1.  Dummy (padding) nodes are barred
        from forced instances: the forced node occupies them in any
        feasible solution.
        """
        forced_columns = []
        for row, node in enumerate(self.graph.nodes):
            allowed = np.flatnonzero(mask[row])
            for j in range(self.num_instances):
                if not mask[row, j]:
                    self.model.set_variable_bounds(
                        self.x_index[(node, j)], upper=0.0)
            if allowed.size == 1:
                self.model.set_variable_bounds(
                    self.x_index[(node, int(allowed[0]))], lower=1.0)
                forced_columns.append(int(allowed[0]))
        real_nodes = set(self.graph.nodes)
        for node in self.nodes:
            if node in real_nodes:
                continue
            for j in forced_columns:
                self.model.set_variable_bounds(self.x_index[(node, j)],
                                               upper=0.0)
        decode_mask = np.ones((len(self.nodes), self.num_instances), dtype=bool)
        decode_mask[: len(self.graph.nodes)] = mask
        if forced_columns:
            decode_mask[len(self.graph.nodes):, forced_columns] = False
        self._decode_mask = decode_mask

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #

    def decode(self, values: np.ndarray) -> DeploymentPlan:
        """Extract an injective deployment plan from a solution vector.

        A Hungarian assignment on the ``x`` block guards against slightly
        fractional or degenerate solutions.
        """
        return self._assignment_to_plan(self._extract_assignment(values))

    def rounding_callback(self, values: np.ndarray) -> Optional[np.ndarray]:
        """Primal heuristic: round a fractional LP solution to a deployment."""
        assignment = self._extract_assignment(values)
        return self.solution_vector(assignment)

    def _extract_assignment(self, values: np.ndarray) -> Dict[int, int]:
        weights = np.asarray(values)[self._x_block]
        if self._decode_mask is not None:
            # Assignment weights live in [0, 1], so a penalty below
            # -(num rows) makes the matching avoid every disallowed cell
            # whenever a feasible perfect matching exists (it does: joint
            # feasibility is validated at problem construction).
            weights = np.where(self._decode_mask, weights,
                               -float(len(self.nodes) + 1))
        rows, cols = linear_sum_assignment(-weights)
        return {self.nodes[int(r)]: int(c) for r, c in zip(rows, cols)}

    def _assignment_to_plan(self, assignment: Dict[int, int]) -> DeploymentPlan:
        return DeploymentPlan({
            node: self.instance_ids[assignment[node]] for node in self.graph.nodes
        })


class MipDeploymentSolver(DeploymentSolver):
    """Template-method base of the two deployment MIP solvers.

    Subclasses set :attr:`encoding_factory` (their
    :class:`DeploymentEncoding` subclass) plus the usual solver metadata;
    the whole ``_solve`` body — clustering, warm starts, constraint
    lowering, backend dispatch, fallbacks, result assembly — lives here
    once.

    Args:
        backend: ``"bnb"`` uses the pure-Python branch and bound (produces
            an incumbent convergence trace, like reading a CPLEX log);
            ``"milp"`` hands the model to SciPy's HiGHS MILP solver.
        k_clusters: optional cost clustering applied before encoding.
        round_to: rounding grid for clustering.
        node_limit: branch-and-bound node limit.
        use_engine: score branch-and-bound incumbent roundings in batches
            through the compiled evaluation engine and lower placement
            constraints into the model (default); ``False`` keeps the
            scalar model-scored, constraint-blind path as the reference.
        initial_random_plans: number of random plans drawn to seed the
            incumbent when ``seed`` is given and no warm start is supplied
            (the paper seeds its solvers with the best of 10 random
            deployments, Sect. 6.3.1).
        seed: RNG seed for the random warm start.  ``None`` (the default)
            draws no warm start, preserving the historical behaviour.
    """

    #: Encoding class instantiated per problem; set by subclasses.
    encoding_factory = None
    supports_constraints = True
    #: The warm start becomes the branch-and-bound's initial incumbent
    #: (its objective value prunes every node whose LP bound cannot beat
    #: it), so a near-optimal incumbent after a small drift turns the
    #: re-solve into mostly bound checks.
    supports_warm_start = True

    def __init__(self, backend: str = "bnb", k_clusters: Optional[int] = None,
                 round_to: float | None = 0.01, node_limit: int | None = 5000,
                 use_engine: bool = True, initial_random_plans: int = 10,
                 seed: int | None = None):
        if backend not in ("bnb", "milp"):
            raise ValueError("backend must be 'bnb' or 'milp'")
        self.backend = backend
        self.k_clusters = k_clusters
        self.round_to = round_to
        self.node_limit = node_limit
        self.use_engine = use_engine
        self.initial_random_plans = max(1, initial_random_plans)
        self._seed = seed

    def handles_constraints(self, problem: DeploymentProblem) -> bool:
        """Constraints are fixed into the model on the engine path only."""
        return self.use_engine

    def _solve(self, problem: DeploymentProblem,
               budget: SearchBudget | None = None,
               initial_plan: DeploymentPlan | None = None) -> SolverResult:
        graph, costs, objective = problem.graph, problem.costs, problem.objective
        budget = default_limits(budget, SearchBudget.seconds(30.0))
        watch = Stopwatch(budget)
        trace = ConvergenceTrace()
        constraints = problem.constraints
        view = problem.compiled_constraints() if self.use_engine else None
        if view is not None:
            initial_plan = constrained_warm_start(problem, initial_plan)
        if initial_plan is None and self._seed is not None:
            if view is None:
                initial_plan, _ = best_random_plan(
                    graph, costs, objective, self.initial_random_plans,
                    rng=self._seed, workers=budget.workers,
                )
            else:
                initial_plan, _ = best_constrained_random_plan(
                    problem, self.initial_random_plans, rng=self._seed,
                    workers=budget.workers)

        clustered = costs.clustered(self.k_clusters, round_to=self.round_to) \
            if self.k_clusters is not None else costs
        encoding = type(self).encoding_factory(
            graph, clustered,
            allowed_mask=None if view is None else view.allowed_mask,
        )

        if self.use_engine:
            engine = compile_problem(graph, costs)

            def score(plan: DeploymentPlan) -> float:
                return engine.evaluate_plan(plan, objective)
        else:
            def score(plan: DeploymentPlan) -> float:
                return deployment_cost(plan, graph, costs, objective)

        if initial_plan is not None:
            trace.record(watch.elapsed(), score(initial_plan))

        if self.backend == "milp":
            solution = solve_milp(encoding.model, time_limit_s=budget.time_limit_s)
            optimal = solution.optimal
            iterations = 1
            incumbents: Tuple[Tuple[float, float], ...] = ()
            values = solution.values
        else:
            if self.use_engine:
                bnb = BranchAndBound(encoding.model, batch_rounder=DeploymentRounder(
                    encoding, compile_problem(graph, clustered), objective,
                    workers=budget.workers))
            else:
                bnb = BranchAndBound(encoding.model,
                                     rounding_callback=encoding.rounding_callback)
            warm_vector = None
            if initial_plan is not None:
                warm_vector = encoding.solution_vector(
                    warm_start_assignment(encoding, initial_plan))
            result = bnb.solve(time_limit_s=budget.time_limit_s,
                               node_limit=self.node_limit
                               if budget.max_iterations is None
                               else budget.max_iterations,
                               initial_incumbent=warm_vector)
            solution = result.solution
            optimal = result.proven_optimal
            iterations = result.nodes_explored
            incumbents = result.incumbent_trace
            values = solution.values

        if values is None:
            # No feasible solution produced within budget: fall back to the
            # warm start or the identity plan so callers always get a plan
            # (made feasible natively when constraints are in play).
            plan = initial_plan if initial_plan is not None else \
                DeploymentPlan.identity(graph.nodes,
                                        costs.instance_ids[: graph.num_nodes])
            if view is not None and constraints is not None \
                    and not constraints.satisfied_by(plan):
                plan = constraints.repair(plan, costs.instance_ids)
            optimal = False
        else:
            plan = encoding.decode(values)

        cost = score(plan)
        if initial_plan is not None:
            warm_cost = score(initial_plan)
            if warm_cost < cost:
                plan, cost = initial_plan, warm_cost
        for when, objective_value in incumbents:
            trace.record(when, objective_value)
        trace.record(watch.elapsed(), cost)

        return SolverResult(
            plan=plan, cost=cost, objective=objective, solver_name=self.name,
            solve_time_s=watch.elapsed(), iterations=iterations,
            optimal=optimal and self.k_clusters is None,
            trace=trace.as_tuples(),
        )
