"""Mixed-integer programming formulations and solvers."""

from .branch_and_bound import BranchAndBound, BranchAndBoundResult, DeploymentRounder
from .deployment import DeploymentEncoding, MipDeploymentSolver
from .llndp_mip import LLNDPEncoding, MIPLongestLinkSolver
from .lpndp_mip import LPNDPEncoding, MIPLongestPathSolver
from .model import LinearConstraintRow, MipModel, MipSolution, Variable
from .scipy_backend import solve_lp_relaxation, solve_milp

__all__ = [
    "BranchAndBound",
    "BranchAndBoundResult",
    "DeploymentEncoding",
    "DeploymentRounder",
    "LLNDPEncoding",
    "LPNDPEncoding",
    "LinearConstraintRow",
    "MIPLongestLinkSolver",
    "MIPLongestPathSolver",
    "MipDeploymentSolver",
    "MipModel",
    "MipSolution",
    "Variable",
    "solve_lp_relaxation",
    "solve_milp",
]
