"""Shared request-scope dependencies of the serving layer.

The route handlers stay thin because everything cross-cutting lives here:
the service configuration (:class:`ServeConfig`), the parsed request
envelope handed to every handler (:class:`Request`), tenant resolution
from the configured header, and the :class:`HttpError` type that maps
library failures onto HTTP status codes in one place instead of inside
each route.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..core.errors import ClouDiAError

#: Header carrying the tenant name; matching is case-insensitive.
DEFAULT_TENANT_HEADER = "x-tenant"

#: Tenant requests are attributed to when the header is absent.
DEFAULT_TENANT = "public"

#: Tenant names must be short and printable — they key fairness queues
#: and metrics, so an attacker-controlled header must not explode either.
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class HttpError(ClouDiAError):
    """A failure with a definite HTTP status code.

    Raised by routes and dependencies; the HTTP binding serialises it as
    ``{"error": ..., "status": ...}`` with the carried status code.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one advisor service process.

    Attributes:
        workers: solver worker threads draining the shared queue.
        max_queue: bound on queued jobs; beyond it submissions get 429.
        request_timeout_s: how long a synchronous ``/v1/solve`` waits for
            its job before returning 504 (the job keeps running and stays
            pollable under its job id).
        tenant_header: HTTP header resolved into the tenant name.
        default_tenant: tenant used when the header is absent.
        tenant_weights: deficit-round-robin weights (see
            :class:`~repro.serve.scheduler.FairScheduler`).
        max_finished_jobs: bound on finished jobs kept for ``/v1/jobs``.
        max_body_bytes: bound on accepted request bodies.
        eval_workers: forwarded to :class:`~repro.api.AdvisorSession`.
        drain_timeout_s: how long a graceful shutdown waits for in-flight
            jobs before detaching the worker threads.
    """

    workers: int = 2
    max_queue: int = 256
    request_timeout_s: float = 30.0
    tenant_header: str = DEFAULT_TENANT_HEADER
    default_tenant: str = DEFAULT_TENANT
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    max_finished_jobs: int = 1024
    max_body_bytes: int = 16 * 1024 * 1024
    eval_workers: Optional[object] = None
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")


@dataclass(frozen=True)
class Request:
    """The parsed request envelope handed to route handlers."""

    method: str
    path: str
    tenant: str
    query: Mapping[str, str] = field(default_factory=dict)
    params: Mapping[str, str] = field(default_factory=dict)
    body: Optional[Any] = None

    def json_object(self) -> Dict[str, Any]:
        """The body as a JSON object, or 400."""
        if not isinstance(self.body, dict):
            raise HttpError(
                400, f"{self.method} {self.path} expects a JSON object body")
        return self.body


def resolve_tenant(headers: Mapping[str, str], config: ServeConfig) -> str:
    """The tenant a request belongs to, from the configured header.

    Raises:
        HttpError: 400 on a malformed tenant name.
    """
    wanted = config.tenant_header.lower()
    for name, value in headers.items():
        if name.lower() == wanted:
            tenant = value.strip()
            if not _TENANT_RE.match(tenant):
                raise HttpError(
                    400,
                    f"invalid tenant name in {config.tenant_header!r} "
                    f"header (1-64 chars of [A-Za-z0-9._-])",
                )
            return tenant
    return config.default_tenant
