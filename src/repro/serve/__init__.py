"""``repro.serve`` — the multi-tenant HTTP front door of the advisor.

The paper frames ClouDiA as a deployment *advisor* applications consult;
this package is the serving layer that makes the consultation an HTTP
call.  Stdlib only (``http.server`` + ``json``), layered the way the
related serving systems are::

    http.py          transport: ThreadingHTTPServer, JSON, signals
    app.py           wiring + the submit path (store -> coalesce -> queue)
    routes/          one thin module per endpoint family
    queries.py       read-side: solver catalog, history rendering
    dependencies.py  config, tenancy, the HttpError status mapping
    pagination.py    the shared limit/offset envelope
    scheduler.py     priorities, tenant fairness (DRR), coalescing
    workers.py       the stateless solver worker pool
    metrics.py       counters + latency percentiles for /metrics

Endpoints: ``POST /v1/solve`` (sync + async), ``POST /v1/solve-batch``,
``GET /v1/jobs/<id>``, ``GET /v1/solvers``, ``GET /v1/history`` (+
``/v1/history/<run>``), ``GET /healthz``, ``GET /metrics``.  See
``docs/SERVICE.md`` for the full contract.
"""

from .app import AdvisorApp, create_app
from .dependencies import DEFAULT_TENANT, DEFAULT_TENANT_HEADER, HttpError, \
    Request, ServeConfig
from .http import AdvisorHTTPServer, create_server, serve_until_signal
from .metrics import LatencyReservoir, ServiceMetrics
from .pagination import PageParams, paginate
from .scheduler import (
    PRIORITY_BATCH,
    PRIORITY_DRIFT,
    PRIORITY_INTERACTIVE,
    PRIORITY_LABELS,
    PRIORITY_NAMES,
    FairScheduler,
    Job,
    JobTable,
    QueueFullError,
    SchedulerClosedError,
    SchedulerStats,
    coalesce_key,
    parse_priority,
)
from .workers import WorkerPool

__all__ = [
    "AdvisorApp",
    "AdvisorHTTPServer",
    "DEFAULT_TENANT",
    "DEFAULT_TENANT_HEADER",
    "FairScheduler",
    "HttpError",
    "Job",
    "JobTable",
    "LatencyReservoir",
    "PRIORITY_BATCH",
    "PRIORITY_DRIFT",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_LABELS",
    "PRIORITY_NAMES",
    "PageParams",
    "QueueFullError",
    "Request",
    "SchedulerClosedError",
    "SchedulerStats",
    "ServeConfig",
    "ServiceMetrics",
    "WorkerPool",
    "coalesce_key",
    "create_app",
    "create_server",
    "paginate",
    "parse_priority",
    "serve_until_signal",
]
