"""The service's shared work queue: priorities, fairness, coalescing.

Three properties turn a plain queue into one that can sit in front of a
multi-tenant solver fleet:

* **Priority classes** — drift re-solves (a deployed plan is going stale
  *right now*) preempt interactive solves, which preempt batch backfill.
  Dequeueing always drains the most urgent non-empty class first.
* **Per-tenant fairness** — within a priority class, tenants are served by
  deficit round-robin: every pass over the active-tenant rotation grants
  each tenant its weight in credits and serves jobs while credits last, so
  a tenant flooding the queue gets throughput proportional to its weight
  instead of starving everyone behind its backlog.
* **In-flight coalescing** — jobs are keyed on the problem fingerprint
  plus a solver/config/budget tag (the same key the persistent result
  cache uses).  Submitting a job whose key is already queued or executing
  attaches the caller to the existing job instead of enqueueing a
  duplicate, so identical concurrent requests compile and solve exactly
  once and every caller receives the one shared response.

The queue is bounded: :meth:`FairScheduler.submit` raises
:class:`QueueFullError` (the HTTP layer maps it to ``429``) instead of
buffering without limit, and :class:`SchedulerClosedError` once a graceful
drain has begun (mapped to ``503``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..api.schema import SolveRequest, SolverResponse
from ..core.errors import ClouDiAError
from ..solvers.registry import SolverRegistry

#: Priority classes, most urgent first.  Lower value = served earlier.
PRIORITY_DRIFT = 0
PRIORITY_INTERACTIVE = 1
PRIORITY_BATCH = 2

#: Wire names of the priority classes (request payloads use these).
PRIORITY_NAMES: Dict[str, int] = {
    "drift": PRIORITY_DRIFT,
    "interactive": PRIORITY_INTERACTIVE,
    "batch": PRIORITY_BATCH,
}

#: Inverse of :data:`PRIORITY_NAMES`, for serialization.
PRIORITY_LABELS: Dict[int, str] = {
    value: name for name, value in PRIORITY_NAMES.items()
}

#: Job lifecycle states surfaced by ``GET /v1/jobs/<id>``.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_ERROR = "error"


class QueueFullError(ClouDiAError):
    """Raised when the bounded work queue cannot accept another job."""


class SchedulerClosedError(ClouDiAError):
    """Raised when a job is submitted to a draining/closed scheduler."""


def parse_priority(value, default: int = PRIORITY_INTERACTIVE) -> int:
    """Map a wire priority (name or int) to a priority class.

    Raises:
        ClouDiAError: on an unknown name or out-of-range integer.
    """
    if value is None:
        return default
    if isinstance(value, str):
        try:
            return PRIORITY_NAMES[value]
        except KeyError:
            raise ClouDiAError(
                f"unknown priority {value!r}; expected one of "
                f"{', '.join(sorted(PRIORITY_NAMES))}"
            ) from None
    if isinstance(value, int) and value in PRIORITY_LABELS:
        return value
    raise ClouDiAError(f"unknown priority {value!r}")


def coalesce_key(registry: SolverRegistry, request: SolveRequest
                 ) -> Tuple[str, str]:
    """``(fingerprint, solver tag)`` identifying one unit of solving work.

    The fingerprint covers the problem content (graph, costs, objective,
    constraints); the tag covers the resolved solver key plus a digest of
    its config, budget and warm-start plan — the same shape
    :meth:`AdvisorSession._solver_cache_tag` uses for the persistent
    result cache, so the scheduler's dedup key and the store's cache key
    agree on what "the same solve" means.
    """
    solver_key = request.resolved_solver_key(registry)
    payload = json.dumps(
        {
            "config": {key: request.config[key]
                       for key in sorted(request.config)},
            "budget": None if request.budget is None
            else request.budget.to_dict(),
            "initial_plan": None if request.initial_plan is None
            else request.initial_plan.to_dict(),
        },
        sort_keys=True, default=repr,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return request.problem.fingerprint(), f"{solver_key}.{digest}"


@dataclass
class Job:
    """One queued unit of solving work and its shared outcome.

    A job is created per *distinct* solve; coalesced submissions share the
    same object, wait on the same :class:`threading.Event`, and read the
    same response.  ``source`` records how the response was produced —
    ``"solver"`` for a worker-executed solve, ``"store"`` for a submit-time
    persistent-cache hit (those jobs never enter the queue).
    """

    job_id: str
    tenant: str
    priority: int
    request: SolveRequest
    fingerprint: str
    cache_tag: str
    created_at: float = field(default_factory=time.time)
    status: str = STATUS_QUEUED
    source: str = "solver"
    response: Optional[SolverResponse] = None
    error: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Submissions answered by this job (1 = no coalescing happened).
    attached: int = 1
    #: Whether a served/latency metric was recorded for this job on the
    #: poll path (``GET /v1/jobs``), so repeat polls don't double-count.
    served_recorded: bool = False
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def key(self) -> Tuple[str, str]:
        """The coalescing key: ``(fingerprint, solver tag)``."""
        return self.fingerprint, self.cache_tag

    def finish(self, response: Optional[SolverResponse] = None,
               error: Optional[str] = None) -> None:
        """Publish the outcome and wake every waiter (idempotent)."""
        if self.done.is_set():
            return
        self.response = response
        self.error = error
        self.status = STATUS_ERROR if error is not None else STATUS_DONE
        self.finished_at = time.time()
        self.done.set()

    def wait(self, timeout: Optional[float]) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        return self.done.wait(timeout)

    def to_dict(self, include_response: bool = True) -> Dict:
        """JSON-serializable job status (the ``/v1/jobs/<id>`` body)."""
        payload: Dict = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": PRIORITY_LABELS[self.priority],
            "status": self.status,
            "source": self.source,
            "attached": self.attached,
            "fingerprint": self.fingerprint,
            "solver_tag": self.cache_tag,
        }
        if self.error is not None:
            payload["error"] = self.error
        if include_response and self.response is not None:
            payload["response"] = self.response.to_dict()
        return payload


@dataclass(frozen=True)
class SchedulerStats:
    """Counters of one :class:`FairScheduler`."""

    submitted: int = 0
    coalesced: int = 0
    dequeued: int = 0
    rejected: int = 0
    depths: Mapping[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-serializable snapshot."""
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "dequeued": self.dequeued,
            "rejected": self.rejected,
            "depths": dict(self.depths),
        }


class FairScheduler:
    """Bounded, prioritised, tenant-fair, deduplicating work queue.

    Args:
        max_queue: bound on the number of *queued* jobs (executing jobs do
            not count); submissions beyond it raise :class:`QueueFullError`.
        tenant_weights: deficit-round-robin weight per tenant name; a
            tenant absent from the mapping gets ``default_weight``.  A
            tenant with weight 2 is served twice as often as a weight-1
            tenant when both have backlog.
        default_weight: weight of tenants without an explicit entry.
    """

    def __init__(self, max_queue: int = 256,
                 tenant_weights: Optional[Mapping[str, float]] = None,
                 default_weight: float = 1.0):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        for tenant, weight in (tenant_weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight for {tenant!r} must be > 0")
        self.max_queue = max_queue
        self.tenant_weights = dict(tenant_weights or {})
        self.default_weight = default_weight
        self._cond = threading.Condition()
        self._queues: Dict[int, Dict[str, Deque[Job]]] = {
            priority: {} for priority in PRIORITY_LABELS
        }
        #: Active-tenant rotation per priority class (insertion order).
        self._rotations: Dict[int, List[str]] = {
            priority: [] for priority in PRIORITY_LABELS
        }
        self._cursors: Dict[int, int] = dict.fromkeys(PRIORITY_LABELS, 0)
        self._deficits: Dict[Tuple[int, str], float] = {}
        #: Slot the cursor is parked on mid-service (quantum already
        #: granted this visit), per priority class.
        self._parked: Dict[int, Optional[Tuple[int, str]]] = \
            dict.fromkeys(PRIORITY_LABELS)
        #: Jobs queued or executing, by coalescing key.
        self._inflight: Dict[Tuple[str, str], Job] = {}
        self._queued = 0
        self._closed = False
        self._submitted = 0
        self._coalesced = 0
        self._dequeued = 0
        self._rejected = 0
        self._ids = itertools.count()
        self._id_prefix = uuid.uuid4().hex[:8]

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    def new_job_id(self) -> str:
        """A process-unique job identifier."""
        with self._cond:
            return f"job-{self._id_prefix}-{next(self._ids):06d}"

    def submit(self, job: Job) -> Tuple[Job, bool]:
        """Enqueue ``job``, or attach it to an identical in-flight job.

        Returns:
            ``(effective_job, coalesced)`` — when ``coalesced`` is true the
            caller should wait on the returned (pre-existing) job instead
            of the one it built.

        Raises:
            SchedulerClosedError: the scheduler is draining or closed.
            QueueFullError: the queue bound is reached (the submission is
                counted in ``rejected``).
        """
        with self._cond:
            if self._closed:
                raise SchedulerClosedError(
                    "scheduler is draining; not accepting new work")
            existing = self._inflight.get(job.key)
            if existing is not None:
                existing.attached += 1
                self._coalesced += 1
                self._submitted += 1
                if job.priority < existing.priority:
                    # A more urgent twin arrived: re-file the queued job
                    # under the urgent class, else a drift re-solve would
                    # wait at batch priority — inversion for exactly the
                    # requests the classes exist to expedite.
                    self._promote_locked(existing, job.priority)
                return existing, True
            if self._queued >= self.max_queue:
                self._rejected += 1
                raise QueueFullError(
                    f"work queue is full ({self.max_queue} jobs queued); "
                    f"retry later"
                )
            self._submitted += 1
            self._queued += 1
            tenants = self._queues[job.priority]
            queue = tenants.get(job.tenant)
            if queue is None:
                queue = tenants[job.tenant] = deque()
                self._rotations[job.priority].append(job.tenant)
            queue.append(job)
            self._inflight[job.key] = job
            self._cond.notify()
            return job, False

    def _promote_locked(self, job: Job, priority: int) -> None:
        """Move a still-queued job into a more urgent priority class.

        A no-op when the job has already been dequeued (running jobs
        cannot be expedited).  Caller holds the lock.
        """
        tenants = self._queues[job.priority]
        queue = tenants.get(job.tenant)
        if queue is None:
            return
        for position, entry in enumerate(queue):
            if entry is job:
                del queue[position]
                break
        else:
            return
        if not queue:
            # Replicate _pick_locked's drained-tenant cleanup.
            del tenants[job.tenant]
            rotation = self._rotations[job.priority]
            index = rotation.index(job.tenant)
            rotation.pop(index)
            slot = (job.priority, job.tenant)
            self._deficits.pop(slot, None)
            if self._parked.get(job.priority) == slot:
                self._parked[job.priority] = None
            if self._cursors[job.priority] > index:
                self._cursors[job.priority] -= 1
        job.priority = priority
        target = self._queues[priority]
        queue = target.get(job.tenant)
        if queue is None:
            queue = target[job.tenant] = deque()
            self._rotations[priority].append(job.tenant)
        queue.append(job)

    # ------------------------------------------------------------------ #
    # Consumer side (worker pool)
    # ------------------------------------------------------------------ #

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next job by priority then tenant fairness.

        Blocks up to ``timeout`` seconds (forever when ``None``) for work;
        returns ``None`` on timeout or once the scheduler is closed and
        drained — the worker-pool exit signal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._queued:
                    job = self._pick_locked()
                    self._dequeued += 1
                    job.status = STATUS_RUNNING
                    job.started_at = time.time()
                    return job
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def _pick_locked(self) -> Job:
        """Deficit round-robin pick; caller holds the lock, queue non-empty."""
        for priority in sorted(PRIORITY_LABELS):
            rotation = self._rotations[priority]
            if not rotation:
                continue
            tenants = self._queues[priority]
            # Each full pass grants every active tenant its weight in
            # credits, so a job is found within ceil(1/min_weight) passes.
            while True:
                index = self._cursors[priority] % len(rotation)
                tenant = rotation[index]
                slot = (priority, tenant)
                if self._parked.get(priority) == slot:
                    # Mid-service: the quantum was granted when the cursor
                    # arrived; only the stored residual applies.
                    credit = self._deficits.get(slot, 0.0)
                else:
                    weight = self.tenant_weights.get(
                        tenant, self.default_weight)
                    credit = self._deficits.get(slot, 0.0) + weight
                    self._parked[priority] = slot
                if credit < 1.0:
                    self._deficits[slot] = credit
                    self._cursors[priority] = index + 1
                    self._parked[priority] = None
                    continue
                queue = tenants[tenant]
                job = queue.popleft()
                self._queued -= 1
                credit -= 1.0
                if not queue:
                    # Tenant drained: leave the rotation, drop residual
                    # credit (classic DRR — credit does not accrue while
                    # idle, so a returning tenant cannot burst).
                    del tenants[tenant]
                    rotation.pop(index)
                    self._deficits.pop(slot, None)
                    self._cursors[priority] = index
                    self._parked[priority] = None
                elif credit < 1.0:
                    self._deficits[slot] = credit
                    self._cursors[priority] = index + 1
                    self._parked[priority] = None
                else:
                    self._deficits[slot] = credit
                return job
        raise AssertionError("queue count positive but no job found")

    def complete(self, job: Job) -> None:
        """Retire a finished job from the in-flight coalescing map.

        Call *after* :meth:`Job.finish`: late identical submissions then
        either attach to the finished job (result immediately available)
        or, once retired, go through the persistent store instead.
        """
        with self._cond:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    # ------------------------------------------------------------------ #
    # Lifecycle and introspection
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop accepting work; queued jobs still drain through workers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether a drain has begun."""
        with self._cond:
            return self._closed

    def depth(self) -> int:
        """Total queued (not yet dequeued) jobs."""
        with self._cond:
            return self._queued

    @property
    def stats(self) -> SchedulerStats:
        """Counters plus current per-priority queue depths."""
        with self._cond:
            depths = {
                PRIORITY_LABELS[priority]: sum(
                    len(queue) for queue in self._queues[priority].values())
                for priority in sorted(PRIORITY_LABELS)
            }
            return SchedulerStats(
                submitted=self._submitted, coalesced=self._coalesced,
                dequeued=self._dequeued, rejected=self._rejected,
                depths=depths,
            )


class JobTable:
    """Bounded registry of jobs for ``GET /v1/jobs/<id>``.

    Active (queued/running) jobs are always retained; finished jobs are
    kept in a bounded LRU so a long-lived server does not accumulate one
    entry per request forever.  A finished job evicted from the table
    simply answers 404 — its result lives on in the persistent store.
    """

    def __init__(self, max_finished: int = 1024):
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.max_finished = max_finished
        self._lock = threading.Lock()
        self._active: Dict[str, Job] = {}
        self._finished: "OrderedDict[str, Job]" = OrderedDict()

    def add(self, job: Job) -> None:
        """Track a job (in whatever state it currently is)."""
        with self._lock:
            if job.done.is_set():
                self._finished[job.job_id] = job
                self._trim_locked()
            else:
                self._active[job.job_id] = job

    def retire(self, job: Job) -> None:
        """Move a finished job from the active set into the bounded LRU."""
        with self._lock:
            self._active.pop(job.job_id, None)
            self._finished[job.job_id] = job
            self._trim_locked()

    def get(self, job_id: str) -> Optional[Job]:
        """The job registered under ``job_id``, or ``None``."""
        with self._lock:
            job = self._active.get(job_id)
            if job is None:
                job = self._finished.get(job_id)
                if job is not None:
                    self._finished.move_to_end(job_id)
            return job

    def _trim_locked(self) -> None:
        while len(self._finished) > self.max_finished:
            self._finished.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._active) + len(self._finished)
