"""The advisor service application: wiring, submit path, lifecycle.

:class:`AdvisorApp` is the HTTP-agnostic heart of ``repro.serve``: it owns
the shared :class:`~repro.api.AdvisorSession`, the durable store, the
:class:`~repro.serve.scheduler.FairScheduler`, the worker pool, the job
table and the metrics — and exposes exactly two things to the transport:
:meth:`handle` (dispatch one parsed request through the route table) and
the lifecycle methods (:meth:`start`, :meth:`drain`, :meth:`close`).

The submit path implements the layering the ISSUE's serving design calls
for::

    request -> fingerprint + solver tag          (content addressing)
            -> persistent store short-circuit    (repeats across restarts)
            -> in-flight coalescing              (concurrent duplicates)
            -> bounded fair queue                (priorities + tenants)
            -> worker pool -> shared session     (compile dedup)
            -> store write-back                  (the next repeat is free)

Keeping it transport-free means tests (and embedders) can drive the full
service semantics without opening a socket.
"""

from __future__ import annotations

import json
import sys
import time
import traceback
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qsl

from ..api.cache import ResultCache
from ..api.schema import SolveRequest, SolverResponse, SolveTelemetry
from ..core.errors import ClouDiAError, InvalidDeploymentError
from ..solvers.registry import SolverRegistry
from ..store import SQLiteResultCache
from ..api.session import AdvisorSession
from .dependencies import HttpError, Request, ServeConfig, resolve_tenant
from .metrics import ServiceMetrics
from .routes import build_router
from .scheduler import (
    STATUS_DONE,
    FairScheduler,
    Job,
    JobTable,
    coalesce_key,
)
from .workers import WorkerPool


class AdvisorApp:
    """One advisor service process (transport-agnostic).

    Args:
        store: the shared durable result/history store — a
            :class:`~repro.store.SQLiteResultCache`, a path a store is
            opened at, or ``None`` to serve without persistence (history
            endpoints then answer 503).
        config: service tunables; defaults to :class:`ServeConfig`.
        registry: solver registry; defaults to the process-wide one.
        start_workers: spawn the worker pool immediately.  Tests pass
            ``False`` to stage jobs deterministically before draining.
    """

    def __init__(self,
                 store: Optional[Union[SQLiteResultCache, str, Path]] = None,
                 config: Optional[ServeConfig] = None,
                 registry: Optional[SolverRegistry] = None,
                 start_workers: bool = True):
        self.config = config if config is not None else ServeConfig()
        if isinstance(store, (str, Path)):
            store = SQLiteResultCache(store)
        self.store = store
        self.session = AdvisorSession(
            registry=registry,
            result_cache=store,
            eval_workers=self.config.eval_workers,
        )
        self.scheduler = FairScheduler(
            max_queue=self.config.max_queue,
            tenant_weights=self.config.tenant_weights,
        )
        self.metrics = ServiceMetrics()
        self.jobs = JobTable(max_finished=self.config.max_finished_jobs)
        self.pool = WorkerPool(self.scheduler, self.session, self.metrics,
                               workers=self.config.workers, jobs=self.jobs)
        self.router = build_router()
        self._started_at = time.time()
        if start_workers:
            self.start()

    # ------------------------------------------------------------------ #
    # Submit path
    # ------------------------------------------------------------------ #

    def submit_solve(self, request: SolveRequest, tenant: str,
                     priority: int) -> Tuple[Job, str]:
        """Route one solve to the store, an in-flight twin, or the queue.

        Returns:
            ``(job, source)`` where ``source`` is this *caller's* path:
            ``"store"`` (already finished, served from the persistent
            store), ``"coalesced"`` (attached to an identical in-flight
            job) or ``"solver"`` (newly queued).

        Raises:
            QueueFullError: queue bound reached (HTTP 429).
            SchedulerClosedError: graceful drain in progress (HTTP 503).
            ClouDiAError: unknown solver key or malformed problem (400).
        """
        fingerprint, cache_tag = coalesce_key(self.session.registry, request)
        job_id = self.scheduler.new_job_id()
        request = request.with_id(job_id) if request.request_id is None \
            else request
        job = Job(job_id=job_id, tenant=tenant, priority=priority,
                  request=request, fingerprint=fingerprint,
                  cache_tag=cache_tag)

        served = self._store_lookup(request, fingerprint, cache_tag)
        if served is not None:
            job.source = "store"
            job.status = STATUS_DONE
            job.finish(response=served)
            self.jobs.add(job)
            self.metrics.record_store_hit()
            return job, "store"

        effective, coalesced = self.scheduler.submit(job)
        if not coalesced:
            self.jobs.add(job)
        return effective, ("coalesced" if coalesced else "solver")

    def _store_lookup(self, request: SolveRequest, fingerprint: str,
                      cache_tag: str) -> Optional[SolverResponse]:
        """A validated persistent-store response for the request, or None."""
        cache = self.session.result_cache
        if cache is None:
            return None
        started = time.perf_counter()
        result = cache.get(fingerprint, cache_tag)
        if result is None:
            return None
        try:
            request.problem.check_plan(result.plan)
        except InvalidDeploymentError:
            # Foreign or corrupt entry: degrade to a miss, never into
            # recommending an infeasible plan.
            return None
        elapsed = time.perf_counter() - started
        return SolverResponse(
            request_id=request.request_id,
            solver=request.resolved_solver_key(self.session.registry),
            status="ok", result=result,
            telemetry=SolveTelemetry(
                compile_cache_hit=False, compile_time_s=0.0,
                solve_time_s=0.0, total_time_s=elapsed,
            ),
        )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def handle(self, method: str, path: str,
               headers: Optional[Mapping[str, str]] = None,
               body: Optional[bytes] = None,
               query_string: str = "") -> Tuple[int, Dict]:
        """Dispatch one request; always returns ``(status, payload)``.

        The transport (HTTP handler, tests, an embedding process) passes
        the raw pieces; every parse/validation failure is mapped to a
        JSON error payload here, so no route can leak a traceback.
        """
        headers = headers or {}
        route_name = "unmatched"
        try:
            route, params = self.router.match(method, path)
            route_name = route.name
            tenant = resolve_tenant(headers, self.config)
            parsed_body = self._parse_body(body)
            request = Request(
                method=method, path=path, tenant=tenant,
                query=dict(parse_qsl(query_string)), params=params,
                body=parsed_body,
            )
            status, payload = route.handler(self, request)
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message,
                                           "status": exc.status}
        except ClouDiAError as exc:
            status, payload = 400, {"error": str(exc), "status": 400}
        except Exception as exc:  # noqa: BLE001 - service boundary
            traceback.print_exc(file=sys.stderr)
            status, payload = 500, {
                "error": f"internal error: {type(exc).__name__}",
                "status": 500,
            }
        self.metrics.record_request(route_name, status)
        return status, payload

    @staticmethod
    def _parse_body(body: Optional[bytes]):
        if not body:
            return None
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}"
                            ) from None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def draining(self) -> bool:
        """Whether a graceful drain has begun."""
        return self.scheduler.closed

    def metrics_snapshot(self) -> Dict:
        """The ``/metrics`` payload: one snapshot across every layer."""
        store_stats = None
        if self.store is not None:
            stats = self.store.stats
            store_stats = {"hits": stats.hits, "misses": stats.misses,
                           "writes": stats.writes,
                           "hit_rate": stats.hit_rate}
        return {
            "uptime_s": time.time() - self._started_at,
            "draining": self.draining,
            "workers": self.config.workers,
            "service": self.metrics.to_dict(),
            "scheduler": self.scheduler.stats.to_dict(),
            "session": self.session.stats.to_dict(),
            "store": store_stats,
            "tracked_jobs": len(self.jobs),
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        self.pool.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, finish the queue.

        Returns:
            ``True`` when every worker exited within the timeout
            (``config.drain_timeout_s`` by default).
        """
        self.scheduler.close()
        if not self.pool._started:  # nothing to wait for
            return True
        return self.pool.join(
            self.config.drain_timeout_s if timeout is None else timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain, then release the store connection.

        After a dirty drain (workers still mid-solve past the timeout)
        the store connection is left open — a straggler is about to
        write its result back, and yanking the connection out from under
        it would turn a graceful-degradation path into spurious errors.
        """
        self.drain(timeout=timeout)
        closer = getattr(self.store, "close", None)
        if closer is None:
            return
        if self.pool.alive():
            print("serve: drain timed out with workers still running; "
                  "leaving the store connection open for stragglers",
                  file=sys.stderr, flush=True)
            return
        closer()


def create_app(store: Optional[Union[SQLiteResultCache, ResultCache,
                                     str, Path]] = None,
               config: Optional[ServeConfig] = None,
               registry: Optional[SolverRegistry] = None,
               start_workers: bool = True) -> AdvisorApp:
    """Build an :class:`AdvisorApp` (the conventional factory spelling)."""
    return AdvisorApp(store=store, config=config, registry=registry,
                      start_workers=start_workers)
