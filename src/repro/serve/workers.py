"""The worker pool: stateless threads draining the fair scheduler.

Each worker loops on :meth:`FairScheduler.next_job`, executes the job
through the shared :class:`~repro.api.AdvisorSession` (which deduplicates
compilations across workers), persists the result into the durable store,
and publishes the response on the job — waking every coalesced waiter at
once.  Workers hold no per-request state of their own; everything durable
lives in the store and everything shared lives in the session, which is
what lets the pool be sized freely and lets siblings of a restarted
server pick up where it left off.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from typing import List, Optional

from ..api.session import AdvisorSession
from ..core.errors import StoreError
from .metrics import ServiceMetrics
from .scheduler import FairScheduler, Job, JobTable

#: How long an idle worker blocks per wait; short enough that a drain
#: request is noticed promptly even without a wakeup.
_IDLE_WAIT_S = 0.25


class WorkerPool:
    """Threads executing scheduler jobs through one advisor session.

    Args:
        scheduler: the shared fair queue to drain.
        session: the advisor session requests run through; its result
            cache (when store-backed) also receives every solved result.
        metrics: service counters (solver invocations, errors).
        workers: number of worker threads.
        jobs: the job table finished jobs are retired into, moving them
            from the always-retained active set to the bounded LRU so a
            long-lived server's memory stays bounded.
    """

    def __init__(self, scheduler: FairScheduler, session: AdvisorSession,
                 metrics: ServiceMetrics, workers: int = 2,
                 jobs: Optional[JobTable] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.scheduler = scheduler
        self.session = session
        self.metrics = metrics
        self.jobs = jobs
        self.num_workers = workers
        self._threads: List[threading.Thread] = []
        self._started = False

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"advisor-worker-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _run(self) -> None:
        while True:
            job = self.scheduler.next_job(timeout=_IDLE_WAIT_S)
            if job is None:
                if self.scheduler.closed:
                    return
                continue
            try:
                self.execute(job)
            except Exception:  # noqa: BLE001 - the pool must not shrink
                # The job already finished with the error (waiters woke);
                # swallowing here keeps the worker alive so one bad
                # request cannot permanently shrink the pool.
                traceback.print_exc(file=sys.stderr)

    def execute(self, job: Job) -> None:
        """Run one job to completion and publish its outcome.

        Every failure mode ends with :meth:`Job.finish` and
        :meth:`FairScheduler.complete` — a job can never be left hanging
        with waiters blocked on it.
        """
        try:
            response = self.session.solve_many([job.request])[0]
            self.metrics.record_solver_run(error=not response.ok)
            if response.ok:
                self._persist(job, response)
                job.source = "solver"
                job.finish(response=response)
            else:
                job.finish(response=response, error=response.error)
        except BaseException as exc:  # noqa: BLE001 - waiters must wake
            job.finish(error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self.scheduler.complete(job)
            if self.jobs is not None:
                self.jobs.retire(job)

    def _persist(self, job: Job, response) -> None:
        """Best-effort write of the solved result into the result cache.

        The store accelerates future requests; a failed write (full disk,
        lock timeout) must not fail the solve that produced the response.
        """
        cache = self.session.result_cache
        if cache is None or response.result is None:
            return
        try:
            record_problem = getattr(cache, "record_problem", None)
            if record_problem is not None:
                record_problem(job.request.problem)
            cache.put(job.fingerprint, job.cache_tag, response.result)
        except (StoreError, OSError):
            pass

    def alive(self) -> bool:
        """Whether any worker thread is still running."""
        return any(thread.is_alive() for thread in self._threads)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker to exit (after the scheduler closed).

        Returns:
            ``True`` when all workers exited within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(remaining)
        return not any(thread.is_alive() for thread in self._threads)
