"""Read-side queries of the serving layer.

The query layer between the routes and the data they render: solver
discovery delegates to the registry's own :meth:`SolverSpec.describe`
(the single machine-readable catalog the CLI's ``solvers --json`` shares),
and the history endpoints render the durable store's
:class:`~repro.store.WatchHistory` rows into JSON.  Routes never touch
the registry or the store directly, so what the service exposes is
greppable in one module.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..solvers.registry import SolverRegistry
from ..store.history import WatchRunSummary
from .dependencies import HttpError


def solver_catalog(registry: SolverRegistry) -> List[Dict]:
    """Machine-readable descriptions of every registered solver."""
    return [spec.describe() for spec in registry.specs()]


def run_summary_payload(summary: WatchRunSummary) -> Dict:
    """One ``watch_runs`` row as the ``/v1/history`` item JSON."""
    return {
        "run_id": summary.run_id,
        "root_fingerprint": summary.root_fingerprint,
        "solver": summary.solver,
        "objective": summary.objective,
        "final_cost": summary.final_cost,
        "resolves": summary.resolves,
        "cache_hits": summary.cache_hits,
        "redeployments": summary.redeployments,
        "holds": summary.holds,
        "created_at": summary.created_at,
        "num_events": summary.num_events,
    }


def history_runs(store, root_fingerprint: Optional[str] = None
                 ) -> List[WatchRunSummary]:
    """Recorded watch runs, newest first, optionally for one root problem.

    Raises:
        HttpError: 503 when the service runs without a durable store
            (history needs one — there is nothing to read otherwise).
    """
    history = getattr(store, "history", None)
    if history is None:
        raise HttpError(
            503, "history requires a durable store; start the service "
                 "with --store")
    runs = history.runs(root_fingerprint)
    runs.reverse()  # newest first: page 0 is the most recent activity
    return runs


def run_events(store, run_id: int) -> List[Dict]:
    """The full event log of one recorded run, as JSON dicts.

    Raises:
        HttpError: 503 without a store, 404 for an unknown run id.
    """
    history = getattr(store, "history", None)
    if history is None:
        raise HttpError(
            503, "history requires a durable store; start the service "
                 "with --store")
    events = history.events(run_id)
    if not events:
        raise HttpError(404, f"unknown watch run {run_id}")
    return [event.to_dict() for event in events]
