"""Limit/offset pagination shared by the list endpoints.

One place owns the query-parameter contract (``limit`` and ``offset``,
bounds-checked with a service-wide maximum page size) and the response
envelope (``items`` / ``total`` / ``limit`` / ``offset`` /
``next_offset``), so every paginated route behaves identically and a
client can walk any listing with the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from .dependencies import HttpError

#: Page size applied when the client does not pass ``limit``.
DEFAULT_LIMIT = 50

#: Hard ceiling on the page size a client may request.
MAX_LIMIT = 500


@dataclass(frozen=True)
class PageParams:
    """Validated ``limit`` / ``offset`` of one list request."""

    limit: int = DEFAULT_LIMIT
    offset: int = 0

    @classmethod
    def from_query(cls, query: Mapping[str, str],
                   default_limit: int = DEFAULT_LIMIT,
                   max_limit: int = MAX_LIMIT) -> "PageParams":
        """Parse pagination parameters from a query-string mapping.

        Raises:
            HttpError: 400 on non-integer, negative, zero or over-limit
                values.
        """
        limit = _int_param(query, "limit", default_limit)
        offset = _int_param(query, "offset", 0)
        if limit < 1:
            raise HttpError(400, "limit must be >= 1")
        if limit > max_limit:
            raise HttpError(400, f"limit must be <= {max_limit}")
        if offset < 0:
            raise HttpError(400, "offset must be >= 0")
        return cls(limit=limit, offset=offset)


def paginate(items: Sequence, params: PageParams,
             render: Optional[Callable] = None) -> Dict:
    """Slice ``items`` into the standard page envelope.

    ``render`` maps each included item to its JSON form (identity when
    omitted); only the items on the requested page are rendered.
    """
    total = len(items)
    page = items[params.offset:params.offset + params.limit]
    next_offset = params.offset + len(page)
    return {
        "items": [item if render is None else render(item) for item in page],
        "total": total,
        "limit": params.limit,
        "offset": params.offset,
        "next_offset": next_offset if next_offset < total else None,
    }


def _int_param(query: Mapping[str, str], name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise HttpError(400, f"{name} must be an integer, got {raw!r}"
                        ) from None
