"""Service telemetry: counters and latency percentiles for ``/metrics``.

Everything here is in-process and lock-guarded; the ``/metrics`` endpoint
serialises one consistent snapshot as JSON.  The snapshot stitches
together the layers' own telemetry rather than duplicating it: queue
depths and coalescing counters come from the scheduler, compile/cache hit
rates from :meth:`repro.api.SessionStats.to_dict`, store hit/miss/write
counters from the result store, and this module adds what only the HTTP
layer can see — per-route request counts, per-tenant served counts, how
each response was produced (solver run, store hit, coalesced wait), and
end-to-end latency percentiles.
"""

from __future__ import annotations

import threading
from bisect import insort
from collections import Counter, deque
from typing import Deque, Dict, Optional

#: Default bound on the latency reservoir (most recent samples kept).
DEFAULT_RESERVOIR = 2048

#: Percentiles exported by the metrics snapshot.
LATENCY_PERCENTILES = (0.5, 0.9, 0.99)


class LatencyReservoir:
    """Sliding window of the most recent request latencies.

    A bounded deque rather than a decaying sample: the service wants
    "latency lately", and a few thousand samples bound both memory and
    the cost of the sorted percentile scan.
    """

    def __init__(self, max_samples: int = DEFAULT_RESERVOIR):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self._count = 0
        self._total = 0.0

    def record(self, latency_s: float) -> None:
        """Add one end-to-end latency sample (seconds)."""
        self._samples.append(float(latency_s))
        self._count += 1
        self._total += float(latency_s)

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) over the window, ``None`` when empty."""
        if not self._samples:
            return None
        ordered: list = []
        for sample in self._samples:
            insort(ordered, sample)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def to_dict(self) -> Dict:
        """Count, mean and the exported percentiles (seconds)."""
        mean = self._total / self._count if self._count else None
        return {
            "count": self._count,
            "mean_s": mean,
            **{f"p{int(q * 100)}_s": self.percentile(q)
               for q in LATENCY_PERCENTILES},
        }


class ServiceMetrics:
    """Thread-safe counters of the HTTP serving layer."""

    def __init__(self, max_latency_samples: int = DEFAULT_RESERVOIR):
        self._lock = threading.Lock()
        self._requests: Counter = Counter()
        self._statuses: Counter = Counter()
        self._tenants: Counter = Counter()
        self._sources: Counter = Counter()
        self._solver_invocations = 0
        self._solver_errors = 0
        self._store_hits = 0
        self._latency = LatencyReservoir(max_latency_samples)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_request(self, route: str, status: int) -> None:
        """Count one HTTP request against its route and status code."""
        with self._lock:
            self._requests[route] += 1
            self._statuses[str(status)] += 1

    def record_served(self, tenant: str, source: str,
                      latency_s: float) -> None:
        """Count one answered solve: tenant, production path, latency."""
        with self._lock:
            self._tenants[tenant] += 1
            self._sources[source] += 1
            self._latency.record(latency_s)

    def record_solver_run(self, error: bool = False) -> None:
        """Count one worker-executed solver invocation."""
        with self._lock:
            self._solver_invocations += 1
            if error:
                self._solver_errors += 1

    def record_store_hit(self) -> None:
        """Count one submit-time persistent-store short-circuit."""
        with self._lock:
            self._store_hits += 1

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    @property
    def solver_invocations(self) -> int:
        """Worker-executed solver runs so far (the dedup acceptance metric)."""
        with self._lock:
            return self._solver_invocations

    @property
    def store_hits(self) -> int:
        """Submit-time store short-circuits so far."""
        with self._lock:
            return self._store_hits

    def to_dict(self) -> Dict:
        """JSON-serializable snapshot of the HTTP-layer counters."""
        with self._lock:
            return {
                "requests": dict(self._requests),
                "responses_by_status": dict(self._statuses),
                "served_by_tenant": dict(self._tenants),
                "served_by_source": dict(self._sources),
                "solver_invocations": self._solver_invocations,
                "solver_errors": self._solver_errors,
                "store_hits": self._store_hits,
                "latency": self._latency.to_dict(),
            }
