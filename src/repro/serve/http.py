"""Stdlib HTTP binding: ``ThreadingHTTPServer`` in front of the app.

No framework, no new dependency: :class:`AdvisorRequestHandler` turns each
HTTP exchange into one :meth:`AdvisorApp.handle` call and serialises the
``(status, payload)`` it returns as JSON.  ``ThreadingHTTPServer`` gives
every connection its own thread — those threads only parse and then
*wait* on jobs, while the CPU work happens on the app's worker pool, so
slow solves never block health checks or metrics scrapes.

:func:`serve_until_signal` is the production entry (used by ``repro
serve``): it installs SIGTERM/SIGINT handlers that stop accepting
connections, drain the work queue through the workers, and only then let
the process exit.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from .app import AdvisorApp
from .dependencies import HttpError


class AdvisorHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AdvisorApp`."""

    #: Connection threads must not block interpreter exit after a drain.
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: AdvisorApp,
                 quiet: bool = True):
        super().__init__(address, AdvisorRequestHandler)
        self.app = app
        self.quiet = quiet


class AdvisorRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange -> one :meth:`AdvisorApp.handle` call."""

    server: AdvisorHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("DELETE")

    def do_PUT(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("PUT")

    # ------------------------------------------------------------------ #

    def _dispatch(self, method: str) -> None:
        app = self.server.app
        parts = urlsplit(self.path)
        try:
            body = self._read_body(app.config.max_body_bytes)
        except HttpError as exc:
            self._respond(exc.status,
                          {"error": exc.message, "status": exc.status})
            return
        status, payload = app.handle(
            method, parts.path, headers=dict(self.headers.items()),
            body=body, query_string=parts.query,
        )
        self._respond(status, payload)

    def _read_body(self, max_bytes: int) -> bytes:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            return b""
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, "malformed Content-Length header") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length header")
        if length > max_bytes:
            raise HttpError(
                413, f"request body exceeds the {max_bytes}-byte limit")
        return self.rfile.read(length)

    def _respond(self, status: int, payload) -> None:
        # Serialise before sending the status line, so an encoding error
        # cannot corrupt a half-written response.  Non-finite floats are
        # mapped to null upstream; allow_nan=False keeps that honest.
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def create_server(app: AdvisorApp, host: str = "127.0.0.1", port: int = 0,
                  quiet: bool = True) -> AdvisorHTTPServer:
    """Bind a server to ``(host, port)`` (port 0 picks a free one)."""
    return AdvisorHTTPServer((host, port), app, quiet=quiet)


def serve_until_signal(app: AdvisorApp, host: str, port: int,
                       quiet: bool = True,
                       ready_message: Optional[str] = None) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    The shutdown sequence on a signal:

    1. stop accepting connections (``server.shutdown``);
    2. close the scheduler — new submissions would get 503, queued jobs
       keep flowing to the workers;
    3. wait up to ``config.drain_timeout_s`` for the workers to finish;
    4. release the store connection and exit 0 (or 1 on a dirty drain).

    Returns a process exit code.
    """
    server = create_server(app, host, port, quiet=quiet)
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    app.start()
    runner = threading.Thread(target=server.serve_forever,
                              name="advisor-http", daemon=True)
    runner.start()
    if ready_message is not None:
        print(ready_message, flush=True)
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.shutdown()
        server.server_close()
        clean = app.drain()
        app.close(timeout=0.0)
        print(f"drained {'cleanly' if clean else 'with stragglers'}; "
              f"{app.metrics.solver_invocations} solver runs, "
              f"{app.metrics.store_hits} store hits",
              file=sys.stderr, flush=True)
    return 0 if clean else 1
