"""``GET /v1/history`` — the durable re-deployment log, paginated.

Backed by the SQLite store's :class:`~repro.store.WatchHistory`: the list
endpoint pages over recorded watch runs (newest first, optionally
filtered to one root fingerprint via ``?root=``), and
``GET /v1/history/<run_id>`` returns a run's full per-revision event log.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .. import queries
from ..dependencies import HttpError, Request
from ..pagination import PageParams, paginate
from . import Route


def handle_history(app, request: Request) -> Tuple[int, Dict]:
    """Recorded watch runs, newest first, paginated."""
    params = PageParams.from_query(request.query)
    runs = queries.history_runs(app.store,
                                request.query.get("root") or None)
    return 200, paginate(runs, params, render=queries.run_summary_payload)


def handle_history_run(app, request: Request) -> Tuple[int, Dict]:
    """The full event log of one recorded watch run."""
    raw = request.params["run_id"]
    try:
        run_id = int(raw)
    except ValueError:
        raise HttpError(400, f"run id must be an integer, got {raw!r}"
                        ) from None
    events = queries.run_events(app.store, run_id)
    return 200, {"run_id": run_id, "events": events}


ROUTES = [
    Route("GET", "/v1/history", handle_history, "history"),
    Route("GET", "/v1/history/{run_id}", handle_history_run, "history-run"),
]
