"""Service meta endpoints: health, metrics, solver discovery."""

from __future__ import annotations

from typing import Dict, Tuple

from .. import queries
from ..dependencies import Request
from . import Route


def handle_healthz(app, request: Request) -> Tuple[int, Dict]:
    """Liveness/readiness: 503 once a graceful drain has begun.

    Load balancers use the status code; the body carries enough state to
    see at a glance why a replica stopped accepting work.
    """
    draining = app.draining
    body = {
        "status": "draining" if draining else "ok",
        "queue_depth": app.scheduler.depth(),
        "workers": app.config.workers,
        "store": None if app.store is None else str(
            getattr(app.store, "path", "attached")),
    }
    return (503 if draining else 200), body


def handle_metrics(app, request: Request) -> Tuple[int, Dict]:
    """One consistent JSON snapshot of every layer's counters."""
    return 200, app.metrics_snapshot()


def handle_solvers(app, request: Request) -> Tuple[int, Dict]:
    """The machine-readable solver catalog (same payload as the CLI's
    ``solvers --json``)."""
    return 200, {"solvers": queries.solver_catalog(app.session.registry)}


ROUTES = [
    Route("GET", "/healthz", handle_healthz, "healthz"),
    Route("GET", "/metrics", handle_metrics, "metrics"),
    Route("GET", "/v1/solvers", handle_solvers, "solvers"),
]
