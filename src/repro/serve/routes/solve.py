"""``POST /v1/solve`` and ``POST /v1/solve-batch``.

The body of a solve is a serialized :class:`~repro.api.SolveRequest`
(problem, solver key, config, budget, warm start) plus two service-level
fields: ``priority`` (``"drift"`` / ``"interactive"`` / ``"batch"``) and
``mode`` (``"sync"`` waits for the result, ``"async"`` returns 202 with a
job id to poll).  Batch bodies carry a ``requests`` list sharing one
``priority`` / ``mode``.

Both routes go through :meth:`AdvisorApp.submit_solve`, so every request
gets the same treatment: persistent-store short-circuit, in-flight
coalescing, bounded queueing with 429 back-pressure, tenant-fair
scheduling.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from ...api.schema import SolveRequest
from ...core.errors import ClouDiAError
from ..dependencies import HttpError, Request
from ..scheduler import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    Job,
    QueueFullError,
    SchedulerClosedError,
    parse_priority,
)
from . import Route

#: Request modes.
MODE_SYNC = "sync"
MODE_ASYNC = "async"


def _parse_mode(payload: Dict) -> str:
    mode = payload.get("mode", MODE_SYNC)
    if mode not in (MODE_SYNC, MODE_ASYNC):
        raise HttpError(
            400, f"mode must be {MODE_SYNC!r} or {MODE_ASYNC!r}, "
                 f"got {mode!r}")
    return mode


def _parse_solve_request(payload: Dict) -> SolveRequest:
    try:
        return SolveRequest.from_dict(payload)
    except (ClouDiAError, ValueError, TypeError, KeyError) as exc:
        raise HttpError(400, f"invalid solve request: {exc}") from None


def _submit(app, request: Request, payload: Dict,
            default_priority: int) -> Tuple[Job, str]:
    """Parse one request payload and hand it to the app's submit path."""
    try:
        priority = parse_priority(payload.get("priority"), default_priority)
    except ClouDiAError as exc:
        raise HttpError(400, str(exc)) from None
    solve_request = _parse_solve_request(payload)
    try:
        return app.submit_solve(solve_request, tenant=request.tenant,
                                priority=priority)
    except QueueFullError as exc:
        raise HttpError(429, str(exc)) from None
    except SchedulerClosedError as exc:
        raise HttpError(503, str(exc)) from None
    except ClouDiAError as exc:
        # Unknown solver key, malformed problem content, and the like.
        raise HttpError(400, str(exc)) from None


def _envelope(job: Job, source: str) -> Dict:
    """The per-request response body (``source`` is caller-relative)."""
    payload = job.to_dict(include_response=True)
    payload["source"] = source
    return payload


def _job_latency(job: Job) -> float:
    """End-to-end latency of one job, from its own submit time."""
    finished = job.finished_at if job.finished_at is not None else time.time()
    return max(0.0, finished - job.created_at)


def _await_job(app, job: Job, source: str, started: float,
               tenant: str) -> Tuple[int, Dict]:
    """Block for a sync request's job and build the response."""
    if not job.wait(app.config.request_timeout_s):
        return 504, {
            "error": "request timed out awaiting a worker; the job is "
                     "still running",
            "job_id": job.job_id,
            "poll": f"/v1/jobs/{job.job_id}",
        }
    app.metrics.record_served(tenant, source, time.perf_counter() - started)
    job.served_recorded = True
    body = _envelope(job, source)
    if job.error is not None:
        return 400, body
    return 200, body


def handle_solve(app, request: Request) -> Tuple[int, Dict]:
    """One solve, sync by default (``mode: "async"`` for fire-and-poll)."""
    started = time.perf_counter()
    payload = request.json_object()
    mode = _parse_mode(payload)
    job, source = _submit(app, request, payload, PRIORITY_INTERACTIVE)
    if mode == MODE_ASYNC:
        body = _envelope(job, source)
        body["poll"] = f"/v1/jobs/{job.job_id}"
        if job.done.is_set():  # store-served: the result is already there
            app.metrics.record_served(request.tenant, source,
                                      time.perf_counter() - started)
            job.served_recorded = True
        return 202, body
    return _await_job(app, job, source, started, request.tenant)


def handle_solve_batch(app, request: Request) -> Tuple[int, Dict]:
    """A list of solves sharing one priority (default: batch backfill)."""
    payload = request.json_object()
    entries = payload.get("requests")
    if not isinstance(entries, list) or not entries:
        raise HttpError(
            400, "solve-batch expects a non-empty 'requests' list")
    mode = _parse_mode(payload)
    items = []
    submitted = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise HttpError(400, "each batch entry must be a JSON object")
        merged = dict(entry)
        merged.setdefault("priority", payload.get("priority", "batch"))
        try:
            job, source = _submit(app, request, merged, PRIORITY_BATCH)
        except HttpError as exc:
            # Partial acceptance: earlier entries are already queued, so
            # report the rejection per entry instead of failing the batch.
            items.append({"status": "rejected", "error": exc.message,
                          "http_status": exc.status})
            continue
        submitted.append((job, source))
        items.append(None)  # placeholder, filled below

    if mode == MODE_ASYNC:
        cursor = iter(submitted)
        for index, item in enumerate(items):
            if item is None:
                job, source = next(cursor)
                body = _envelope(job, source)
                body["poll"] = f"/v1/jobs/{job.job_id}"
                items[index] = body
        return 202, {"items": items}

    deadline = time.monotonic() + app.config.request_timeout_s
    cursor = iter(submitted)
    any_timeout = False
    for index, item in enumerate(items):
        if item is not None:
            continue
        job, source = next(cursor)
        remaining = max(0.0, deadline - time.monotonic())
        if not job.wait(remaining):
            any_timeout = True
            items[index] = {
                "status": "pending", "job_id": job.job_id,
                "poll": f"/v1/jobs/{job.job_id}",
            }
            continue
        # Per-item latency from the item's own job, not the shared batch
        # start — the shared clock would inflate every later item.
        app.metrics.record_served(request.tenant, source, _job_latency(job))
        job.served_recorded = True
        items[index] = _envelope(job, source)
    return (504 if any_timeout else 200), {"items": items}


ROUTES = [
    Route("POST", "/v1/solve", handle_solve, "solve"),
    Route("POST", "/v1/solve-batch", handle_solve_batch, "solve-batch"),
]
