"""``GET /v1/jobs/<id>`` — poll an async (or timed-out sync) job."""

from __future__ import annotations

import time
from typing import Dict, Tuple

from ..dependencies import HttpError, Request
from . import Route


def handle_job(app, request: Request) -> Tuple[int, Dict]:
    """Status and (when finished) the response of one job."""
    job_id = request.params["job_id"]
    job = app.jobs.get(job_id)
    if job is None:
        raise HttpError(
            404, f"unknown job {job_id!r} (finished jobs are retained "
                 f"for a bounded window)")
    if job.done.is_set() and not job.served_recorded:
        # Async (or timed-out sync) jobs are served when the client first
        # observes the finished result; without this the poll path would
        # never reach the tenant/latency metrics.
        job.served_recorded = True
        finished = job.finished_at if job.finished_at is not None \
            else time.time()
        app.metrics.record_served(job.tenant, job.source,
                                  max(0.0, finished - job.created_at))
    return 200, job.to_dict(include_response=True)


ROUTES = [
    Route("GET", "/v1/jobs/{job_id}", handle_job, "jobs"),
]
