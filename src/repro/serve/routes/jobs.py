"""``GET /v1/jobs/<id>`` — poll an async (or timed-out sync) job."""

from __future__ import annotations

from typing import Dict, Tuple

from ..dependencies import HttpError, Request
from . import Route


def handle_job(app, request: Request) -> Tuple[int, Dict]:
    """Status and (when finished) the response of one job."""
    job_id = request.params["job_id"]
    job = app.jobs.get(job_id)
    if job is None:
        raise HttpError(
            404, f"unknown job {job_id!r} (finished jobs are retained "
                 f"for a bounded window)")
    return 200, job.to_dict(include_response=True)


ROUTES = [
    Route("GET", "/v1/jobs/{job_id}", handle_job, "jobs"),
]
