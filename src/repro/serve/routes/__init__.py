"""Route table of the advisor service.

Each submodule contributes :class:`Route` entries — a method, a path
pattern (literal segments plus ``{param}`` captures) and a thin handler
``(app, request) -> (status, payload)``.  The :class:`Router` matches a
request against the table, extracts path parameters, and distinguishes
"unknown path" (404) from "known path, wrong method" (405).

Handlers stay declarative: parsing, tenancy, scheduling and persistence
all live in :mod:`~repro.serve.dependencies`, :mod:`~repro.serve.app` and
:mod:`~repro.serve.queries`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..dependencies import HttpError

#: A handler takes ``(app, request)`` and returns ``(status, payload)``.
Handler = Callable[..., Tuple[int, Dict]]

_PARAM_RE = re.compile(r"\{([a-z_]+)\}")


@dataclass(frozen=True)
class Route:
    """One routable endpoint."""

    method: str
    pattern: str
    handler: Handler
    #: Stable label used in metrics (patterns would explode cardinality).
    name: str

    def compile(self) -> "re.Pattern[str]":
        """The pattern as an anchored regex with named captures."""
        regex = _PARAM_RE.sub(
            lambda match: f"(?P<{match.group(1)}>[^/]+)",
            re.escape(self.pattern).replace(r"\{", "{").replace(r"\}", "}"),
        )
        return re.compile(f"^{regex}$")


class Router:
    """Matches ``(method, path)`` pairs against the route table."""

    def __init__(self, routes: List[Route]):
        self._routes = [(route, route.compile()) for route in routes]

    def match(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        """The route and path params for a request.

        Raises:
            HttpError: 404 when no pattern matches the path, 405 when a
                pattern matches but under different methods.
        """
        allowed = []
        for route, regex in self._routes:
            found = regex.match(path)
            if found is None:
                continue
            if route.method == method:
                return route, found.groupdict()
            allowed.append(route.method)
        if allowed:
            raise HttpError(
                405, f"{method} not allowed on {path}; "
                     f"allowed: {', '.join(sorted(set(allowed)))}")
        raise HttpError(404, f"no route for {path}")


def build_router() -> Router:
    """The service's full route table."""
    from . import history, jobs, meta, solve

    return Router([
        *solve.ROUTES,
        *jobs.ROUTES,
        *history.ROUTES,
        *meta.ROUTES,
    ])
