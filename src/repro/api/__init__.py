"""Serializable solving API: requests, responses and the advisor session.

This package is the service-facing layer of the library, mirroring the
paper's framing of ClouDiA as an advisor *service* (Sects. 3, 6): a tenant
submits a :class:`SolveRequest` — a serialized
:class:`~repro.core.problem.DeploymentProblem` plus a solver key and typed
config — and receives a :class:`SolverResponse` with the plan, cost and
per-request telemetry.  :class:`AdvisorSession` executes requests,
deduplicating problem compilations across a batch and running independent
requests on a worker pool.

Everything round-trips through plain dictionaries / JSON, so the full
pipeline can be driven from serialized artifacts (see the CLI's ``solve``
and ``solve-batch`` commands).
"""

from .cache import ResultCache, ResultCacheStats
from .schema import AUTO_SOLVER, SolveRequest, SolverResponse, SolveTelemetry
from .session import AdvisorSession, SessionStats, solve_requests
from .watch import WatchEvent, WatchPolicy, WatchReport

__all__ = [
    "AUTO_SOLVER",
    "AdvisorSession",
    "ResultCache",
    "ResultCacheStats",
    "SessionStats",
    "SolveRequest",
    "SolverResponse",
    "SolveTelemetry",
    "WatchEvent",
    "WatchPolicy",
    "WatchReport",
    "solve_requests",
]
