"""The batch advisor session: execute solve requests with shared state.

:class:`AdvisorSession` is the long-lived, multi-request counterpart of the
one-shot :class:`~repro.core.advisor.ClouDiA` pipeline.  It adds three
things the paper's service framing needs at scale:

* **Compilation deduplication** — problems are canonicalized by the
  content hash of their ``(graph, costs)`` pair
  (:meth:`~repro.core.problem.DeploymentProblem.instance_key`), so a batch
  of requests over the same instance — different solvers, objectives,
  budgets, or problems deserialized from separate JSON files — lowers the
  instance into the vectorized engine exactly once.
* **An opt-in worker pool** — :meth:`AdvisorSession.solve_many` can run
  independent requests on a thread pool (``max_workers``); response order
  matches request order regardless of scheduling.  The default is
  sequential, because the exact solvers are GIL-bound searches under
  wall-clock budgets — threading them degrades each request's effective
  budget; the pool pays off for engine-dominated (NumPy) request mixes.
* **Telemetry** — every response carries per-request
  :class:`~repro.api.schema.SolveTelemetry` (compile cache hit, compile /
  solve / total time, and whether the constraint-repair fallback fired —
  always ``False`` for the natively constraint-aware built-in solvers),
  and the session aggregates :class:`SessionStats` so a server can export
  hit rates.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.communication_graph import CommunicationGraph
from ..core.cost_matrix import CostMatrix
from ..core.errors import ClouDiAError
from ..core.problem import DeploymentProblem
from ..solvers.registry import SolverRegistry, default_registry
from .schema import SolveRequest, SolverResponse, SolveTelemetry

#: Hard cap on worker threads; solving is CPU-bound, so more threads than
#: a small multiple of the core count only adds contention.
_MAX_WORKERS = 8


@dataclass(frozen=True)
class SessionStats:
    """Aggregate counters of one advisor session."""

    #: Requests executed (successful or failed).
    requests: int = 0
    #: Distinct ``(graph, costs)`` pairs compiled by this session.
    compilations: int = 0
    #: Requests that reused a previously compiled pair.
    compile_cache_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the compilation cache."""
        total = self.compilations + self.compile_cache_hits
        return self.compile_cache_hits / total if total else 0.0


class AdvisorSession:
    """Executes :class:`~repro.api.schema.SolveRequest` batches.

    Args:
        registry: solver registry to resolve solver keys through; defaults
            to the process-wide :data:`~repro.solvers.registry.default_registry`.
        max_workers: worker threads for :meth:`solve_many`; the default of
            ``None`` runs requests sequentially (see :meth:`solve_many` for
            why that is the reproducibility-preserving choice).
        max_cached_problems: bound on the number of distinct problem
            instances whose canonical graph / costs (and thereby compiled
            engines) the session keeps alive; least-recently-used entries
            are evicted beyond it, so a long-lived serving session does not
            grow without bound.  An evicted instance is simply recompiled
            if it is submitted again.
    """

    def __init__(self, registry: Optional[SolverRegistry] = None,
                 max_workers: Optional[int] = None,
                 max_cached_problems: int = 128):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_cached_problems < 1:
            raise ValueError("max_cached_problems must be >= 1")
        self.registry = registry if registry is not None else default_registry
        self.max_workers = max_workers
        self.max_cached_problems = max_cached_problems
        self._lock = threading.Lock()
        #: Canonical (graph, costs) objects per instance content hash, in
        #: LRU order; the process-wide compile cache is keyed on object
        #: identity, so re-binding content-equal problems to these objects
        #: makes them share one CompiledProblem.
        self._canonical: "OrderedDict[str, Tuple[CommunicationGraph, CostMatrix]]" = (
            OrderedDict()
        )
        #: Per-instance-key locks serialising the (expensive) first
        #: compilation of each distinct pair across worker threads, so
        #: distinct instances compile in parallel while the same instance
        #: still compiles exactly once.
        self._compile_locks: dict = {}
        self._requests = 0
        self._compilations = 0
        self._cache_hits = 0

    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> SessionStats:
        """Aggregate counters since the session was created."""
        with self._lock:
            return SessionStats(
                requests=self._requests,
                compilations=self._compilations,
                compile_cache_hits=self._cache_hits,
            )

    def prepare(self, problem: DeploymentProblem
                ) -> Tuple[DeploymentProblem, bool, threading.Lock]:
        """Canonicalize ``problem`` against the session's instance cache.

        Canonicalization is cheap (a content hash plus dictionary
        bookkeeping); the expensive lowering happens lazily at
        ``problem.compiled()`` under the returned per-instance lock, which
        lets a batch compile *distinct* instances in parallel on the worker
        pool while still compiling each distinct instance exactly once.

        Returns:
            ``(canonical_problem, cache_hit, compile_lock)`` where
            ``cache_hit`` says whether an earlier request already
            canonicalized the same ``(graph, costs)`` content.
        """
        key = problem.instance_key()
        with self._lock:
            canonical = self._canonical.get(key)
            hit = canonical is not None
            if hit:
                self._cache_hits += 1
                self._canonical.move_to_end(key)
                problem = problem.rebound(*canonical)
            else:
                self._canonical[key] = (problem.graph, problem.costs)
                self._compilations += 1
                while len(self._canonical) > self.max_cached_problems:
                    evicted, _ = self._canonical.popitem(last=False)
                    self._compile_locks.pop(evicted, None)
            lock = self._compile_locks.setdefault(key, threading.Lock())
        return problem, hit, lock

    def clear_cache(self) -> None:
        """Drop all canonical problem references held by the session.

        The process-wide compile cache is weakly keyed, so releasing the
        canonical cost matrices lets their compiled engines be reclaimed.
        """
        with self._lock:
            self._canonical.clear()
            self._compile_locks.clear()

    # ------------------------------------------------------------------ #

    def solve(self, request: SolveRequest) -> SolverResponse:
        """Execute one request; solver errors propagate to the caller."""
        request = self._with_assigned_id(request)
        prepared = self.prepare(request.problem)
        return self._execute(request, prepared, capture_errors=False)

    def solve_many(self, requests: Iterable[SolveRequest],
                   max_workers: Optional[int] = None
                   ) -> List[SolverResponse]:
        """Execute a batch of independent requests.

        Problems are canonicalized up front, then the worker pool compiles
        and solves them — each distinct ``(graph, costs)`` pair is compiled
        exactly once within the batch (a per-instance lock serialises
        same-instance compiles; distinct instances compile concurrently).
        A per-batch memo upholds that guarantee even when the batch holds
        more distinct instances than ``max_cached_problems``, where the
        session-level LRU alone would evict and recompile.  Failures are
        captured per request as ``"error"`` responses instead of aborting
        the batch, and response order matches request order.

        Requests run **sequentially by default**: the exact solvers are
        GIL-bound Python searches under *wall-clock* budgets, so splitting
        one interpreter across threads silently degrades every request's
        effective budget and makes seeded runs irreproducible across batch
        sizes.  Opt into threads with ``max_workers`` when the requests
        are dominated by engine (NumPy) work or are not time-budgeted.
        """
        batch: List[SolveRequest] = [
            self._with_assigned_id(request) for request in requests
        ]
        if not batch:
            return []
        memo: dict = {}
        prepared = []
        for request in batch:
            key = request.problem.instance_key()
            entry = memo.get(key)
            if entry is not None:
                canonical, lock = entry
                with self._lock:
                    self._cache_hits += 1
                prepared.append((
                    request.problem.rebound(canonical.graph, canonical.costs),
                    True, lock,
                ))
            else:
                item = self.prepare(request.problem)
                memo[key] = (item[0], item[2])
                prepared.append(item)
        workers = max_workers if max_workers is not None else self.max_workers
        if workers is None:
            workers = 1
        workers = max(1, min(workers, len(batch), _MAX_WORKERS))
        if workers == 1:
            return [
                self._execute(request, prep, capture_errors=True)
                for request, prep in zip(batch, prepared)
            ]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(
                lambda pair: self._execute(pair[0], pair[1],
                                           capture_errors=True),
                zip(batch, prepared),
            ))

    # ------------------------------------------------------------------ #

    def _with_assigned_id(self, request: SolveRequest) -> SolveRequest:
        with self._lock:
            sequence = self._requests
            self._requests += 1
        if request.request_id is not None:
            return request
        return request.with_id(f"req-{sequence:04d}")

    def _execute(self, request: SolveRequest,
                 prepared: Tuple[DeploymentProblem, bool, threading.Lock],
                 capture_errors: bool) -> SolverResponse:
        problem, cache_hit, compile_lock = prepared
        started = time.perf_counter()
        solver_key = request.solver
        compile_time = 0.0
        try:
            with compile_lock:
                compile_started = time.perf_counter()
                problem.compiled()
                compile_time = time.perf_counter() - compile_started
            solver_key = request.resolved_solver_key(self.registry)
            solver = self.registry.make(solver_key, **dict(request.config))
            result = solver.solve(problem, budget=request.budget,
                                  initial_plan=request.initial_plan)
            telemetry = SolveTelemetry(
                compile_cache_hit=cache_hit,
                compile_time_s=compile_time,
                solve_time_s=result.solve_time_s,
                total_time_s=time.perf_counter() - started,
                repair_applied=result.repair_applied,
            )
            return SolverResponse(
                request_id=request.request_id, solver=solver_key,
                status="ok", result=result, telemetry=telemetry,
            )
        except (ClouDiAError, ValueError, TypeError) as exc:
            if not capture_errors:
                raise
            telemetry = SolveTelemetry(
                compile_cache_hit=cache_hit,
                compile_time_s=compile_time,
                total_time_s=time.perf_counter() - started,
            )
            return SolverResponse(
                request_id=request.request_id, solver=solver_key,
                status="error", error=f"{type(exc).__name__}: {exc}",
                telemetry=telemetry,
            )


def solve_requests(requests: Sequence[SolveRequest],
                   registry: Optional[SolverRegistry] = None,
                   max_workers: Optional[int] = None) -> List[SolverResponse]:
    """One-shot convenience wrapper around a throwaway session."""
    session = AdvisorSession(registry=registry, max_workers=max_workers)
    return session.solve_many(requests, max_workers=max_workers)
